//! The DPD simulation driver: modified velocity-Verlet integration, wall
//! and open-boundary handling, species, platelets and measurement.

use crate::cells::CellGrid;
use crate::domain::Box3;
use crate::force::{
    accumulate_pair_forces, accumulate_pair_forces_full_par, accumulate_pair_forces_par,
    SpeciesMatrix,
};
use crate::inflow::OpenBoundaryX;
use crate::particles::{Particles, PlateletState};
use crate::platelet::{adhesion_forces, update_states, PlateletParams, WallSites};
use crate::rbc::CellModel;
use crate::streams::{stream_u01, StreamLane, DOMAIN_FILL, DOMAIN_PLATELET_SEED};
use crate::walls::{bounce_back_cylinder, bounce_back_plane, wall_force, EffectiveWallForce};
use nkg_ckpt::{CkptError, Dec, Enc, Snapshot};

/// Which pair-force sweep [`DpdSim::step`] runs.
///
/// All backends evaluate the identical pair kernel with counter-based
/// symmetric noise, so they integrate the same physics; they differ only
/// in floating-point summation order (agreement ≤ 1e-12 per component)
/// and in parallelism. Both parallel sweeps are bitwise deterministic for
/// a given particle ordering regardless of the rayon thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForceBackend {
    /// Pick [`ForceBackend::Parallel`] when more than one rayon thread is
    /// available (see `RAYON_NUM_THREADS`), else the serial half sweep.
    #[default]
    Auto,
    /// Serial half sweep: each unordered pair evaluated once.
    Serial,
    /// Rayon-parallel half sweep: each pair evaluated once per step, `±F`
    /// scattered through deterministic chunk-ordered accumulation.
    Parallel,
    /// Rayon-parallel full-neighborhood sweep (write-conflict-free
    /// baseline; twice the pair work of [`ForceBackend::Parallel`]).
    ParallelFull,
}

impl ForceBackend {
    /// Resolve `Auto` against the current rayon thread count.
    pub fn resolved(self) -> ForceBackend {
        match self {
            ForceBackend::Auto => {
                if rayon::current_num_threads() > 1 {
                    ForceBackend::Parallel
                } else {
                    ForceBackend::Serial
                }
            }
            other => other,
        }
    }
}

/// Wall geometry of the domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WallGeometry {
    /// Fully periodic (no walls).
    None,
    /// No-slip walls at `y = lo` and `y = hi` (plane channel).
    SlabY,
    /// No-slip cylinder of given radius about the box's x-axis centerline
    /// (pipe). The box cross-section must contain the cylinder.
    CylinderX(f64),
}

/// Simulation parameters (DPD units: `r_c = 1`-ish scales, unit mass,
/// `k_B T` as configured).
#[derive(Debug, Clone, Copy)]
pub struct DpdConfig {
    /// Interaction cutoff.
    pub rc: f64,
    /// Thermostat temperature `k_B T`.
    pub kbt: f64,
    /// Time step.
    pub dt: f64,
    /// Number density for filling.
    pub density: f64,
    /// Conservative repulsion (uniform default; refine via the matrix).
    pub a: f64,
    /// Dissipation strength.
    pub gamma: f64,
    /// Wall tangential dissipation.
    pub gamma_wall: f64,
    /// Velocity-Verlet prediction factor λ (Groot–Warren use 0.65).
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DpdConfig {
    fn default() -> Self {
        Self {
            rc: 1.0,
            kbt: 1.0,
            dt: 0.01,
            density: 3.0,
            a: 25.0,
            gamma: 4.5,
            gamma_wall: 4.5,
            lambda: 0.65,
            seed: 12345,
        }
    }
}

type BodyForceFn = Box<dyn Fn(f64) -> [f64; 3] + Send>;

/// A DPD simulation.
pub struct DpdSim {
    /// Parameters.
    pub cfg: DpdConfig,
    /// The domain.
    pub bx: Box3,
    /// Particle data.
    pub particles: Particles,
    /// Species interaction coefficients.
    pub matrix: SpeciesMatrix,
    grid: CellGrid,
    eff_wall: Option<EffectiveWallForce>,
    /// Wall geometry.
    pub walls: WallGeometry,
    /// Optional open boundary along x.
    pub open_x: Option<OpenBoundaryX>,
    /// Wall adhesion sites for the platelet model.
    pub sites: WallSites,
    /// Platelet model parameters.
    pub platelet_params: PlateletParams,
    /// Explicit cell membranes (bead-spring rings) immersed in the solvent.
    pub cells: Vec<CellModel>,
    /// Pair-force sweep selection (default [`ForceBackend::Auto`]).
    pub force_backend: ForceBackend,
    /// Spatially reorder the particle arrays into cell-sorted (CSR) order
    /// every this many steps (0 = never, the default). Reordering
    /// renumbers particles, which re-keys the counter-based noise —
    /// physically equivalent but a different random stream. Skipped while
    /// explicit cell membranes are present (they hold particle indices).
    ///
    /// Benchmarks (`BENCH_dpd.json`, N = 1e5) show the half-list sweep
    /// already recovers most locality by gathering coordinates in CSR
    /// cell-visit order, so the permutation only starts to pay once the
    /// particle order has drifted far from cell order (~8% step-rate gain
    /// after hundreds of undisturbed steps, a net loss before that).
    /// Default 0: the modest gain does not justify silently switching
    /// the noise stream mid-run. Opt in for long, strongly diffusive
    /// runs where reproducibility against un-reordered runs is not
    /// required.
    pub reorder_every: u64,
    body_force: BodyForceFn,
    /// Steps taken.
    pub step_count: u64,
    /// Simulated time.
    pub time: f64,
    /// Pair interactions in the last force evaluation (diagnostics).
    pub last_pair_count: u64,
}

impl DpdSim {
    /// Create an empty simulation over `bx` with the given walls.
    pub fn new(cfg: DpdConfig, bx: Box3, walls: WallGeometry) -> Self {
        let grid = CellGrid::new(bx, cfg.rc);
        let eff_wall = match walls {
            WallGeometry::None => None,
            _ => Some(EffectiveWallForce::new(cfg.a, cfg.density, cfg.rc)),
        };
        let n_species = 4;
        Self {
            matrix: SpeciesMatrix::uniform(n_species, cfg.a, cfg.gamma),
            grid,
            eff_wall,
            walls,
            open_x: None,
            sites: WallSites::default(),
            platelet_params: PlateletParams::default(),
            cells: Vec::new(),
            force_backend: ForceBackend::default(),
            reorder_every: 0,
            body_force: Box::new(|_| [0.0; 3]),
            particles: Particles::new(),
            step_count: 0,
            time: 0.0,
            last_pair_count: 0,
            cfg,
            bx,
        }
    }

    /// Fill the domain with solvent (species 0) at the configured density,
    /// thermal velocities at `k_B T`. Counter-based: the fill is a pure
    /// function of `(seed, step_count)`, keyed per particle ordinal.
    pub fn fill_solvent(&mut self) {
        let n = (self.cfg.density * self.interior_volume()).round() as usize;
        let vth = self.cfg.kbt.sqrt();
        for i in 0..n {
            let mut lane = StreamLane::new(self.cfg.seed, DOMAIN_FILL, self.step_count, i as u64);
            let p = self.random_interior_point(&mut lane);
            let v = [
                vth * lane.gaussian(),
                vth * lane.gaussian(),
                vth * lane.gaussian(),
            ];
            self.particles.push(p, v, 0);
        }
        // Remove any net momentum so measured flow is purely forced.
        let mom = self.particles.momentum();
        let n = self.particles.len().max(1) as f64;
        for i in 0..self.particles.len() {
            self.particles.vx[i] -= mom[0] / n;
            self.particles.vy[i] -= mom[1] / n;
            self.particles.vz[i] -= mom[2] / n;
        }
    }

    /// Convert a fraction of solvent particles into passive platelets
    /// (species 1). Counter-based, keyed per particle index. Returns the
    /// number converted.
    pub fn seed_platelets(&mut self, fraction: f64) -> usize {
        let mut count = 0;
        let total = self.particles.len();
        let want = (total as f64 * fraction).round() as usize;
        for i in 0..total {
            if count >= want {
                break;
            }
            let u = stream_u01(
                self.cfg.seed,
                DOMAIN_PLATELET_SEED,
                self.step_count,
                i as u64,
                0,
            );
            if self.particles.species[i] == 0 && u < fraction * 2.0 {
                self.particles.species[i] = 1;
                self.particles.state[i] = PlateletState::Passive;
                count += 1;
            }
        }
        count
    }

    /// Set a (time-dependent) uniform body force.
    pub fn set_body_force(&mut self, f: impl Fn(f64) -> [f64; 3] + Send + 'static) {
        self.body_force = Box::new(f);
    }

    /// Install an open boundary along x. Also enables the effective
    /// boundary force at both x faces: the fluid deleted beyond each face
    /// must keep pushing back (its pressure), otherwise the interior
    /// accelerates toward the vacuum — this is the inflow/outflow role of
    /// F_eff in Lei-Fedosov-Karniadakis.
    pub fn set_open_x(&mut self, ob: OpenBoundaryX) {
        if self.eff_wall.is_none() {
            self.eff_wall = Some(EffectiveWallForce::new(
                self.cfg.a,
                self.cfg.density,
                self.cfg.rc,
            ));
        }
        self.open_x = Some(ob);
    }

    fn interior_volume(&self) -> f64 {
        match self.walls {
            WallGeometry::CylinderX(r) => {
                let l = self.bx.lengths();
                std::f64::consts::PI * r * r * l[0]
            }
            _ => self.bx.volume(),
        }
    }

    fn random_interior_point(&self, lane: &mut StreamLane) -> [f64; 3] {
        loop {
            let mut p = [0.0; 3];
            for k in 0..3 {
                p[k] = self.bx.lo[k] + lane.u01() * (self.bx.hi[k] - self.bx.lo[k]);
            }
            match self.walls {
                WallGeometry::CylinderX(r) => {
                    let (cy, cz) = self.cyl_center();
                    let dy = p[1] - cy;
                    let dz = p[2] - cz;
                    if dy * dy + dz * dz < r * r {
                        return p;
                    }
                }
                _ => return p,
            }
        }
    }

    fn cyl_center(&self) -> (f64, f64) {
        (
            0.5 * (self.bx.lo[1] + self.bx.hi[1]),
            0.5 * (self.bx.lo[2] + self.bx.hi[2]),
        )
    }

    /// Evaluate all forces (pair + wall + body + adhesion) at the current
    /// positions and velocities.
    pub fn compute_forces(&mut self) {
        self.particles.clear_forces();
        self.grid
            .rebuild_soa(&self.particles.x, &self.particles.y, &self.particles.z);
        self.last_pair_count = match self.force_backend.resolved() {
            ForceBackend::Parallel => accumulate_pair_forces_par(
                &mut self.particles,
                &self.grid,
                &self.bx,
                &self.matrix,
                self.cfg.rc,
                self.cfg.kbt,
                self.cfg.dt,
                self.cfg.seed,
                self.step_count,
            ),
            ForceBackend::ParallelFull => accumulate_pair_forces_full_par(
                &mut self.particles,
                &self.grid,
                &self.bx,
                &self.matrix,
                self.cfg.rc,
                self.cfg.kbt,
                self.cfg.dt,
                self.cfg.seed,
                self.step_count,
            ),
            _ => accumulate_pair_forces(
                &mut self.particles,
                &self.grid,
                &self.bx,
                &self.matrix,
                self.cfg.rc,
                self.cfg.kbt,
                self.cfg.dt,
                self.cfg.seed,
                self.step_count,
            ),
        };
        // Body force.
        let fb = (self.body_force)(self.time);
        if fb != [0.0; 3] {
            for i in 0..self.particles.len() {
                self.particles.fx[i] += fb[0];
                self.particles.fy[i] += fb[1];
                self.particles.fz[i] += fb[2];
            }
        }
        // Wall forces.
        if let Some(eff) = &self.eff_wall {
            match self.walls {
                WallGeometry::SlabY => {
                    let (ylo, yhi) = (self.bx.lo[1], self.bx.hi[1]);
                    for i in 0..self.particles.len() {
                        let y = self.particles.y[i];
                        let v = self.particles.vel(i);
                        let mut f = self.particles.force(i);
                        wall_force(
                            eff,
                            self.cfg.gamma_wall,
                            y - ylo,
                            [0.0, 1.0, 0.0],
                            v,
                            &mut f,
                        );
                        wall_force(
                            eff,
                            self.cfg.gamma_wall,
                            yhi - y,
                            [0.0, -1.0, 0.0],
                            v,
                            &mut f,
                        );
                        self.particles.set_force(i, f);
                    }
                }
                WallGeometry::CylinderX(r0) => {
                    let (cy, cz) = self.cyl_center();
                    for i in 0..self.particles.len() {
                        let dy = self.particles.y[i] - cy;
                        let dz = self.particles.z[i] - cz;
                        let r = (dy * dy + dz * dz).sqrt().max(1e-12);
                        let h = r0 - r;
                        let normal = [0.0, -dy / r, -dz / r]; // inward
                        let v = self.particles.vel(i);
                        let mut f = self.particles.force(i);
                        wall_force(eff, self.cfg.gamma_wall, h, normal, v, &mut f);
                        self.particles.set_force(i, f);
                    }
                }
                WallGeometry::None => {}
            }
        }
        // Open-face back-pressure (virtual reservoir beyond each x face)
        // and adaptive velocity control in the face buffers.
        if let Some(ob) = &self.open_x {
            let (xlo, xhi) = (self.bx.lo[0], self.bx.hi[0]);
            if let Some(eff) = &self.eff_wall {
                for i in 0..self.particles.len() {
                    let x = self.particles.x[i];
                    self.particles.fx[i] += eff.force(x - xlo);
                    self.particles.fx[i] -= eff.force(xhi - x);
                }
            }
            if ob.control_gain > 0.0 {
                let buf = self.cfg.rc;
                // Per-bin mean velocity in the two buffers.
                let nbins = ob.target.len();
                let mut sums = vec![[0.0f64; 3]; nbins];
                let mut cnts = vec![0usize; nbins];
                let mut in_buffer = vec![usize::MAX; self.particles.len()];
                for i in 0..self.particles.len() {
                    let p = self.particles.pos(i);
                    if p[0] < xlo + buf || p[0] > xhi - buf {
                        let b = ob.bin_of(&self.bx, p[1], p[2]);
                        in_buffer[i] = b;
                        cnts[b] += 1;
                        let v = self.particles.vel(i);
                        for k in 0..3 {
                            sums[b][k] += v[k];
                        }
                    }
                }
                for i in 0..self.particles.len() {
                    let b = in_buffer[i];
                    if b == usize::MAX || cnts[b] == 0 {
                        continue;
                    }
                    let mut f = self.particles.force(i);
                    for k in 0..3 {
                        let mean = sums[b][k] / cnts[b] as f64;
                        f[k] += ob.control_gain * (ob.target[b][k] - mean);
                    }
                    self.particles.set_force(i, f);
                }
            }
        }
        // Cell membrane elasticity.
        let cells = std::mem::take(&mut self.cells);
        for cell in &cells {
            cell.accumulate_forces(&mut self.particles, &self.bx);
        }
        self.cells = cells;
        // Platelet adhesion.
        if !self.sites.pos.is_empty() {
            adhesion_forces(
                &mut self.particles,
                &self.sites,
                &self.bx,
                &self.platelet_params,
            );
        }
    }

    /// Advance one time step (modified velocity-Verlet, Groot–Warren).
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        let lambda = self.cfg.lambda;
        // Periodic spatial reordering: permute the particle SoA into
        // cell-sorted order so neighbor traversal walks memory
        // near-sequentially. Must happen before this step's state
        // (forces, velocities) is captured; stored forces permute along.
        if self.reorder_every > 0
            && self.step_count.is_multiple_of(self.reorder_every)
            && self.cells.is_empty()
        {
            self.grid
                .rebuild_soa(&self.particles.x, &self.particles.y, &self.particles.z);
            let order = self.grid.sorted_order().to_vec();
            self.particles.reorder(&order);
        }
        // Open-boundary population control first, so arrays stay aligned
        // for the remainder of the step.
        if let Some(ob) = &mut self.open_x {
            ob.delete_outflow(&mut self.particles, &self.bx);
            ob.insert_inflow(
                &mut self.particles,
                &self.bx,
                dt,
                self.cfg.seed,
                self.step_count,
            );
        }
        if self.step_count == 0 || self.open_x.is_some() {
            // Forces may be stale (initial step or population changed).
            self.compute_forces();
        }
        let n = self.particles.len();
        let f_old: Vec<[f64; 3]> = self.particles.force_aos();
        let v_old: Vec<[f64; 3]> = self.particles.vel_aos();
        // Position update + velocity prediction.
        for i in 0..n {
            let mut pos = self.particles.pos(i);
            let mut vel = self.particles.vel(i);
            for k in 0..3 {
                pos[k] += dt * vel[k] + 0.5 * dt * dt * f_old[i][k];
                vel[k] = v_old[i][k] + lambda * dt * f_old[i][k];
            }
            self.bx.wrap(&mut pos);
            self.particles.set_pos(i, pos);
            self.particles.set_vel(i, vel);
        }
        // Wall reflection (flips both predicted and saved velocities).
        let mut v_old = v_old;
        match self.walls {
            WallGeometry::SlabY => {
                for i in 0..n {
                    let mut pos = self.particles.pos(i);
                    let mut vel = self.particles.vel(i);
                    let b1 = bounce_back_plane(&mut pos, &mut vel, 1, self.bx.lo[1], 1.0);
                    let b2 = bounce_back_plane(&mut pos, &mut vel, 1, self.bx.hi[1], -1.0);
                    if b1 || b2 {
                        self.particles.set_pos(i, pos);
                        self.particles.set_vel(i, vel);
                        for v in v_old[i].iter_mut() {
                            *v = -*v;
                        }
                    }
                }
            }
            WallGeometry::CylinderX(r0) => {
                let (cy, cz) = self.cyl_center();
                for i in 0..n {
                    let mut pos = self.particles.pos(i);
                    let mut vel = self.particles.vel(i);
                    if bounce_back_cylinder(&mut pos, &mut vel, r0, cy, cz) {
                        self.particles.set_pos(i, pos);
                        self.particles.set_vel(i, vel);
                        for v in v_old[i].iter_mut() {
                            *v = -*v;
                        }
                    }
                }
            }
            WallGeometry::None => {}
        }
        // Forces at the new positions with predicted velocities.
        self.step_count += 1;
        self.compute_forces();
        // Velocity correction.
        for i in 0..n {
            let f = self.particles.force(i);
            let mut vel = [0.0; 3];
            for k in 0..3 {
                vel[k] = v_old[i][k] + 0.5 * dt * (f_old[i][k] + f[k]);
            }
            self.particles.set_vel(i, vel);
        }
        // Platelet state machine.
        if !self.sites.pos.is_empty() {
            update_states(
                &mut self.particles,
                &self.sites,
                &self.bx,
                &self.platelet_params,
                self.step_count,
            );
        }
        self.time += dt;
    }

    /// Mean velocity profile along an axis: `bins` slabs, returns
    /// `(bin center, mean velocity vector, count)` per slab.
    pub fn velocity_profile(&self, axis: usize, bins: usize) -> Vec<(f64, [f64; 3], usize)> {
        let lo = self.bx.lo[axis];
        let h = (self.bx.hi[axis] - lo) / bins as f64;
        let mut sums = vec![[0.0f64; 3]; bins];
        let mut counts = vec![0usize; bins];
        for i in 0..self.particles.len() {
            let p = self.particles.pos(i);
            let v = self.particles.vel(i);
            let b = (((p[axis] - lo) / h) as isize).clamp(0, bins as isize - 1) as usize;
            for k in 0..3 {
                sums[b][k] += v[k];
            }
            counts[b] += 1;
        }
        (0..bins)
            .map(|b| {
                let c = counts[b].max(1) as f64;
                (
                    lo + (b as f64 + 0.5) * h,
                    [sums[b][0] / c, sums[b][1] / c, sums[b][2] / c],
                    counts[b],
                )
            })
            .collect()
    }

    /// Current number density (over the interior volume).
    pub fn number_density(&self) -> f64 {
        self.particles.len() as f64 / self.interior_volume()
    }

    /// Counts of platelets by coarse state: `(passive, triggered, active,
    /// adhered)` — the Fig. 10 observable.
    pub fn platelet_census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for s in &self.particles.state {
            match s {
                PlateletState::Passive => c.0 += 1,
                PlateletState::Triggered(_) => c.1 += 1,
                PlateletState::Active => c.2 += 1,
                PlateletState::Adhered(_) => c.3 += 1,
                PlateletState::NotPlatelet => {}
            }
        }
        c
    }
}

/// Encode a platelet state as `(tag, argument)`.
fn state_to_wire(s: PlateletState) -> (u8, u64) {
    match s {
        PlateletState::NotPlatelet => (0, 0),
        PlateletState::Passive => (1, 0),
        PlateletState::Triggered(step) => (2, step),
        PlateletState::Active => (3, 0),
        PlateletState::Adhered(site) => (4, site as u64),
    }
}

fn state_from_wire(tag: u8, arg: u64) -> Result<PlateletState, CkptError> {
    Ok(match tag {
        0 => PlateletState::NotPlatelet,
        1 => PlateletState::Passive,
        2 => PlateletState::Triggered(arg),
        3 => PlateletState::Active,
        4 => PlateletState::Adhered(arg as u32),
        _ => return Err(CkptError::Malformed("platelet state tag out of range")),
    })
}

fn wall_to_wire(w: WallGeometry) -> (u8, f64) {
    match w {
        WallGeometry::None => (0, 0.0),
        WallGeometry::SlabY => (1, 0.0),
        WallGeometry::CylinderX(r) => (2, r),
    }
}

fn backend_to_wire(b: ForceBackend) -> u8 {
    match b {
        ForceBackend::Auto => 0,
        ForceBackend::Serial => 1,
        ForceBackend::Parallel => 2,
        ForceBackend::ParallelFull => 3,
    }
}

impl Snapshot for DpdSim {
    const TAG: u32 = nkg_ckpt::tag4(b"DPDS");

    fn snapshot(&self, enc: &mut Enc) {
        // --- Configuration fingerprint (verified bitwise on restore). ---
        for v in [
            self.cfg.rc,
            self.cfg.kbt,
            self.cfg.dt,
            self.cfg.density,
            self.cfg.a,
            self.cfg.gamma,
            self.cfg.gamma_wall,
            self.cfg.lambda,
        ] {
            enc.put(v);
        }
        enc.put(self.cfg.seed);
        enc.put_slice(&self.bx.lo);
        enc.put_slice(&self.bx.hi);
        for p in self.bx.periodic {
            enc.put_bool(p);
        }
        let (wtag, wr) = wall_to_wire(self.walls);
        enc.put(wtag);
        enc.put(wr);
        enc.put(backend_to_wire(self.force_backend));
        enc.put(self.matrix.num_species() as u64);
        // --- Evolving state (overwritten on restore). ---
        enc.put_slice(&self.matrix.a);
        enc.put_slice(&self.matrix.gamma);
        enc.put(self.reorder_every);
        enc.put(self.step_count);
        enc.put(self.time);
        enc.put(self.last_pair_count);
        // Particle storage is SoA in memory; the snapshot keeps the
        // original interleaved AoS byte layout (format-stable across the
        // SoA refactor — old checkpoints restore unchanged).
        enc.put_slice(&self.particles.pos_aos());
        enc.put_slice(&self.particles.vel_aos());
        enc.put_slice(&self.particles.force_aos());
        enc.put_slice(&self.particles.species);
        let (tags, args): (Vec<u8>, Vec<u64>) = self
            .particles
            .state
            .iter()
            .map(|&s| state_to_wire(s))
            .unzip();
        enc.put_slice(&tags);
        enc.put_slice(&args);
        enc.put_slice(&self.sites.pos);
        for v in [
            self.platelet_params.trigger_dist,
            self.platelet_params.de,
            self.platelet_params.beta,
            self.platelet_params.r0,
            self.platelet_params.cutoff,
            self.platelet_params.bond_dist,
            self.platelet_params.spring_k,
        ] {
            enc.put(v);
        }
        enc.put(self.platelet_params.delay_steps);
        enc.put(self.cells.len() as u64);
        for cell in &self.cells {
            enc.put_slice(&cell.beads);
            for v in [cell.r0, cell.k_spring, cell.k_bend, cell.k_area, cell.area0] {
                enc.put(v);
            }
        }
        enc.put_bool(self.open_x.is_some());
        if let Some(ob) = &self.open_x {
            ob.snapshot(enc);
        }
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), CkptError> {
        let mismatch = |what: &str| CkptError::Mismatch(format!("DPD {what} differs"));
        let cfg = [
            self.cfg.rc,
            self.cfg.kbt,
            self.cfg.dt,
            self.cfg.density,
            self.cfg.a,
            self.cfg.gamma,
            self.cfg.gamma_wall,
            self.cfg.lambda,
        ];
        for want in cfg {
            if dec.take::<f64>()?.to_bits() != want.to_bits() {
                return Err(mismatch("config"));
            }
        }
        if dec.take::<u64>()? != self.cfg.seed {
            return Err(mismatch("seed"));
        }
        if dec.take_vec::<f64>()? != self.bx.lo || dec.take_vec::<f64>()? != self.bx.hi {
            return Err(mismatch("box"));
        }
        for p in self.bx.periodic {
            if dec.take_bool()? != p {
                return Err(mismatch("periodicity"));
            }
        }
        let (wtag, wr) = wall_to_wire(self.walls);
        if dec.take::<u8>()? != wtag || dec.take::<f64>()?.to_bits() != wr.to_bits() {
            return Err(mismatch("wall geometry"));
        }
        if dec.take::<u8>()? != backend_to_wire(self.force_backend) {
            return Err(mismatch("force backend"));
        }
        let n_species = dec.take::<u64>()? as usize;
        if n_species != self.matrix.num_species() {
            return Err(mismatch("species count"));
        }
        let a = dec.take_vec::<f64>()?;
        let gamma = dec.take_vec::<f64>()?;
        if a.len() != n_species * n_species || gamma.len() != a.len() {
            return Err(CkptError::Malformed("species matrix size"));
        }
        self.matrix.a = a;
        self.matrix.gamma = gamma;
        self.reorder_every = dec.take()?;
        self.step_count = dec.take()?;
        self.time = dec.take()?;
        self.last_pair_count = dec.take()?;
        let pos = dec.take_vec::<[f64; 3]>()?;
        let vel = dec.take_vec::<[f64; 3]>()?;
        let force = dec.take_vec::<[f64; 3]>()?;
        let species = dec.take_vec::<u8>()?;
        let tags = dec.take_vec::<u8>()?;
        let args = dec.take_vec::<u64>()?;
        let n = pos.len();
        if [
            vel.len(),
            force.len(),
            species.len(),
            tags.len(),
            args.len(),
        ] != [n; 5]
        {
            return Err(CkptError::Malformed("particle array lengths disagree"));
        }
        let mut state = Vec::with_capacity(n);
        for (&t, &a) in tags.iter().zip(&args) {
            state.push(state_from_wire(t, a)?);
        }
        self.particles = Particles::from_aos(&pos, &vel, &force, species, state);
        self.sites.pos = dec.take_vec::<[f64; 3]>()?;
        self.platelet_params.trigger_dist = dec.take()?;
        self.platelet_params.de = dec.take()?;
        self.platelet_params.beta = dec.take()?;
        self.platelet_params.r0 = dec.take()?;
        self.platelet_params.cutoff = dec.take()?;
        self.platelet_params.bond_dist = dec.take()?;
        self.platelet_params.spring_k = dec.take()?;
        self.platelet_params.delay_steps = dec.take()?;
        let n_cells = dec.take::<u64>()? as usize;
        let mut cells = Vec::with_capacity(n_cells.min(1 << 20));
        for _ in 0..n_cells {
            cells.push(CellModel {
                beads: dec.take_vec::<usize>()?,
                r0: dec.take()?,
                k_spring: dec.take()?,
                k_bend: dec.take()?,
                k_area: dec.take()?,
                area0: dec.take()?,
            });
        }
        self.cells = cells;
        let has_ob = dec.take_bool()?;
        match (&mut self.open_x, has_ob) {
            (Some(ob), true) => ob.restore(dec)?,
            (None, false) => {}
            _ => return Err(mismatch("open boundary presence")),
        }
        Ok(())
    }
}

/// Bin-averaged snapshot sampler for WPOD co-processing: accumulates the
/// velocity field over `n_ts` steps on a 1D slab grid (bin size of order
/// `r_c`, as in the paper), then emits a snapshot.
#[derive(Debug, Clone)]
pub struct BinSampler {
    axis: usize,
    bins: usize,
    component: usize,
    n_ts: usize,
    acc: Vec<f64>,
    cnt: Vec<f64>,
    steps: usize,
}

impl BinSampler {
    /// Average velocity `component` in `bins` slabs along `axis`, emitting
    /// a snapshot every `n_ts` accumulation steps.
    pub fn new(axis: usize, bins: usize, component: usize, n_ts: usize) -> Self {
        assert!(bins >= 1 && n_ts >= 1 && axis < 3 && component < 3);
        Self {
            axis,
            bins,
            component,
            n_ts,
            acc: vec![0.0; bins],
            cnt: vec![0.0; bins],
            steps: 0,
        }
    }

    /// Accumulate the current state; returns a finished snapshot every
    /// `n_ts` calls.
    pub fn accumulate(&mut self, sim: &DpdSim) -> Option<Vec<f64>> {
        let lo = sim.bx.lo[self.axis];
        let h = (sim.bx.hi[self.axis] - lo) / self.bins as f64;
        for i in 0..sim.particles.len() {
            let p = sim.particles.pos(i);
            let v = sim.particles.vel(i);
            let b = (((p[self.axis] - lo) / h) as isize).clamp(0, self.bins as isize - 1) as usize;
            self.acc[b] += v[self.component];
            self.cnt[b] += 1.0;
        }
        self.steps += 1;
        if self.steps < self.n_ts {
            return None;
        }
        let snap: Vec<f64> = self
            .acc
            .iter()
            .zip(&self.cnt)
            .map(|(a, c)| if *c > 0.0 { a / c } else { 0.0 })
            .collect();
        self.acc.iter_mut().for_each(|x| *x = 0.0);
        self.cnt.iter_mut().for_each(|x| *x = 0.0);
        self.steps = 0;
        Some(snap)
    }
}

impl Snapshot for BinSampler {
    const TAG: u32 = nkg_ckpt::tag4(b"BSMP");

    fn snapshot(&self, enc: &mut Enc) {
        // Sampling geometry fingerprint (verified), then accumulators.
        enc.put(self.axis as u64);
        enc.put(self.bins as u64);
        enc.put(self.component as u64);
        enc.put(self.n_ts as u64);
        enc.put_slice(&self.acc);
        enc.put_slice(&self.cnt);
        enc.put(self.steps as u64);
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), CkptError> {
        let geom = [
            dec.take::<u64>()? as usize,
            dec.take::<u64>()? as usize,
            dec.take::<u64>()? as usize,
            dec.take::<u64>()? as usize,
        ];
        if geom != [self.axis, self.bins, self.component, self.n_ts] {
            return Err(CkptError::Mismatch(format!(
                "bin sampler geometry {geom:?} in snapshot, {:?} reconstructed",
                [self.axis, self.bins, self.component, self.n_ts]
            )));
        }
        let acc = dec.take_vec::<f64>()?;
        let cnt = dec.take_vec::<f64>()?;
        if acc.len() != self.bins || cnt.len() != self.bins {
            return Err(CkptError::Malformed("bin sampler accumulator length"));
        }
        self.acc = acc;
        self.cnt = cnt;
        self.steps = dec.take::<u64>()? as usize;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Least-squares quadratic fit `u ≈ c0 + c1 y + c2 y²` via normal
    /// equations (3×3 Cramer solve).
    fn quad_fit(ys: &[f64], us: &[f64]) -> (f64, f64, f64) {
        let n = ys.len() as f64;
        let (mut sy, mut sy2, mut sy3, mut sy4) = (0.0, 0.0, 0.0, 0.0);
        let (mut su, mut syu, mut sy2u) = (0.0, 0.0, 0.0);
        for (&y, &u) in ys.iter().zip(us) {
            sy += y;
            sy2 += y * y;
            sy3 += y * y * y;
            sy4 += y * y * y * y;
            su += u;
            syu += y * u;
            sy2u += y * y * u;
        }
        let a = [[n, sy, sy2], [sy, sy2, sy3], [sy2, sy3, sy4]];
        let b = [su, syu, sy2u];
        let det3 = |m: &[[f64; 3]; 3]| {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        };
        let d = det3(&a);
        let mut out = [0.0f64; 3];
        for c in 0..3 {
            let mut m = a;
            for r in 0..3 {
                m[r][c] = b[r];
            }
            out[c] = det3(&m) / d;
        }
        (out[0], out[1], out[2])
    }

    fn periodic_box(seed: u64) -> DpdSim {
        let cfg = DpdConfig {
            seed,
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [6.0; 3], [true; 3]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::None);
        sim.fill_solvent();
        sim
    }

    #[test]
    fn fill_reaches_target_density() {
        let sim = periodic_box(1);
        assert!((sim.number_density() - 3.0).abs() < 0.01);
        assert_eq!(sim.particles.len(), 648);
    }

    #[test]
    fn momentum_conserved_in_periodic_box() {
        let mut sim = periodic_box(2);
        for _ in 0..20 {
            sim.step();
        }
        let p = sim.particles.momentum();
        let scale = sim.particles.len() as f64;
        for k in 0..3 {
            assert!(p[k].abs() < 1e-9 * scale, "momentum drift: {p:?}");
        }
    }

    #[test]
    fn momentum_conserved_100_parallel_steps() {
        let mut sim = periodic_box(9);
        sim.force_backend = ForceBackend::Parallel;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            for _ in 0..100 {
                sim.step();
            }
        });
        let p = sim.particles.momentum();
        let scale = sim.particles.len() as f64;
        for k in 0..3 {
            assert!(p[k].abs() < 1e-9 * scale, "momentum drift: {p:?}");
        }
    }

    /// The serial and parallel backends integrate the same physics: after
    /// a handful of steps from identical initial conditions the
    /// trajectories agree to integration-accumulated round-off.
    #[test]
    fn backends_agree_over_short_trajectory() {
        let mut a = periodic_box(10);
        a.force_backend = ForceBackend::Serial;
        for _ in 0..10 {
            a.step();
        }
        for backend in [ForceBackend::Parallel, ForceBackend::ParallelFull] {
            let mut b = periodic_box(10);
            b.force_backend = backend;
            for _ in 0..10 {
                b.step();
            }
            assert_eq!(a.last_pair_count, b.last_pair_count);
            for i in 0..a.particles.len() {
                for k in 0..3 {
                    let d = (a.particles.pos(i)[k] - b.particles.pos(i)[k]).abs();
                    assert!(
                        d < 1e-9,
                        "{backend:?} particle {i} axis {k} diverged by {d}"
                    );
                }
            }
        }
    }

    /// Spatial reordering renumbers particles but must not disturb the
    /// conservation laws or the thermodynamic state.
    #[test]
    fn reorder_preserves_invariants() {
        let mut sim = periodic_box(11);
        sim.reorder_every = 5;
        let n0 = sim.particles.len();
        let m0 = sim.particles.momentum();
        for _ in 0..25 {
            sim.step();
        }
        assert_eq!(sim.particles.len(), n0);
        let m1 = sim.particles.momentum();
        let scale = n0 as f64;
        for k in 0..3 {
            assert!(
                (m1[k] - m0[k]).abs() < 1e-9 * scale,
                "drift {m0:?} -> {m1:?}"
            );
        }
        // After a reorder step the particle order is cell-sorted: the
        // temperature must still be sane (thermostat active).
        let t = sim.particles.temperature();
        assert!(t > 0.3 && t < 3.0, "temperature {t}");
    }

    #[test]
    fn temperature_equilibrates_to_kbt() {
        let mut sim = periodic_box(3);
        // Start cold: the thermostat must heat the system to kT = 1.
        sim.particles.vx.fill(0.0);
        sim.particles.vy.fill(0.0);
        sim.particles.vz.fill(0.0);
        for _ in 0..400 {
            sim.step();
        }
        // Average over a window to beat fluctuations.
        let mut t = 0.0;
        let m = 100;
        for _ in 0..m {
            sim.step();
            t += sim.particles.temperature();
        }
        t /= m as f64;
        assert!(
            (t - 1.0).abs() < 0.05,
            "equilibrium temperature {t}, expected 1.0"
        );
    }

    #[test]
    fn poiseuille_profile_is_parabolic() {
        let cfg = DpdConfig {
            seed: 4,
            dt: 0.01,
            ..Default::default()
        };
        // Narrow channel (h = 4) so the momentum diffusion time h²/ν ≈ 19
        // is well inside the 2000-step (20 time-unit) equilibration.
        let bx = Box3::new([0.0; 3], [8.0, 4.0, 4.0], [true, false, true]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
        sim.fill_solvent();
        sim.set_body_force(|_| [0.15, 0.0, 0.0]);
        for _ in 0..2000 {
            sim.step();
        }
        // Accumulate the profile over further steps.
        let bins = 10;
        let mut acc = vec![0.0f64; bins];
        let samples = 1200;
        for _ in 0..samples {
            sim.step();
            for (b, (_, v, _)) in sim.velocity_profile(1, bins).iter().enumerate() {
                acc[b] += v[0];
            }
        }
        for a in &mut acc {
            *a /= samples as f64;
        }
        // Fit u(y) = c0 + c1 y + c2 y² by least squares and check the
        // parabola explains the data and has negative curvature.
        let ys: Vec<f64> = (0..bins).map(|b| (b as f64 + 0.5) * 0.4).collect();
        let (c0, c1, c2) = quad_fit(&ys, &acc);
        assert!(c2 < 0.0, "profile must be concave: c2={c2}");
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        let mean: f64 = acc.iter().sum::<f64>() / bins as f64;
        for (y, u) in ys.iter().zip(&acc) {
            let fit = c0 + c1 * y + c2 * y * y;
            ss_res += (u - fit).powi(2);
            ss_tot += (u - mean).powi(2);
        }
        let r2 = 1.0 - ss_res / ss_tot.max(1e-30);
        assert!(r2 > 0.9, "parabolic fit R² = {r2}, profile {acc:?}");
        // Near-wall bins must be much slower than the center (no-slip).
        let center = acc[bins / 2].max(acc[bins / 2 - 1]);
        assert!(acc[0] < 0.5 * center, "no-slip violated: {acc:?}");
        assert!(acc[bins - 1] < 0.5 * center, "no-slip violated: {acc:?}");
    }

    #[test]
    fn open_boundary_sustains_density_and_flow() {
        let cfg = DpdConfig {
            seed: 5,
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [8.0, 4.0, 4.0], [false, true, true]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::None);
        sim.fill_solvent();
        let mut ob = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
        ob.target_count = Some(sim.particles.len());
        sim.set_open_x(ob);
        let n0 = sim.particles.len();
        for _ in 0..1000 {
            sim.step();
        }
        // Mean streamwise velocity approaches the imposed 0.5; average over
        // a trailing window (an instantaneous mean fluctuates with the slow
        // momentum modes of the open system).
        let mut mean_u = 0.0;
        let samples = 200;
        for _ in 0..samples {
            sim.step();
            mean_u += sim.particles.vx.iter().sum::<f64>() / sim.particles.len() as f64;
        }
        mean_u /= samples as f64;
        let n1 = sim.particles.len();
        assert!(
            (n1 as f64 - n0 as f64).abs() < 0.15 * n0 as f64,
            "density drift: {n0} -> {n1}"
        );
        assert!(
            (mean_u - 0.5).abs() < 0.15,
            "mean streamwise velocity {mean_u}"
        );
    }

    #[test]
    fn pipe_flow_peaks_on_axis() {
        let cfg = DpdConfig {
            seed: 6,
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [6.0, 6.4, 6.4], [true, false, false]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::CylinderX(3.0));
        sim.fill_solvent();
        sim.set_body_force(|_| [0.08, 0.0, 0.0]);
        for _ in 0..700 {
            sim.step();
        }
        // Radial profile: center vs edge.
        let (cy, cz) = (3.2, 3.2);
        let (mut u_in, mut n_in, mut u_out, mut n_out) = (0.0, 0, 0.0, 0);
        let samples = 200;
        for _ in 0..samples {
            sim.step();
            for i in 0..sim.particles.len() {
                let r =
                    ((sim.particles.y[i] - cy).powi(2) + (sim.particles.z[i] - cz).powi(2)).sqrt();
                if r < 1.0 {
                    u_in += sim.particles.vx[i];
                    n_in += 1;
                } else if r > 2.4 {
                    u_out += sim.particles.vx[i];
                    n_out += 1;
                }
            }
        }
        let u_in = u_in / n_in.max(1) as f64;
        let u_out = u_out / n_out.max(1) as f64;
        assert!(
            u_in > 2.0 * u_out.max(0.001),
            "pipe profile not peaked: center {u_in}, edge {u_out}"
        );
    }

    #[test]
    fn platelets_aggregate_near_sites() {
        let cfg = DpdConfig {
            seed: 7,
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [6.0, 4.0, 4.0], [true, false, true]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
        sim.fill_solvent();
        let n_platelets = sim.seed_platelets(0.05);
        assert!(n_platelets > 10);
        sim.sites = WallSites::on_plane(30, 1, 0.0, [0.0; 3], [6.0, 0.0, 4.0], 13);
        sim.platelet_params = PlateletParams {
            delay_steps: 20,
            trigger_dist: 0.8,
            ..Default::default()
        };
        sim.set_body_force(|_| [0.02, 0.0, 0.0]);
        for _ in 0..600 {
            sim.step();
        }
        let (_, _, active, adhered) = sim.platelet_census();
        assert!(
            active + adhered > 0,
            "no platelets activated: census {:?}",
            sim.platelet_census()
        );
    }

    /// The headline contract at the DPD level: snapshot mid-run, restore
    /// into a compatibly constructed sim, continue both — every future
    /// state byte matches, including the open-boundary insertion stream.
    #[test]
    fn checkpoint_resume_is_bitwise() {
        let build = || {
            let cfg = DpdConfig {
                seed: 21,
                ..Default::default()
            };
            let bx = Box3::new([0.0; 3], [8.0, 4.0, 4.0], [false, true, true]);
            let mut sim = DpdSim::new(cfg, bx, WallGeometry::None);
            sim.fill_solvent();
            let mut ob = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
            ob.target_count = Some(sim.particles.len());
            sim.set_open_x(ob);
            sim
        };
        let mut reference = build();
        for _ in 0..30 {
            reference.step();
        }
        let bytes = nkg_ckpt::snapshot_bytes(&reference);
        let mut resumed = build();
        nkg_ckpt::restore_bytes(&mut resumed, &bytes).unwrap();
        assert_eq!(resumed.step_count, reference.step_count);
        for _ in 0..20 {
            reference.step();
            resumed.step();
        }
        assert_eq!(reference.particles.len(), resumed.particles.len());
        for i in 0..reference.particles.len() {
            for k in 0..3 {
                assert_eq!(
                    reference.particles.pos(i)[k].to_bits(),
                    resumed.particles.pos(i)[k].to_bits(),
                    "position diverged at particle {i} axis {k}"
                );
                assert_eq!(
                    reference.particles.vel(i)[k].to_bits(),
                    resumed.particles.vel(i)[k].to_bits(),
                    "velocity diverged at particle {i} axis {k}"
                );
            }
        }
        assert_eq!(reference.time.to_bits(), resumed.time.to_bits());
        assert_eq!(reference.last_pair_count, resumed.last_pair_count);
    }

    /// A snapshot must refuse to load into a sim built with different
    /// physics parameters.
    #[test]
    fn checkpoint_refuses_config_mismatch() {
        let sim = periodic_box(30);
        let bytes = nkg_ckpt::snapshot_bytes(&sim);
        let cfg = DpdConfig {
            seed: 31, // differs
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [6.0; 3], [true; 3]);
        let mut other = DpdSim::new(cfg, bx, WallGeometry::None);
        other.fill_solvent();
        assert!(matches!(
            nkg_ckpt::restore_bytes(&mut other, &bytes),
            Err(CkptError::Mismatch(_))
        ));
    }

    #[test]
    fn bin_sampler_emits_every_nts() {
        let mut sim = periodic_box(8);
        let mut sampler = BinSampler::new(1, 6, 0, 10);
        let mut snaps = 0;
        for _ in 0..35 {
            sim.step();
            if sampler.accumulate(&sim).is_some() {
                snaps += 1;
            }
        }
        assert_eq!(snaps, 3);
    }
}
