//! Inflow/outflow boundary conditions with flux-driven particle insertion
//! and deletion (Lei–Fedosov–Karniadakis, JCP 2011): the paper's mechanism
//! for imposing non-periodic, unsteady boundary conditions — "at
//! inflow/outflow we insert/delete particles according to local particle
//! flux".
//!
//! The inflow face (x = lo) is tiled with `ny × nz` bins; each bin carries a
//! target velocity (set by the continuum coupling every exchange). Per step
//! each bin inserts `ρ u_n A Δt` particles on average (fractional parts are
//! carried over), placed uniformly in a thin buffer slab with the target
//! velocity plus thermal noise. Particles leaving through either x face are
//! deleted.
//!
//! Insertion randomness is counter-based (see [`crate::streams`]): draws
//! are keyed on `(seed, DOMAIN_INFLOW, step, bin, lane)` — respectively
//! `(seed, DOMAIN_FEEDBACK, step, 0, lane)` for the density-feedback
//! top-up — so there is no generator state to checkpoint and a resumed run
//! inserts byte-identical particles.

use crate::domain::Box3;
use crate::particles::Particles;
use crate::streams::{StreamLane, DOMAIN_FEEDBACK, DOMAIN_INFLOW};
use nkg_ckpt::{CkptError, Dec, Enc, Snapshot};

/// Flux-driven open boundary along x.
#[derive(Debug, Clone)]
pub struct OpenBoundaryX {
    /// Face bin counts (y, z).
    pub bins: (usize, usize),
    /// Target inflow velocity per bin (row-major `iz * ny + iy`).
    pub target: Vec<[f64; 3]>,
    /// Number density to maintain.
    pub rho: f64,
    /// Thermal velocity scale `sqrt(k_B T)` for insertion noise.
    pub vth: f64,
    /// Fractional insertion debt per bin.
    debt: Vec<f64>,
    /// Species for inserted particles.
    pub species: u8,
    /// Target particle count for density feedback (`None` = pure flux
    /// insertion). Open boundaries lose particles to one-sided thermal
    /// effusion at both faces; the feedback term restores the equilibrium
    /// density with a small relaxation gain, playing the role of the
    /// reservoir/adaptive-force corrections of Lei et al.
    pub target_count: Option<usize>,
    /// Feedback gain (particles inserted per step per unit deficit).
    pub feedback_gain: f64,
    feedback_debt: f64,
    /// Adaptive velocity-control force gain in the face buffers
    /// (force per unit velocity error), the paper's "control flow
    /// velocities at inflow/outflow" mechanism.
    pub control_gain: f64,
}

impl OpenBoundaryX {
    /// Create with a uniform target velocity.
    pub fn new(ny: usize, nz: usize, rho: f64, kbt: f64, target: [f64; 3], species: u8) -> Self {
        assert!(ny >= 1 && nz >= 1);
        Self {
            bins: (ny, nz),
            target: vec![target; ny * nz],
            rho,
            vth: kbt.sqrt(),
            debt: vec![0.0; ny * nz],
            species,
            target_count: None,
            feedback_gain: 0.25,
            feedback_debt: 0.0,
            control_gain: 5.0,
        }
    }

    /// Set per-bin target velocities (the continuum→atomistic data path).
    /// `values` must hold one velocity per bin, row-major in `(z, y)`.
    pub fn set_targets(&mut self, values: &[[f64; 3]]) {
        assert_eq!(values.len(), self.target.len());
        self.target.copy_from_slice(values);
    }

    /// Bin index of a (y, z) position.
    pub fn bin_of(&self, bx: &Box3, y: f64, z: f64) -> usize {
        let (ny, nz) = self.bins;
        let ly = bx.hi[1] - bx.lo[1];
        let lz = bx.hi[2] - bx.lo[2];
        let iy = (((y - bx.lo[1]) / ly * ny as f64) as isize).clamp(0, ny as isize - 1) as usize;
        let iz = (((z - bx.lo[2]) / lz * nz as f64) as isize).clamp(0, nz as isize - 1) as usize;
        iz * ny + iy
    }

    /// Delete particles beyond either x face; returns the number removed.
    pub fn delete_outflow(&self, p: &mut Particles, bx: &Box3) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < p.len() {
            let x = p.x[i];
            if x < bx.lo[0] || x > bx.hi[0] {
                p.swap_remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Insert particles at the inflow according to the per-bin flux,
    /// drawing counter-based randomness keyed on `(seed, step)`. Returns
    /// the number inserted.
    pub fn insert_inflow(
        &mut self,
        p: &mut Particles,
        bx: &Box3,
        dt: f64,
        seed: u64,
        step: u64,
    ) -> usize {
        let (ny, nz) = self.bins;
        let ly = (bx.hi[1] - bx.lo[1]) / ny as f64;
        let lz = (bx.hi[2] - bx.lo[2]) / nz as f64;
        let area = ly * lz;
        let slab = (0.1 * (bx.hi[0] - bx.lo[0])).min(1.0);
        let mut inserted = 0;
        for iz in 0..nz {
            for iy in 0..ny {
                let b = iz * ny + iy;
                let mut lane = StreamLane::new(seed, DOMAIN_INFLOW, step, b as u64);
                let un = self.target[b][0].max(0.0); // inflow along +x only
                self.debt[b] += self.rho * un * area * dt;
                while self.debt[b] >= 1.0 {
                    self.debt[b] -= 1.0;
                    let y = bx.lo[1] + (iy as f64 + lane.u01()) * ly;
                    let z = bx.lo[2] + (iz as f64 + lane.u01()) * lz;
                    let x = bx.lo[0] + lane.u01() * slab;
                    let vel = [
                        self.target[b][0] + self.vth * lane.gaussian(),
                        self.target[b][1] + self.vth * lane.gaussian(),
                        self.target[b][2] + self.vth * lane.gaussian(),
                    ];
                    p.push([x, y, z], vel, self.species);
                    inserted += 1;
                }
            }
        }
        // Density feedback: top up toward the target count.
        if let Some(target) = self.target_count {
            let deficit = target as f64 - p.len() as f64;
            if deficit > 0.0 {
                self.feedback_debt += deficit * self.feedback_gain;
                let slab = (0.1 * (bx.hi[0] - bx.lo[0])).min(1.0);
                let mut lane = StreamLane::new(seed, DOMAIN_FEEDBACK, step, 0);
                while self.feedback_debt >= 1.0 {
                    self.feedback_debt -= 1.0;
                    let b = lane.index(self.target.len());
                    let iy = b % ny;
                    let iz = b / ny;
                    let y = bx.lo[1] + (iy as f64 + lane.u01()) * ly;
                    let z = bx.lo[2] + (iz as f64 + lane.u01()) * lz;
                    let x = bx.lo[0] + lane.u01() * slab;
                    let vel = [
                        self.target[b][0] + self.vth * lane.gaussian(),
                        self.target[b][1] + self.vth * lane.gaussian(),
                        self.target[b][2] + self.vth * lane.gaussian(),
                    ];
                    p.push([x, y, z], vel, self.species);
                    inserted += 1;
                }
            }
        }
        inserted
    }
}

impl Snapshot for OpenBoundaryX {
    const TAG: u32 = nkg_ckpt::tag4(b"OBDX");

    fn snapshot(&self, enc: &mut Enc) {
        // Geometry fingerprint (verified on restore).
        enc.put(self.bins.0);
        enc.put(self.bins.1);
        // Evolving state.
        enc.put_slice(&self.target);
        enc.put(self.rho);
        enc.put(self.vth);
        enc.put_slice(&self.debt);
        enc.put(self.species);
        enc.put_bool(self.target_count.is_some());
        enc.put(self.target_count.unwrap_or(0) as u64);
        enc.put(self.feedback_gain);
        enc.put(self.feedback_debt);
        enc.put(self.control_gain);
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), CkptError> {
        let (ny, nz) = (dec.take::<usize>()?, dec.take::<usize>()?);
        if (ny, nz) != self.bins {
            return Err(CkptError::Mismatch(format!(
                "open boundary bins {:?} in snapshot, {:?} reconstructed",
                (ny, nz),
                self.bins
            )));
        }
        let target = dec.take_vec::<[f64; 3]>()?;
        if target.len() != ny * nz {
            return Err(CkptError::Malformed("open boundary target length"));
        }
        self.target = target;
        self.rho = dec.take()?;
        self.vth = dec.take()?;
        let debt = dec.take_vec::<f64>()?;
        if debt.len() != ny * nz {
            return Err(CkptError::Malformed("open boundary debt length"));
        }
        self.debt = debt;
        self.species = dec.take()?;
        let has_count = dec.take_bool()?;
        let count = dec.take::<u64>()? as usize;
        self.target_count = has_count.then_some(count);
        self.feedback_gain = dec.take()?;
        self.feedback_debt = dec.take()?;
        self.control_gain = dec.take()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkg_ckpt::{restore_bytes, snapshot_bytes};

    fn bx() -> Box3 {
        Box3::new([0.0; 3], [10.0, 4.0, 4.0], [false, true, true])
    }

    #[test]
    fn deletion_removes_exiting_particles() {
        let b = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
        let mut p = Particles::new();
        p.push([-0.1, 1.0, 1.0], [0.0; 3], 0);
        p.push([5.0, 1.0, 1.0], [0.0; 3], 0);
        p.push([10.2, 1.0, 1.0], [0.0; 3], 0);
        let removed = b.delete_outflow(&mut p, &bx());
        assert_eq!(removed, 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.x[0], 5.0);
    }

    #[test]
    fn insertion_rate_matches_flux() {
        let mut b = OpenBoundaryX::new(2, 2, 3.0, 0.5, [1.0, 0.0, 0.0], 0);
        let mut p = Particles::new();
        let dt = 0.01;
        let steps = 500;
        let mut total = 0;
        for s in 0..steps {
            total += b.insert_inflow(&mut p, &bx(), dt, 3, s);
        }
        // Expected: rho * u * A_total * dt * steps = 3 * 1 * 16 * 0.01 * 500 = 240.
        let expect = 240.0;
        assert!(
            (total as f64 - expect).abs() <= 1.0,
            "inserted {total}, expected {expect}"
        );
        // All inserted particles sit in the inflow slab.
        for &x in p.x.iter() {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn insertion_is_deterministic_in_the_key() {
        let run = || {
            let mut b = OpenBoundaryX::new(2, 2, 3.0, 1.0, [1.0, 0.0, 0.0], 0);
            let mut p = Particles::new();
            for s in 0..100 {
                b.insert_inflow(&mut p, &bx(), 0.01, 42, s);
            }
            p
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.pos(i), b.pos(i));
            assert_eq!(a.vel(i), b.vel(i));
        }
    }

    #[test]
    fn per_bin_targets_respected() {
        let mut b = OpenBoundaryX::new(2, 1, 3.0, 0.0, [0.0; 3], 0);
        // Bottom bin flows, top bin is stagnant.
        b.set_targets(&[[2.0, 0.0, 0.0], [0.0, 0.0, 0.0]]);
        let mut p = Particles::new();
        for s in 0..200 {
            b.insert_inflow(&mut p, &bx(), 0.01, 9, s);
        }
        assert!(!p.is_empty());
        for i in 0..p.len() {
            // Every particle must be in the lower-y half.
            assert!(p.y[i] < 2.0, "particle in stagnant bin: {:?}", p.pos(i));
            // Velocities carry the target (vth = 0 here).
            assert_eq!(p.vel(i), [2.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn negative_target_inserts_nothing() {
        let mut b = OpenBoundaryX::new(1, 1, 3.0, 1.0, [-1.0, 0.0, 0.0], 0);
        let mut p = Particles::new();
        let n = b.insert_inflow(&mut p, &bx(), 1.0, 1, 0);
        assert_eq!(n, 0);
    }

    #[test]
    fn snapshot_round_trips_mid_debt_state() {
        let mut b = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.7, 0.0, 0.0], 1);
        b.target_count = Some(321);
        let mut p = Particles::new();
        for s in 0..37 {
            b.insert_inflow(&mut p, &bx(), 0.013, 5, s);
        }
        let bytes = snapshot_bytes(&b);
        let mut fresh = OpenBoundaryX::new(2, 2, 1.0, 2.0, [0.0; 3], 0);
        restore_bytes(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh.debt, b.debt);
        assert_eq!(fresh.target, b.target);
        assert_eq!(fresh.target_count, Some(321));
        assert_eq!(fresh.feedback_debt, b.feedback_debt);
        // Restored and original boundaries insert identically from here on.
        let mut pa = p.clone();
        let mut pb = p.clone();
        let na = b.insert_inflow(&mut pa, &bx(), 0.013, 5, 37);
        let nb = fresh.insert_inflow(&mut pb, &bx(), 0.013, 5, 37);
        assert_eq!(na, nb);
        assert_eq!(pa.pos_aos(), pb.pos_aos());
    }

    #[test]
    fn snapshot_refuses_wrong_geometry() {
        let b = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
        let bytes = snapshot_bytes(&b);
        let mut other = OpenBoundaryX::new(4, 1, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
        assert!(matches!(
            restore_bytes(&mut other, &bytes),
            Err(CkptError::Mismatch(_))
        ));
    }
}
