//! Inflow/outflow boundary conditions with flux-driven particle insertion
//! and deletion (Lei–Fedosov–Karniadakis, JCP 2011): the paper's mechanism
//! for imposing non-periodic, unsteady boundary conditions — "at
//! inflow/outflow we insert/delete particles according to local particle
//! flux".
//!
//! The inflow face (x = lo) is tiled with `ny × nz` bins; each bin carries a
//! target velocity (set by the continuum coupling every exchange). Per step
//! each bin inserts `ρ u_n A Δt` particles on average (fractional parts are
//! carried over), placed uniformly in a thin buffer slab with the target
//! velocity plus thermal noise. Particles leaving through either x face are
//! deleted.

use crate::domain::Box3;
use crate::particles::Particles;
use rand::rngs::SmallRng;
use rand::Rng;

/// Flux-driven open boundary along x.
#[derive(Debug, Clone)]
pub struct OpenBoundaryX {
    /// Face bin counts (y, z).
    pub bins: (usize, usize),
    /// Target inflow velocity per bin (row-major `iz * ny + iy`).
    pub target: Vec<[f64; 3]>,
    /// Number density to maintain.
    pub rho: f64,
    /// Thermal velocity scale `sqrt(k_B T)` for insertion noise.
    pub vth: f64,
    /// Fractional insertion debt per bin.
    debt: Vec<f64>,
    /// Species for inserted particles.
    pub species: u8,
    /// Target particle count for density feedback (`None` = pure flux
    /// insertion). Open boundaries lose particles to one-sided thermal
    /// effusion at both faces; the feedback term restores the equilibrium
    /// density with a small relaxation gain, playing the role of the
    /// reservoir/adaptive-force corrections of Lei et al.
    pub target_count: Option<usize>,
    /// Feedback gain (particles inserted per step per unit deficit).
    pub feedback_gain: f64,
    feedback_debt: f64,
    /// Adaptive velocity-control force gain in the face buffers
    /// (force per unit velocity error), the paper's "control flow
    /// velocities at inflow/outflow" mechanism.
    pub control_gain: f64,
}

impl OpenBoundaryX {
    /// Create with a uniform target velocity.
    pub fn new(ny: usize, nz: usize, rho: f64, kbt: f64, target: [f64; 3], species: u8) -> Self {
        assert!(ny >= 1 && nz >= 1);
        Self {
            bins: (ny, nz),
            target: vec![target; ny * nz],
            rho,
            vth: kbt.sqrt(),
            debt: vec![0.0; ny * nz],
            species,
            target_count: None,
            feedback_gain: 0.25,
            feedback_debt: 0.0,
            control_gain: 5.0,
        }
    }

    /// Set per-bin target velocities (the continuum→atomistic data path).
    /// `values` must hold one velocity per bin, row-major in `(z, y)`.
    pub fn set_targets(&mut self, values: &[[f64; 3]]) {
        assert_eq!(values.len(), self.target.len());
        self.target.copy_from_slice(values);
    }

    /// Bin index of a (y, z) position.
    pub fn bin_of(&self, bx: &Box3, y: f64, z: f64) -> usize {
        let (ny, nz) = self.bins;
        let ly = bx.hi[1] - bx.lo[1];
        let lz = bx.hi[2] - bx.lo[2];
        let iy = (((y - bx.lo[1]) / ly * ny as f64) as isize).clamp(0, ny as isize - 1) as usize;
        let iz = (((z - bx.lo[2]) / lz * nz as f64) as isize).clamp(0, nz as isize - 1) as usize;
        iz * ny + iy
    }

    /// Delete particles beyond either x face; returns the number removed.
    pub fn delete_outflow(&self, p: &mut Particles, bx: &Box3) -> usize {
        let mut removed = 0;
        let mut i = 0;
        while i < p.len() {
            let x = p.pos[i][0];
            if x < bx.lo[0] || x > bx.hi[0] {
                p.swap_remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Insert particles at the inflow according to the per-bin flux.
    /// Returns the number inserted.
    pub fn insert_inflow(
        &mut self,
        p: &mut Particles,
        bx: &Box3,
        dt: f64,
        rng: &mut SmallRng,
    ) -> usize {
        let (ny, nz) = self.bins;
        let ly = (bx.hi[1] - bx.lo[1]) / ny as f64;
        let lz = (bx.hi[2] - bx.lo[2]) / nz as f64;
        let area = ly * lz;
        let slab = (0.1 * (bx.hi[0] - bx.lo[0])).min(1.0);
        let mut inserted = 0;
        for iz in 0..nz {
            for iy in 0..ny {
                let b = iz * ny + iy;
                let un = self.target[b][0].max(0.0); // inflow along +x only
                self.debt[b] += self.rho * un * area * dt;
                while self.debt[b] >= 1.0 {
                    self.debt[b] -= 1.0;
                    let y = bx.lo[1] + (iy as f64 + rng.gen::<f64>()) * ly;
                    let z = bx.lo[2] + (iz as f64 + rng.gen::<f64>()) * lz;
                    let x = bx.lo[0] + rng.gen::<f64>() * slab;
                    let vel = [
                        self.target[b][0] + self.vth * gaussian(rng),
                        self.target[b][1] + self.vth * gaussian(rng),
                        self.target[b][2] + self.vth * gaussian(rng),
                    ];
                    p.push([x, y, z], vel, self.species);
                    inserted += 1;
                }
            }
        }
        // Density feedback: top up toward the target count.
        if let Some(target) = self.target_count {
            let deficit = target as f64 - p.len() as f64;
            if deficit > 0.0 {
                self.feedback_debt += deficit * self.feedback_gain;
                let slab = (0.1 * (bx.hi[0] - bx.lo[0])).min(1.0);
                while self.feedback_debt >= 1.0 {
                    self.feedback_debt -= 1.0;
                    let b = rng.gen_range(0..self.target.len());
                    let iy = b % ny;
                    let iz = b / ny;
                    let y = bx.lo[1] + (iy as f64 + rng.gen::<f64>()) * ly;
                    let z = bx.lo[2] + (iz as f64 + rng.gen::<f64>()) * lz;
                    let x = bx.lo[0] + rng.gen::<f64>() * slab;
                    let vel = [
                        self.target[b][0] + self.vth * gaussian(rng),
                        self.target[b][1] + self.vth * gaussian(rng),
                        self.target[b][2] + self.vth * gaussian(rng),
                    ];
                    p.push([x, y, z], vel, self.species);
                    inserted += 1;
                }
            }
        }
        inserted
    }
}

/// Standard normal via Box–Muller.
pub fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn bx() -> Box3 {
        Box3::new([0.0; 3], [10.0, 4.0, 4.0], [false, true, true])
    }

    #[test]
    fn deletion_removes_exiting_particles() {
        let b = OpenBoundaryX::new(2, 2, 3.0, 1.0, [0.5, 0.0, 0.0], 0);
        let mut p = Particles::new();
        p.push([-0.1, 1.0, 1.0], [0.0; 3], 0);
        p.push([5.0, 1.0, 1.0], [0.0; 3], 0);
        p.push([10.2, 1.0, 1.0], [0.0; 3], 0);
        let removed = b.delete_outflow(&mut p, &bx());
        assert_eq!(removed, 2);
        assert_eq!(p.len(), 1);
        assert_eq!(p.pos[0][0], 5.0);
    }

    #[test]
    fn insertion_rate_matches_flux() {
        let mut b = OpenBoundaryX::new(2, 2, 3.0, 0.5, [1.0, 0.0, 0.0], 0);
        let mut p = Particles::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let dt = 0.01;
        let steps = 500;
        let mut total = 0;
        for _ in 0..steps {
            total += b.insert_inflow(&mut p, &bx(), dt, &mut rng);
        }
        // Expected: rho * u * A_total * dt * steps = 3 * 1 * 16 * 0.01 * 500 = 240.
        let expect = 240.0;
        assert!(
            (total as f64 - expect).abs() <= 1.0,
            "inserted {total}, expected {expect}"
        );
        // All inserted particles sit in the inflow slab.
        for q in &p.pos {
            assert!(q[0] >= 0.0 && q[0] <= 1.0);
        }
    }

    #[test]
    fn per_bin_targets_respected() {
        let mut b = OpenBoundaryX::new(2, 1, 3.0, 0.0, [0.0; 3], 0);
        // Bottom bin flows, top bin is stagnant.
        b.set_targets(&[[2.0, 0.0, 0.0], [0.0, 0.0, 0.0]]);
        let mut p = Particles::new();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..200 {
            b.insert_inflow(&mut p, &bx(), 0.01, &mut rng);
        }
        assert!(!p.is_empty());
        // Every particle must be in the lower-y half.
        for q in &p.pos {
            assert!(q[1] < 2.0, "particle in stagnant bin: {q:?}");
        }
        // Velocities carry the target (vth = 0 here).
        for v in &p.vel {
            assert_eq!(*v, [2.0, 0.0, 0.0]);
        }
    }

    #[test]
    fn negative_target_inserts_nothing() {
        let mut b = OpenBoundaryX::new(1, 1, 3.0, 1.0, [-1.0, 0.0, 0.0], 0);
        let mut p = Particles::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let n = b.insert_inflow(&mut p, &bx(), 1.0, &mut rng);
        assert_eq!(n, 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let (mut m, mut v) = (0.0, 0.0);
        for _ in 0..n {
            let g = gaussian(&mut rng);
            m += g;
            v += g * g;
        }
        m /= n as f64;
        v = v / n as f64 - m * m;
        assert!(m.abs() < 0.02);
        assert!((v - 1.0).abs() < 0.05);
    }
}
