//! Simulation boxes.

/// An axis-aligned simulation box with per-axis periodicity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Box3 {
    /// Lower corner.
    pub lo: [f64; 3],
    /// Upper corner.
    pub hi: [f64; 3],
    /// Periodic flags per axis.
    pub periodic: [bool; 3],
}

impl Box3 {
    /// Create a box; `hi` must exceed `lo` on every axis.
    pub fn new(lo: [f64; 3], hi: [f64; 3], periodic: [bool; 3]) -> Self {
        for d in 0..3 {
            assert!(hi[d] > lo[d], "degenerate box on axis {d}");
        }
        Self { lo, hi, periodic }
    }

    /// Edge lengths.
    pub fn lengths(&self) -> [f64; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        let l = self.lengths();
        l[0] * l[1] * l[2]
    }

    /// Minimum-image displacement `a − b` respecting periodicity.
    pub fn min_image(&self, a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        let l = self.lengths();
        let mut d = [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        for k in 0..3 {
            if self.periodic[k] {
                if d[k] > 0.5 * l[k] {
                    d[k] -= l[k];
                } else if d[k] < -0.5 * l[k] {
                    d[k] += l[k];
                }
            }
        }
        d
    }

    /// Wrap a position into the box along periodic axes (non-periodic axes
    /// are left untouched — walls/inflow handle those).
    pub fn wrap(&self, p: &mut [f64; 3]) {
        let l = self.lengths();
        for k in 0..3 {
            if self.periodic[k] {
                while p[k] >= self.hi[k] {
                    p[k] -= l[k];
                }
                while p[k] < self.lo[k] {
                    p[k] += l[k];
                }
            }
        }
    }

    /// Whether the point is inside (non-strict upper bound).
    pub fn contains(&self, p: [f64; 3]) -> bool {
        (0..3).all(|k| p[k] >= self.lo[k] && p[k] <= self.hi[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Box3 {
        Box3::new([0.0; 3], [10.0, 5.0, 4.0], [true, false, true])
    }

    #[test]
    fn geometry() {
        let bx = b();
        assert_eq!(bx.lengths(), [10.0, 5.0, 4.0]);
        assert_eq!(bx.volume(), 200.0);
    }

    #[test]
    fn min_image_wraps_periodic_axes() {
        let bx = b();
        let d = bx.min_image([9.5, 0.0, 0.0], [0.5, 0.0, 0.0]);
        assert!((d[0] + 1.0).abs() < 1e-12, "{d:?}");
        // Non-periodic axis keeps the raw distance.
        let d = bx.min_image([0.0, 4.5, 0.0], [0.0, 0.5, 0.0]);
        assert_eq!(d[1], 4.0);
    }

    #[test]
    fn wrap_moves_into_box() {
        let bx = b();
        let mut p = [12.5, 6.0, -1.0];
        bx.wrap(&mut p);
        assert_eq!(p[0], 2.5);
        assert_eq!(p[1], 6.0); // y not periodic: untouched
        assert_eq!(p[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_rejected() {
        Box3::new([0.0; 3], [1.0, 0.0, 1.0], [true; 3]);
    }
}
