//! No-slip wall models: the effective boundary force of
//! Lei–Fedosov–Karniadakis (JCP 2011) plus bounce-back reflection.
//!
//! A wall replaces the DPD fluid beyond it; the missing conservative
//! repulsion is restored by a normal force `F_eff(h)` obtained *in
//! preprocessing* by integrating the Groot–Warren conservative force over
//! the excluded half-space at the equilibrium density (paper §3: "The Feff
//! can be calculated during pre-processing"). Near-wall dissipative drag
//! models the wall's thermostatting/no-slip friction, and particles that
//! penetrate the wall are bounced back (position reflected, velocity
//! reversed), which enforces no-slip at the surface.

/// Tabulated effective wall force, precomputed at construction.
#[derive(Debug, Clone)]
pub struct EffectiveWallForce {
    rc: f64,
    table: Vec<f64>,
}

impl EffectiveWallForce {
    /// Precompute `F_eff(h)` for conservative coefficient `a`, fluid number
    /// density `rho` and cutoff `rc`:
    /// `F(h) = a ρ ∫_{u=h}^{rc} ∫_{ρ'=0}^{√(rc²−u²)} (1 − r/rc)(u/r) 2πρ' dρ' du`.
    pub fn new(a: f64, rho: f64, rc: f64) -> Self {
        let n = 128;
        let mut table = Vec::with_capacity(n + 1);
        for k in 0..=n {
            let h = k as f64 / n as f64 * rc;
            table.push(Self::integrate(a, rho, rc, h));
        }
        Self { rc, table }
    }

    fn integrate(a: f64, rho: f64, rc: f64, h: f64) -> f64 {
        // Midpoint rule in (u, rho').
        let nu = 200;
        let mut total = 0.0;
        let du = (rc - h) / nu as f64;
        if du <= 0.0 {
            return 0.0;
        }
        for iu in 0..nu {
            let u = h + (iu as f64 + 0.5) * du;
            let rho_max = (rc * rc - u * u).max(0.0).sqrt();
            let nr = 64;
            let dr = rho_max / nr as f64;
            let mut inner = 0.0;
            for ir in 0..nr {
                let rp = (ir as f64 + 0.5) * dr;
                let r = (u * u + rp * rp).sqrt();
                if r < rc {
                    inner += (1.0 - r / rc) * (u / r) * 2.0 * std::f64::consts::PI * rp * dr;
                }
            }
            total += inner * du;
        }
        a * rho * total
    }

    /// Normal force magnitude at wall distance `h` (0 beyond the cutoff).
    pub fn force(&self, h: f64) -> f64 {
        if h <= 0.0 {
            return self.table[0];
        }
        if h >= self.rc {
            return 0.0;
        }
        let t = h / self.rc * (self.table.len() - 1) as f64;
        let k = t.floor() as usize;
        let frac = t - k as f64;
        self.table[k] * (1.0 - frac) + self.table[(k + 1).min(self.table.len() - 1)] * frac
    }

    /// Cutoff radius.
    pub fn rc(&self) -> f64 {
        self.rc
    }
}

/// Apply the wall interaction for a particle at distance `h` from the wall
/// (measured along the inward normal `normal`): effective normal force plus
/// near-wall tangential dissipation `−γ_w (1 − h/rc)² v_t`.
pub fn wall_force(
    eff: &EffectiveWallForce,
    gamma_wall: f64,
    h: f64,
    normal: [f64; 3],
    vel: [f64; 3],
    force: &mut [f64; 3],
) {
    if h >= eff.rc() {
        return;
    }
    let fn_mag = eff.force(h);
    let w = 1.0 - (h / eff.rc()).clamp(0.0, 1.0);
    let vn = vel[0] * normal[0] + vel[1] * normal[1] + vel[2] * normal[2];
    for k in 0..3 {
        let vt = vel[k] - vn * normal[k];
        force[k] += fn_mag * normal[k] - gamma_wall * w * w * vt;
    }
}

/// Bounce a particle back across a planar wall if it penetrated:
/// `side > 0` means the fluid occupies `coord > wall_pos`. Returns true if
/// a bounce occurred. Position is reflected, velocity fully reversed
/// (bounce-back ⇒ no-slip).
pub fn bounce_back_plane(
    pos: &mut [f64; 3],
    vel: &mut [f64; 3],
    axis: usize,
    wall_pos: f64,
    side: f64,
) -> bool {
    let pen = (pos[axis] - wall_pos) * side;
    if pen >= 0.0 {
        return false;
    }
    pos[axis] = wall_pos - (pos[axis] - wall_pos);
    for v in vel.iter_mut() {
        *v = -*v;
    }
    true
}

/// Bounce back across a cylinder of radius `r0` about the x-axis centered
/// at `(cy, cz)`; fluid inside. Returns true if a bounce occurred.
pub fn bounce_back_cylinder(
    pos: &mut [f64; 3],
    vel: &mut [f64; 3],
    r0: f64,
    cy: f64,
    cz: f64,
) -> bool {
    let dy = pos[1] - cy;
    let dz = pos[2] - cz;
    let r = (dy * dy + dz * dz).sqrt();
    if r <= r0 {
        return false;
    }
    // Reflect radially back inside.
    let rnew = (2.0 * r0 - r).max(0.0);
    let scale = if r > 1e-30 { rnew / r } else { 0.0 };
    pos[1] = cy + dy * scale;
    pos[2] = cz + dz * scale;
    for v in vel.iter_mut() {
        *v = -*v;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_force_monotone_decreasing() {
        let eff = EffectiveWallForce::new(25.0, 3.0, 1.0);
        let mut prev = f64::MAX;
        for k in 0..=10 {
            let h = k as f64 * 0.1;
            let f = eff.force(h);
            assert!(f >= 0.0);
            assert!(f <= prev + 1e-12, "not monotone at h={h}");
            prev = f;
        }
        assert_eq!(eff.force(1.0), 0.0);
        assert_eq!(eff.force(2.0), 0.0);
    }

    #[test]
    fn effective_force_scales_linearly_with_a_and_rho() {
        let base = EffectiveWallForce::new(25.0, 3.0, 1.0);
        let double_a = EffectiveWallForce::new(50.0, 3.0, 1.0);
        let double_rho = EffectiveWallForce::new(25.0, 6.0, 1.0);
        for h in [0.0, 0.3, 0.7] {
            assert!((double_a.force(h) - 2.0 * base.force(h)).abs() < 1e-9);
            assert!((double_rho.force(h) - 2.0 * base.force(h)).abs() < 1e-9);
        }
    }

    #[test]
    fn contact_value_matches_analytic() {
        // At h=0 the integral has closed form: a ρ π rc³ / 12... verify
        // against an independent coarse numeric value instead of trusting a
        // constant: F(0) ≈ a·ρ·0.2618·rc³ (π/12 = 0.2618).
        let eff = EffectiveWallForce::new(1.0, 1.0, 1.0);
        let expect = std::f64::consts::PI / 12.0;
        assert!(
            (eff.force(0.0) - expect).abs() < 0.01 * expect,
            "F(0) = {}, analytic π/12 = {expect}",
            eff.force(0.0)
        );
    }

    #[test]
    fn wall_force_damps_tangential_velocity() {
        let eff = EffectiveWallForce::new(25.0, 3.0, 1.0);
        let mut f = [0.0; 3];
        wall_force(&eff, 5.0, 0.2, [0.0, 1.0, 0.0], [2.0, 0.5, 0.0], &mut f);
        assert!(f[0] < 0.0, "tangential drag should oppose vx: {f:?}");
        assert!(f[1] > 0.0, "normal force should push away: {f:?}");
    }

    #[test]
    fn bounce_back_plane_reflects() {
        let mut p = [0.0, -0.1, 0.0];
        let mut v = [1.0, -2.0, 0.5];
        let bounced = bounce_back_plane(&mut p, &mut v, 1, 0.0, 1.0);
        assert!(bounced);
        assert_eq!(p[1], 0.1);
        assert_eq!(v, [-1.0, 2.0, -0.5]);
        // Inside the fluid: no change.
        let mut p2 = [0.0, 0.3, 0.0];
        let mut v2 = [1.0, 1.0, 1.0];
        assert!(!bounce_back_plane(&mut p2, &mut v2, 1, 0.0, 1.0));
        assert_eq!(v2, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn bounce_back_cylinder_reflects_radially() {
        let mut p = [1.0, 1.2, 0.0];
        let mut v = [0.5, 1.0, 0.0];
        let bounced = bounce_back_cylinder(&mut p, &mut v, 1.0, 0.0, 0.0);
        assert!(bounced);
        let r = (p[1] * p[1] + p[2] * p[2]).sqrt();
        assert!((r - 0.8).abs() < 1e-12, "reflected radius {r}");
        assert_eq!(v, [-0.5, -1.0, 0.0]);
    }
}
