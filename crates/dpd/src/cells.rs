//! Linked-cell neighbor search.

use crate::domain::Box3;

/// A cell grid over a box with cell edge ≥ the cutoff radius, giving O(N)
/// neighbor enumeration.
#[derive(Debug, Clone)]
pub struct CellGrid {
    bx: Box3,
    /// Cells per axis.
    pub dims: [usize; 3],
    /// Cell edge per axis.
    cell: [f64; 3],
    /// Head-of-chain per cell (`usize::MAX` = empty).
    head: Vec<usize>,
    /// Next-in-chain per particle.
    next: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl CellGrid {
    /// Build the grid geometry for cutoff `rc` (no particles yet).
    pub fn new(bx: Box3, rc: f64) -> Self {
        assert!(rc > 0.0);
        let l = bx.lengths();
        let dims = [
            (l[0] / rc).floor().max(1.0) as usize,
            (l[1] / rc).floor().max(1.0) as usize,
            (l[2] / rc).floor().max(1.0) as usize,
        ];
        let cell = [
            l[0] / dims[0] as f64,
            l[1] / dims[1] as f64,
            l[2] / dims[2] as f64,
        ];
        let ncell = dims[0] * dims[1] * dims[2];
        Self {
            bx,
            dims,
            cell,
            head: vec![NONE; ncell],
            next: Vec::new(),
        }
    }

    /// Cell index of a position (clamped to the box).
    pub fn cell_of(&self, p: [f64; 3]) -> usize {
        let mut c = [0usize; 3];
        for k in 0..3 {
            let t = ((p[k] - self.bx.lo[k]) / self.cell[k]).floor() as isize;
            c[k] = t.clamp(0, self.dims[k] as isize - 1) as usize;
        }
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Rebuild the linked lists from positions.
    pub fn rebuild(&mut self, pos: &[[f64; 3]]) {
        self.head.iter_mut().for_each(|h| *h = NONE);
        self.next.clear();
        self.next.resize(pos.len(), NONE);
        for (i, &p) in pos.iter().enumerate() {
            let c = self.cell_of(p);
            self.next[i] = self.head[c];
            self.head[c] = i;
        }
    }

    /// Iterate the particles of one cell.
    pub fn cell_particles(&self, c: usize) -> CellIter<'_> {
        CellIter {
            grid: self,
            cur: self.head[c],
        }
    }

    /// Visit every unordered pair `(i, j)` within the cutoff structure:
    /// pairs within a cell and pairs between a cell and its 13
    /// forward-neighbor cells (minimum-image aware). The callback performs
    /// the distance check itself.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        let [nx, ny, nz] = self.dims;
        // 13 forward offsets + self-cell handled separately.
        const OFFS: [[isize; 3]; 13] = [
            [1, 0, 0],
            [-1, 1, 0],
            [0, 1, 0],
            [1, 1, 0],
            [-1, -1, 1],
            [0, -1, 1],
            [1, -1, 1],
            [-1, 0, 1],
            [0, 0, 1],
            [1, 0, 1],
            [-1, 1, 1],
            [0, 1, 1],
            [1, 1, 1],
        ];
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let c = (cz * ny + cy) * nx + cx;
                    // In-cell pairs.
                    let mut i = self.head[c];
                    while i != NONE {
                        let mut j = self.next[i];
                        while j != NONE {
                            f(i, j);
                            j = self.next[j];
                        }
                        i = self.next[i];
                    }
                    // Cross-cell pairs.
                    for off in OFFS {
                        let mut q = [
                            cx as isize + off[0],
                            cy as isize + off[1],
                            cz as isize + off[2],
                        ];
                        let dims = [nx as isize, ny as isize, nz as isize];
                        let mut skip = false;
                        for k in 0..3 {
                            if q[k] < 0 || q[k] >= dims[k] {
                                if self.bx.periodic[k] && dims[k] > 2 {
                                    q[k] = (q[k] + dims[k]) % dims[k];
                                } else if self.bx.periodic[k] && dims[k] <= 2 {
                                    // With ≤2 cells the wrapped neighbor
                                    // duplicates an already-visited pair;
                                    // fall back handled by caller choosing
                                    // bigger boxes. Skip to stay correct.
                                    skip = true;
                                } else {
                                    skip = true;
                                }
                            }
                        }
                        if skip {
                            continue;
                        }
                        let c2 = ((q[2] as usize) * ny + q[1] as usize) * nx + q[0] as usize;
                        if c2 == c {
                            continue;
                        }
                        let mut i = self.head[c];
                        while i != NONE {
                            let mut j = self.head[c2];
                            while j != NONE {
                                f(i, j);
                                j = self.next[j];
                            }
                            i = self.next[i];
                        }
                    }
                }
            }
        }
    }
}

impl CellGrid {
    /// Visit every particle in the 27-cell neighborhood of position `p`
    /// (each candidate exactly once; duplicate wrapped cells are removed,
    /// so small periodic boxes stay correct). Used by the parallel
    /// full-neighbor force sweep.
    pub fn for_each_candidate(&self, p: [f64; 3], mut f: impl FnMut(usize)) {
        let c = self.cell_of(p);
        let dims = [
            self.dims[0] as isize,
            self.dims[1] as isize,
            self.dims[2] as isize,
        ];
        let cx = (c % self.dims[0]) as isize;
        let cy = ((c / self.dims[0]) % self.dims[1]) as isize;
        let cz = (c / (self.dims[0] * self.dims[1])) as isize;
        let mut cells = [0usize; 27];
        let mut ncells = 0;
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let mut q = [cx + dx, cy + dy, cz + dz];
                    let mut ok = true;
                    for k in 0..3 {
                        if q[k] < 0 || q[k] >= dims[k] {
                            if self.bx.periodic[k] {
                                q[k] = (q[k] + dims[k]) % dims[k];
                            } else {
                                ok = false;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let id = ((q[2] as usize) * self.dims[1] + q[1] as usize) * self.dims[0]
                        + q[0] as usize;
                    if !cells[..ncells].contains(&id) {
                        cells[ncells] = id;
                        ncells += 1;
                    }
                }
            }
        }
        for &cell in &cells[..ncells] {
            let mut i = self.head[cell];
            while i != NONE {
                f(i);
                i = self.next[i];
            }
        }
    }
}

/// Iterator over one cell's particle chain.
pub struct CellIter<'a> {
    grid: &'a CellGrid,
    cur: usize,
}

impl Iterator for CellIter<'_> {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.cur == NONE {
            return None;
        }
        let i = self.cur;
        self.cur = self.grid.next[i];
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn grid_with(points: &[[f64; 3]], periodic: bool) -> CellGrid {
        let bx = Box3::new([0.0; 3], [6.0, 6.0, 6.0], [periodic; 3]);
        let mut g = CellGrid::new(bx, 1.0);
        g.rebuild(points);
        g
    }

    #[test]
    fn cell_assignment() {
        let g = grid_with(&[[0.5, 0.5, 0.5], [5.5, 5.5, 5.5]], false);
        assert_eq!(g.cell_of([0.5, 0.5, 0.5]), 0);
        assert_eq!(
            g.cell_of([5.5, 5.5, 5.5]),
            g.dims[0] * g.dims[1] * g.dims[2] - 1
        );
    }

    #[test]
    fn pairs_match_brute_force_within_cutoff() {
        // Deterministic scatter of points; compare pair sets for r < rc.
        let mut pts = Vec::new();
        let mut s = 7u64;
        for _ in 0..150 {
            let mut r = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 11) as f64 / (1u64 << 53) as f64 * 6.0
            };
            pts.push([r(), r(), r()]);
        }
        for periodic in [false, true] {
            let g = grid_with(&pts, periodic);
            let bx = Box3::new([0.0; 3], [6.0; 3], [periodic; 3]);
            let mut got = HashSet::new();
            g.for_each_pair(|i, j| {
                let d = bx.min_image(pts[i], pts[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < 1.0 {
                    got.insert((i.min(j), i.max(j)));
                }
            });
            let mut expect = HashSet::new();
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    let d = bx.min_image(pts[i], pts[j]);
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if r2 < 1.0 {
                        expect.insert((i, j));
                    }
                }
            }
            assert_eq!(got, expect, "periodic={periodic}");
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        let pts: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.37;
                [
                    (t.sin() * 2.5 + 3.0),
                    (t.cos() * 2.5 + 3.0),
                    ((i % 6) as f64 + 0.5),
                ]
            })
            .collect();
        let g = grid_with(&pts, true);
        let mut seen = HashSet::new();
        g.for_each_pair(|i, j| {
            assert!(seen.insert((i.min(j), i.max(j))), "duplicate pair {i},{j}");
        });
    }

    #[test]
    fn cell_particles_iterates_chain() {
        let pts = [[0.1, 0.1, 0.1], [0.2, 0.2, 0.2], [5.0, 5.0, 5.0]];
        let g = grid_with(&pts, false);
        let cell0: Vec<usize> = g.cell_particles(g.cell_of([0.1; 3])).collect();
        let mut sorted = cell0.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
