//! Cell-list neighbor search.
//!
//! Two implementations live here:
//!
//! * [`CellGrid`] — the production structure: a *compact, cell-sorted*
//!   (CSR) layout. `rebuild` counting-sorts particle indices by cell into
//!   one contiguous `order` array with a `starts` offset table, so a cell's
//!   occupants are a slice (`order[starts[c]..starts[c+1]]`) instead of a
//!   pointer chase through per-particle `next` links. Neighbor cells are
//!   precomputed per cell at construction (the geometry never changes), as
//!   deduplicated wrapped id lists — which also fixes the small-box bug
//!   where periodic axes with ≤ 2 cells dropped the wrapped neighbor
//!   entirely (see `for_each_pair`).
//! * [`LinkedCellGrid`] — the legacy head/next linked-list structure, kept
//!   as a reference baseline for equivalence tests and benchmarks. It
//!   retains the historical ≤ 2-cell limitation.
//!
//! Both assume the standard minimum-image validity condition `L ≥ 2 r_c`
//! on periodic axes (each pair interacts through at most one image).
//!
//! Enumeration order is deterministic: cells in id order, in-cell pairs in
//! (sorted) particle-index order, cross-cell pairs in precomputed neighbor
//! order. The counting sort is stable, so `order` is sorted by
//! `(cell, particle index)` — this fixed ordering policy is what the
//! deterministic parallel force sweep in [`crate::force`] relies on.

use crate::domain::Box3;

/// Compact cell-sorted (CSR) cell grid with cell edge ≥ the cutoff radius,
/// giving O(N) neighbor enumeration over contiguous index slices.
#[derive(Debug, Clone)]
pub struct CellGrid {
    bx: Box3,
    /// Cells per axis.
    pub dims: [usize; 3],
    /// Cell edge per axis.
    cell: [f64; 3],
    ncell: usize,
    /// CSR offsets: cell `c` owns `order[starts[c]..starts[c+1]]`.
    starts: Vec<usize>,
    /// Particle indices, counting-sorted by cell (stable: ascending index
    /// within each cell).
    order: Vec<usize>,
    /// Inverse of `order`: `rank[i]` is the CSR position of particle `i`.
    /// The chunked half-list sweep uses it to index dense per-chunk force
    /// buffers by CSR position instead of particle id.
    rank: Vec<usize>,
    /// Scratch: cell id per particle (kept between rebuilds to avoid
    /// reallocation).
    cell_id: Vec<usize>,
    /// Scratch: write cursors for the counting sort.
    cursor: Vec<usize>,
    /// Forward half-neighborhood per cell (flattened CSR): wrapped,
    /// deduplicated neighbor ids `c2 > c`. Visiting these plus in-cell
    /// pairs covers every unordered adjacent cell pair exactly once, for
    /// any `dims` (including periodic axes with 1 or 2 cells).
    nbr_fwd: Vec<u32>,
    nbr_fwd_starts: Vec<u32>,
    /// Full neighborhood per cell (flattened CSR): wrapped, deduplicated
    /// ids including the cell itself, in fixed offset-scan order. Used by
    /// the write-conflict-free full force sweep.
    nbr_all: Vec<u32>,
    nbr_all_starts: Vec<u32>,
}

impl CellGrid {
    /// Build the grid geometry for cutoff `rc` (no particles yet).
    pub fn new(bx: Box3, rc: f64) -> Self {
        assert!(rc > 0.0);
        let l = bx.lengths();
        let dims = [
            (l[0] / rc).floor().max(1.0) as usize,
            (l[1] / rc).floor().max(1.0) as usize,
            (l[2] / rc).floor().max(1.0) as usize,
        ];
        let cell = [
            l[0] / dims[0] as f64,
            l[1] / dims[1] as f64,
            l[2] / dims[2] as f64,
        ];
        let ncell = dims[0] * dims[1] * dims[2];
        let (nbr_fwd, nbr_fwd_starts, nbr_all, nbr_all_starts) =
            build_neighbor_tables(dims, bx.periodic);
        Self {
            bx,
            dims,
            cell,
            ncell,
            starts: vec![0; ncell + 1],
            order: Vec::new(),
            rank: Vec::new(),
            cell_id: Vec::new(),
            cursor: vec![0; ncell],
            nbr_fwd,
            nbr_fwd_starts,
            nbr_all,
            nbr_all_starts,
        }
    }

    /// Cell index of a position (clamped to the box).
    pub fn cell_of(&self, p: [f64; 3]) -> usize {
        let mut c = [0usize; 3];
        for k in 0..3 {
            let t = ((p[k] - self.bx.lo[k]) / self.cell[k]).floor() as isize;
            c[k] = t.clamp(0, self.dims[k] as isize - 1) as usize;
        }
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Rebuild the CSR structure from AoS positions: one counting sort,
    /// O(N). (Convenience wrapper over [`CellGrid::rebuild_soa`] for tests
    /// and legacy-baseline comparisons.)
    pub fn rebuild(&mut self, pos: &[[f64; 3]]) {
        self.rebuild_impl(pos.len(), |i| pos[i]);
    }

    /// Rebuild the CSR structure from SoA component arrays.
    pub fn rebuild_soa(&mut self, x: &[f64], y: &[f64], z: &[f64]) {
        assert!(x.len() == y.len() && x.len() == z.len());
        self.rebuild_impl(x.len(), |i| [x[i], y[i], z[i]]);
    }

    fn rebuild_impl(&mut self, n: usize, pos: impl Fn(usize) -> [f64; 3]) {
        self.cell_id.clear();
        self.cell_id.reserve(n);
        self.starts.iter_mut().for_each(|s| *s = 0);
        for i in 0..n {
            let c = self.cell_of(pos(i));
            self.cell_id.push(c);
            self.starts[c + 1] += 1;
        }
        for c in 0..self.ncell {
            self.starts[c + 1] += self.starts[c];
        }
        self.order.resize(n, 0);
        self.cursor.copy_from_slice(&self.starts[..self.ncell]);
        for (i, &c) in self.cell_id.iter().enumerate() {
            self.order[self.cursor[c]] = i;
            self.cursor[c] += 1;
        }
        self.rank.resize(n, 0);
        for (k, &i) in self.order.iter().enumerate() {
            self.rank[i] = k;
        }
    }

    /// The particles of one cell, in ascending particle-index order.
    #[inline]
    pub fn cell_particles(&self, c: usize) -> &[usize] {
        &self.order[self.starts[c]..self.starts[c + 1]]
    }

    /// Particle indices sorted by `(cell, index)` — the CSR `order` array
    /// from the last `rebuild`. Applying this permutation to the particle
    /// SoA makes neighbor traversal walk memory near-sequentially.
    pub fn sorted_order(&self) -> &[usize] {
        &self.order
    }

    /// Inverse permutation of [`CellGrid::sorted_order`]: CSR position of
    /// each particle index.
    pub fn rank(&self) -> &[usize] {
        &self.rank
    }

    /// Number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.ncell
    }

    /// CSR offset of cell `c` (first position of its particles in
    /// [`CellGrid::sorted_order`]). `cell_start(num_cells())` is the total
    /// particle count.
    #[inline]
    pub fn cell_start(&self, c: usize) -> usize {
        self.starts[c]
    }

    /// Precomputed forward half-neighborhood of cell `c` (wrapped,
    /// deduplicated ids `c2 > c`).
    #[inline]
    pub fn fwd_neighbors(&self, c: usize) -> &[u32] {
        let lo = self.nbr_fwd_starts[c] as usize;
        let hi = self.nbr_fwd_starts[c + 1] as usize;
        &self.nbr_fwd[lo..hi]
    }

    /// Split the cell range into at most `target` contiguous chunks with
    /// approximately equal particle counts (by the CSR offsets). The cut
    /// points depend only on the grid contents and `target` — never on the
    /// thread count — so per-chunk force accumulation reduced in chunk
    /// order is bitwise thread-count-invariant.
    pub fn balanced_cell_chunks(&self, target: usize) -> Vec<(usize, usize)> {
        let n = self.order.len();
        let m = target.clamp(1, self.ncell.max(1));
        let mut chunks = Vec::with_capacity(m);
        let mut clo = 0usize;
        for k in 1..=m {
            if clo >= self.ncell {
                break;
            }
            let mut chi = if k == m {
                self.ncell
            } else {
                let goal = k * n / m;
                let mut c = clo + 1;
                while c < self.ncell && self.starts[c] < goal {
                    c += 1;
                }
                c
            };
            if chi <= clo {
                chi = clo + 1;
            }
            chunks.push((clo, chi));
            clo = chi;
        }
        if let Some(last) = chunks.last_mut() {
            last.1 = self.ncell;
        }
        chunks
    }

    /// Visit every unordered pair `(i, j)` within the cutoff structure:
    /// pairs within a cell, and pairs between a cell and each of its
    /// precomputed forward neighbors. The callback performs the distance
    /// check itself (minimum-image).
    ///
    /// Unlike the legacy linked-list grid, periodic axes with ≤ 2 cells
    /// are handled correctly: the neighbor tables are built from the full
    /// wrapped 26-neighborhood with duplicates removed and filtered to
    /// `c2 > c`, so each adjacent cell pair — including pairs through a
    /// 2-cell-wide periodic boundary — is visited exactly once.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        for c in 0..self.ncell {
            let own = self.cell_particles(c);
            // In-cell pairs.
            for (a, &i) in own.iter().enumerate() {
                for &j in &own[a + 1..] {
                    f(i, j);
                }
            }
            // Cross-cell pairs with forward neighbors.
            let lo = self.nbr_fwd_starts[c] as usize;
            let hi = self.nbr_fwd_starts[c + 1] as usize;
            for &c2 in &self.nbr_fwd[lo..hi] {
                let other = self.cell_particles(c2 as usize);
                for &i in own {
                    for &j in other {
                        f(i, j);
                    }
                }
            }
        }
    }

    /// Visit every particle in the (wrapped, deduplicated) 27-cell
    /// neighborhood of position `p`, each exactly once, in a fixed order.
    /// Used by the write-conflict-free full force sweep.
    #[inline]
    pub fn for_each_candidate(&self, p: [f64; 3], mut f: impl FnMut(usize)) {
        let c = self.cell_of(p);
        let lo = self.nbr_all_starts[c] as usize;
        let hi = self.nbr_all_starts[c + 1] as usize;
        for &c2 in &self.nbr_all[lo..hi] {
            for &j in self.cell_particles(c2 as usize) {
                f(j);
            }
        }
    }
}

/// Precompute per-cell neighbor id lists (forward half and full sets).
#[allow(clippy::type_complexity)]
fn build_neighbor_tables(
    dims: [usize; 3],
    periodic: [bool; 3],
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    let ncell = dims[0] * dims[1] * dims[2];
    assert!(ncell <= u32::MAX as usize, "cell count overflows u32 ids");
    let idims = [dims[0] as isize, dims[1] as isize, dims[2] as isize];
    let mut fwd = Vec::with_capacity(ncell * 13);
    let mut fwd_starts = Vec::with_capacity(ncell + 1);
    let mut all = Vec::with_capacity(ncell * 27);
    let mut all_starts = Vec::with_capacity(ncell + 1);
    fwd_starts.push(0u32);
    all_starts.push(0u32);
    for c in 0..ncell {
        let cx = (c % dims[0]) as isize;
        let cy = ((c / dims[0]) % dims[1]) as isize;
        let cz = (c / (dims[0] * dims[1])) as isize;
        let fwd_base = fwd.len();
        let all_base = all.len();
        for dz in -1..=1isize {
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let mut q = [cx + dx, cy + dy, cz + dz];
                    let mut ok = true;
                    for k in 0..3 {
                        if q[k] < 0 || q[k] >= idims[k] {
                            if periodic[k] {
                                q[k] = (q[k] + idims[k]) % idims[k];
                            } else {
                                ok = false;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    let id = (((q[2] as usize) * dims[1] + q[1] as usize) * dims[0] + q[0] as usize)
                        as u32;
                    if !all[all_base..].contains(&id) {
                        all.push(id);
                    }
                    if id as usize > c && !fwd[fwd_base..].contains(&id) {
                        fwd.push(id);
                    }
                }
            }
        }
        fwd_starts.push(fwd.len() as u32);
        all_starts.push(all.len() as u32);
    }
    (fwd, fwd_starts, all, all_starts)
}

/// Legacy head/next linked-list cell grid, kept as the reference baseline
/// for equivalence tests and benchmarks against the CSR [`CellGrid`].
///
/// Retains the historical limitation that periodic axes with ≤ 2 cells
/// skip the wrapped neighbor (cross-boundary pairs are silently dropped
/// there); compare against it only on grids with ≥ 3 cells per periodic
/// axis.
#[derive(Debug, Clone)]
pub struct LinkedCellGrid {
    bx: Box3,
    /// Cells per axis.
    pub dims: [usize; 3],
    cell: [f64; 3],
    head: Vec<usize>,
    next: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl LinkedCellGrid {
    /// Build the grid geometry for cutoff `rc` (no particles yet).
    pub fn new(bx: Box3, rc: f64) -> Self {
        assert!(rc > 0.0);
        let l = bx.lengths();
        let dims = [
            (l[0] / rc).floor().max(1.0) as usize,
            (l[1] / rc).floor().max(1.0) as usize,
            (l[2] / rc).floor().max(1.0) as usize,
        ];
        let cell = [
            l[0] / dims[0] as f64,
            l[1] / dims[1] as f64,
            l[2] / dims[2] as f64,
        ];
        let ncell = dims[0] * dims[1] * dims[2];
        Self {
            bx,
            dims,
            cell,
            head: vec![NONE; ncell],
            next: Vec::new(),
        }
    }

    /// Cell index of a position (clamped to the box).
    pub fn cell_of(&self, p: [f64; 3]) -> usize {
        let mut c = [0usize; 3];
        for k in 0..3 {
            let t = ((p[k] - self.bx.lo[k]) / self.cell[k]).floor() as isize;
            c[k] = t.clamp(0, self.dims[k] as isize - 1) as usize;
        }
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Rebuild the linked lists from positions.
    pub fn rebuild(&mut self, pos: &[[f64; 3]]) {
        self.head.iter_mut().for_each(|h| *h = NONE);
        self.next.clear();
        self.next.resize(pos.len(), NONE);
        for (i, &p) in pos.iter().enumerate() {
            let c = self.cell_of(p);
            self.next[i] = self.head[c];
            self.head[c] = i;
        }
    }

    /// Visit every unordered pair `(i, j)`: in-cell pairs plus pairs with
    /// the 13 forward-neighbor cells (minimum-image aware). The callback
    /// performs the distance check itself.
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize)) {
        let [nx, ny, nz] = self.dims;
        // 13 forward offsets + self-cell handled separately.
        const OFFS: [[isize; 3]; 13] = [
            [1, 0, 0],
            [-1, 1, 0],
            [0, 1, 0],
            [1, 1, 0],
            [-1, -1, 1],
            [0, -1, 1],
            [1, -1, 1],
            [-1, 0, 1],
            [0, 0, 1],
            [1, 0, 1],
            [-1, 1, 1],
            [0, 1, 1],
            [1, 1, 1],
        ];
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let c = (cz * ny + cy) * nx + cx;
                    // In-cell pairs.
                    let mut i = self.head[c];
                    while i != NONE {
                        let mut j = self.next[i];
                        while j != NONE {
                            f(i, j);
                            j = self.next[j];
                        }
                        i = self.next[i];
                    }
                    // Cross-cell pairs.
                    for off in OFFS {
                        let mut q = [
                            cx as isize + off[0],
                            cy as isize + off[1],
                            cz as isize + off[2],
                        ];
                        let dims = [nx as isize, ny as isize, nz as isize];
                        let mut skip = false;
                        for k in 0..3 {
                            if q[k] < 0 || q[k] >= dims[k] {
                                if self.bx.periodic[k] && dims[k] > 2 {
                                    q[k] = (q[k] + dims[k]) % dims[k];
                                } else {
                                    // Historical ≤2-cell limitation (and
                                    // non-periodic truncation).
                                    skip = true;
                                }
                            }
                        }
                        if skip {
                            continue;
                        }
                        let c2 = ((q[2] as usize) * ny + q[1] as usize) * nx + q[0] as usize;
                        if c2 == c {
                            continue;
                        }
                        let mut i = self.head[c];
                        while i != NONE {
                            let mut j = self.head[c2];
                            while j != NONE {
                                f(i, j);
                                j = self.next[j];
                            }
                            i = self.next[i];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn scatter(n: usize, seed: u64, scale: f64) -> Vec<[f64; 3]> {
        let mut pts = Vec::new();
        let mut s = seed;
        let mut r = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 11) as f64 / (1u64 << 53) as f64 * scale
        };
        for _ in 0..n {
            pts.push([r(), r(), r()]);
        }
        pts
    }

    fn grid_with(points: &[[f64; 3]], periodic: bool) -> CellGrid {
        let bx = Box3::new([0.0; 3], [6.0, 6.0, 6.0], [periodic; 3]);
        let mut g = CellGrid::new(bx, 1.0);
        g.rebuild(points);
        g
    }

    fn brute_pairs(pts: &[[f64; 3]], bx: &Box3, rc: f64) -> HashSet<(usize, usize)> {
        let mut expect = HashSet::new();
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                let d = bx.min_image(pts[i], pts[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < rc * rc {
                    expect.insert((i, j));
                }
            }
        }
        expect
    }

    #[test]
    fn cell_assignment() {
        let g = grid_with(&[[0.5, 0.5, 0.5], [5.5, 5.5, 5.5]], false);
        assert_eq!(g.cell_of([0.5, 0.5, 0.5]), 0);
        assert_eq!(
            g.cell_of([5.5, 5.5, 5.5]),
            g.dims[0] * g.dims[1] * g.dims[2] - 1
        );
    }

    #[test]
    fn pairs_match_brute_force_within_cutoff() {
        // Deterministic scatter of points; compare pair sets for r < rc.
        let pts = scatter(150, 7, 6.0);
        for periodic in [false, true] {
            let g = grid_with(&pts, periodic);
            let bx = Box3::new([0.0; 3], [6.0; 3], [periodic; 3]);
            let mut got = HashSet::new();
            g.for_each_pair(|i, j| {
                let d = bx.min_image(pts[i], pts[j]);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < 1.0 {
                    got.insert((i.min(j), i.max(j)));
                }
            });
            assert_eq!(got, brute_pairs(&pts, &bx, 1.0), "periodic={periodic}");
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        let pts: Vec<[f64; 3]> = (0..50)
            .map(|i| {
                let t = i as f64 * 0.37;
                [
                    (t.sin() * 2.5 + 3.0),
                    (t.cos() * 2.5 + 3.0),
                    ((i % 6) as f64 + 0.5),
                ]
            })
            .collect();
        let g = grid_with(&pts, true);
        let mut seen = HashSet::new();
        g.for_each_pair(|i, j| {
            assert!(seen.insert((i.min(j), i.max(j))), "duplicate pair {i},{j}");
        });
    }

    #[test]
    fn cell_particles_is_sorted_slice() {
        let pts = [[0.1, 0.1, 0.1], [5.0, 5.0, 5.0], [0.2, 0.2, 0.2]];
        let g = grid_with(&pts, false);
        assert_eq!(g.cell_particles(g.cell_of([0.1; 3])), &[0, 2]);
        assert_eq!(g.sorted_order().len(), 3);
    }

    /// Regression for the ≤2-cell periodic bug: in a 2-cell-wide periodic
    /// box the legacy grid never visits pairs through the wrapped
    /// boundary; the CSR grid must find them all.
    #[test]
    fn two_cell_periodic_box_finds_wrapped_pairs() {
        let bx = Box3::new([0.0; 3], [2.0, 2.0, 2.0], [true; 3]);
        // A pair straddling the x boundary: distance 0.2 through the wrap.
        let pts = vec![[0.1, 0.5, 0.5], [1.9, 0.5, 0.5], [1.0, 1.0, 1.0]];
        let mut g = CellGrid::new(bx, 1.0);
        assert_eq!(g.dims, [2, 2, 2]);
        g.rebuild(&pts);
        let mut got = HashSet::new();
        g.for_each_pair(|i, j| {
            let d = bx.min_image(pts[i], pts[j]);
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            if r2 < 1.0 {
                got.insert((i.min(j), i.max(j)));
            }
        });
        let expect = brute_pairs(&pts, &bx, 1.0);
        assert!(expect.contains(&(0, 1)), "test setup: wrapped pair exists");
        assert_eq!(got, expect);
        // Larger scatter in the same 2-cell box, cross-checked brute force.
        let pts = scatter(80, 11, 2.0);
        let mut g = CellGrid::new(bx, 1.0);
        g.rebuild(&pts);
        let mut got = HashSet::new();
        let mut dup = true;
        g.for_each_pair(|i, j| {
            dup &= got.insert((i.min(j), i.max(j)));
        });
        assert!(dup, "pair enumerated twice in 2-cell periodic box");
        let close: HashSet<_> = got
            .iter()
            .copied()
            .filter(|&(i, j)| {
                let d = bx.min_image(pts[i], pts[j]);
                d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < 1.0
            })
            .collect();
        assert_eq!(close, brute_pairs(&pts, &bx, 1.0));
    }

    /// Single-cell periodic axes (dims = 1) must also enumerate each pair
    /// exactly once (all pairs are in-cell there).
    #[test]
    fn one_cell_periodic_axis_unique_pairs() {
        let bx = Box3::new([0.0; 3], [1.5, 4.0, 4.0], [true; 3]);
        let pts = scatter(40, 3, 1.4);
        let mut g = CellGrid::new(bx, 1.0);
        assert_eq!(g.dims[0], 1);
        g.rebuild(&pts);
        let mut seen = HashSet::new();
        g.for_each_pair(|i, j| {
            assert!(seen.insert((i.min(j), i.max(j))), "duplicate pair {i},{j}");
        });
        // Every distinct pair of the 40 points is within sqrt(3)·cell of
        // another only sometimes; but each candidate pair must appear at
        // most once, and all brute-force pairs within rc must be present.
        for (i, j) in brute_pairs(&pts, &bx, 1.0) {
            assert!(seen.contains(&(i, j)), "missing pair {i},{j}");
        }
    }

    #[test]
    fn candidate_sweep_covers_neighborhood_once() {
        let pts = scatter(120, 19, 6.0);
        for periodic in [false, true] {
            let g = grid_with(&pts, periodic);
            let bx = Box3::new([0.0; 3], [6.0; 3], [periodic; 3]);
            for (i, &p) in pts.iter().enumerate() {
                let mut seen = HashSet::new();
                g.for_each_candidate(p, |j| {
                    assert!(seen.insert(j), "candidate {j} visited twice");
                });
                // All true neighbors of i must be among the candidates.
                for j in 0..pts.len() {
                    if j == i {
                        continue;
                    }
                    let d = bx.min_image(p, pts[j]);
                    if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] < 1.0 {
                        assert!(seen.contains(&j), "missing neighbor {j} of {i}");
                    }
                }
            }
        }
    }

    #[test]
    fn csr_matches_legacy_linked_list_on_big_grid() {
        let pts = scatter(200, 23, 6.0);
        for periodic in [false, true] {
            let bx = Box3::new([0.0; 3], [6.0; 3], [periodic; 3]);
            let mut csr = CellGrid::new(bx, 1.0);
            csr.rebuild(&pts);
            let mut legacy = LinkedCellGrid::new(bx, 1.0);
            legacy.rebuild(&pts);
            let mut a = HashSet::new();
            csr.for_each_pair(|i, j| {
                a.insert((i.min(j), i.max(j)));
            });
            let mut b = HashSet::new();
            legacy.for_each_pair(|i, j| {
                b.insert((i.min(j), i.max(j)));
            });
            assert_eq!(a, b, "periodic={periodic}");
        }
    }
}
