//! Platelet aggregation model (Pivkin–Richardson–Karniadakis, PNAS 2006,
//! as adapted by the paper for clot formation in the aneurysm).
//!
//! Platelets are spherical DPD particles with a state machine:
//!
//! * **passive** platelets advect with the flow;
//! * a passive platelet coming within the *trigger distance* of a wall
//!   adhesion site or of an *active* platelet becomes **triggered**;
//! * after the *activation delay time* `t_act` (the key physiological
//!   parameter studied in the PNAS paper) a triggered platelet becomes
//!   **active**;
//! * active platelets feel Morse attraction to wall adhesion sites and to
//!   other active platelets (aggregation);
//! * an active platelet within the bond distance of a site becomes
//!   **adhered** — anchored by a stiff spring (the growing thrombus).

use crate::domain::Box3;
use crate::particles::{Particles, PlateletState};

/// Aggregation model parameters.
#[derive(Debug, Clone, Copy)]
pub struct PlateletParams {
    /// Distance within which passive platelets are triggered.
    pub trigger_dist: f64,
    /// Activation delay in steps.
    pub delay_steps: u64,
    /// Morse well depth.
    pub de: f64,
    /// Morse inverse width β.
    pub beta: f64,
    /// Morse equilibrium distance.
    pub r0: f64,
    /// Adhesive interaction cutoff.
    pub cutoff: f64,
    /// Bonding distance to a wall site.
    pub bond_dist: f64,
    /// Anchor spring stiffness once adhered.
    pub spring_k: f64,
}

impl Default for PlateletParams {
    fn default() -> Self {
        Self {
            trigger_dist: 0.5,
            delay_steps: 100,
            de: 20.0,
            beta: 2.0,
            r0: 0.3,
            cutoff: 1.5,
            bond_dist: 0.35,
            spring_k: 200.0,
        }
    }
}

/// Wall adhesion sites (damaged endothelium in the aneurysm).
#[derive(Debug, Clone, Default)]
pub struct WallSites {
    /// Site positions.
    pub pos: Vec<[f64; 3]>,
}

impl WallSites {
    /// Sites scattered on a rectangle of the wall plane.
    pub fn on_plane(
        n: usize,
        axis: usize,
        coord: f64,
        lo: [f64; 3],
        hi: [f64; 3],
        seed: u64,
    ) -> Self {
        let mut pos = Vec::with_capacity(n);
        let mut s = seed.max(1);
        let mut rand = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            let mut p = [0.0; 3];
            for k in 0..3 {
                p[k] = lo[k] + rand() * (hi[k] - lo[k]);
            }
            p[axis] = coord;
            pos.push(p);
        }
        Self { pos }
    }
}

/// Advance the platelet state machine one step. Returns
/// `(triggered, activated, adhered)` counts of *transitions* this step.
pub fn update_states(
    p: &mut Particles,
    sites: &WallSites,
    bx: &Box3,
    params: &PlateletParams,
    step: u64,
) -> (usize, usize, usize) {
    let mut newly_triggered = 0;
    let mut newly_active = 0;
    let mut newly_adhered = 0;
    // Collect active platelet positions first (triggers are based on the
    // state at the beginning of the step).
    let active_pos: Vec<[f64; 3]> = (0..p.len())
        .filter(|&i| {
            matches!(
                p.state[i],
                PlateletState::Active | PlateletState::Adhered(_)
            )
        })
        .map(|i| p.pos(i))
        .collect();
    for i in 0..p.len() {
        match p.state[i] {
            PlateletState::Passive => {
                let near_site = sites.pos.iter().any(|&s| {
                    let d = bx.min_image(p.pos(i), s);
                    d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
                        < params.trigger_dist * params.trigger_dist
                });
                let near_active = active_pos.iter().any(|&s| {
                    let d = bx.min_image(p.pos(i), s);
                    d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
                        < params.trigger_dist * params.trigger_dist
                });
                if near_site || near_active {
                    p.state[i] = PlateletState::Triggered(step);
                    newly_triggered += 1;
                }
            }
            PlateletState::Triggered(t0) if step.saturating_sub(t0) >= params.delay_steps => {
                p.state[i] = PlateletState::Active;
                newly_active += 1;
            }
            PlateletState::Active => {
                // Bond to the nearest site within bonding distance.
                let mut best: Option<(usize, f64)> = None;
                for (si, &s) in sites.pos.iter().enumerate() {
                    let d = bx.min_image(p.pos(i), s);
                    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                    if r2 < params.bond_dist * params.bond_dist && best.is_none_or(|(_, b)| r2 < b)
                    {
                        best = Some((si, r2));
                    }
                }
                if let Some((si, _)) = best {
                    p.state[i] = PlateletState::Adhered(si as u32);
                    newly_adhered += 1;
                }
            }
            _ => {}
        }
    }
    (newly_triggered, newly_active, newly_adhered)
}

/// Morse force magnitude (positive = repulsive, along the unit separation
/// vector from the partner toward the particle):
/// `F(r) = 2 De β [e^{−2β(r−r0)} − e^{−β(r−r0)}]`.
#[inline]
pub fn morse_force(de: f64, beta: f64, r0: f64, r: f64) -> f64 {
    let x = (-beta * (r - r0)).exp();
    2.0 * de * beta * (x * x - x)
}

/// Accumulate adhesive forces: active↔active Morse aggregation,
/// active↔site Morse attraction, adhered→site anchor springs.
pub fn adhesion_forces(p: &mut Particles, sites: &WallSites, bx: &Box3, params: &PlateletParams) {
    let n = p.len();
    let actives: Vec<usize> = (0..n)
        .filter(|&i| matches!(p.state[i], PlateletState::Active))
        .collect();
    // Active-active aggregation (platelet counts are small; O(k²) is fine —
    // the solvent never enters this loop).
    for ai in 0..actives.len() {
        for aj in ai + 1..actives.len() {
            let (i, j) = (actives[ai], actives[aj]);
            let d = bx.min_image(p.pos(i), p.pos(j));
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r >= params.cutoff || r < 1e-12 {
                continue;
            }
            let f = morse_force(params.de, params.beta, params.r0, r);
            let fv = [f * d[0] / r, f * d[1] / r, f * d[2] / r];
            p.add_force(i, fv);
            p.add_force(j, [-fv[0], -fv[1], -fv[2]]);
        }
    }
    // Active-site attraction and adhered anchors.
    for i in 0..n {
        match p.state[i] {
            PlateletState::Active => {
                for &s in &sites.pos {
                    let d = bx.min_image(p.pos(i), s);
                    let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                    if r >= params.cutoff || r < 1e-12 {
                        continue;
                    }
                    let f = morse_force(params.de, params.beta, params.r0, r);
                    p.add_force(i, [f * d[0] / r, f * d[1] / r, f * d[2] / r]);
                }
            }
            PlateletState::Adhered(si) => {
                let s = sites.pos[si as usize];
                let d = bx.min_image(p.pos(i), s);
                p.add_force(
                    i,
                    [
                        -params.spring_k * d[0],
                        -params.spring_k * d[1],
                        -params.spring_k * d[2],
                    ],
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Particles, WallSites, Box3, PlateletParams) {
        let bx = Box3::new([0.0; 3], [10.0; 3], [true, false, true]);
        let sites = WallSites {
            pos: vec![[5.0, 0.0, 5.0]],
        };
        let params = PlateletParams {
            delay_steps: 5,
            ..Default::default()
        };
        (Particles::new(), sites, bx, params)
    }

    #[test]
    fn cascade_passive_to_adhered() {
        let (mut p, sites, bx, params) = setup();
        // Platelet right next to the site.
        p.push_platelet([5.0, 0.3, 5.0], [0.0; 3], 1);
        let (t, _, _) = update_states(&mut p, &sites, &bx, &params, 0);
        assert_eq!(t, 1);
        assert!(matches!(p.state[0], PlateletState::Triggered(0)));
        // Not yet active before the delay.
        update_states(&mut p, &sites, &bx, &params, 3);
        assert!(matches!(p.state[0], PlateletState::Triggered(0)));
        let (_, a, _) = update_states(&mut p, &sites, &bx, &params, 5);
        assert_eq!(a, 1);
        assert!(matches!(p.state[0], PlateletState::Active));
        // Within bond distance: adheres on the next update.
        let (_, _, ad) = update_states(&mut p, &sites, &bx, &params, 6);
        assert_eq!(ad, 1);
        assert!(matches!(p.state[0], PlateletState::Adhered(0)));
    }

    #[test]
    fn active_platelet_triggers_neighbors() {
        let (mut p, sites, bx, params) = setup();
        p.push_platelet([5.0, 3.0, 5.0], [0.0; 3], 1);
        p.state[0] = PlateletState::Active;
        // A passive platelet near the active one, far from the wall site.
        p.push_platelet([5.2, 3.2, 5.0], [0.0; 3], 1);
        let (t, _, _) = update_states(&mut p, &sites, &bx, &params, 10);
        assert_eq!(t, 1);
        assert!(matches!(p.state[1], PlateletState::Triggered(10)));
    }

    #[test]
    fn far_platelets_stay_passive() {
        let (mut p, sites, bx, params) = setup();
        p.push_platelet([1.0, 3.0, 1.0], [0.0; 3], 1);
        update_states(&mut p, &sites, &bx, &params, 0);
        assert!(matches!(p.state[0], PlateletState::Passive));
    }

    #[test]
    fn morse_force_signs() {
        // Repulsive inside r0, attractive outside, tiny beyond ~r0 + 3/β.
        assert!(morse_force(10.0, 2.0, 0.5, 0.3) > 0.0);
        assert!(morse_force(10.0, 2.0, 0.5, 0.9) < 0.0);
        assert!(morse_force(10.0, 2.0, 0.5, 5.0).abs() < 0.01);
        assert_eq!(morse_force(10.0, 2.0, 0.5, 0.5), 0.0);
    }

    #[test]
    fn adhesion_pulls_active_toward_site() {
        let (mut p, sites, bx, params) = setup();
        p.push_platelet([5.0, 1.0, 5.0], [0.0; 3], 1);
        p.state[0] = PlateletState::Active;
        p.clear_forces();
        adhesion_forces(&mut p, &sites, &bx, &params);
        assert!(
            p.fy[0] < 0.0,
            "should pull toward the wall: {:?}",
            p.force(0)
        );
    }

    #[test]
    fn anchor_spring_restores() {
        let (mut p, sites, bx, params) = setup();
        p.push_platelet([5.5, 0.2, 5.0], [0.0; 3], 1);
        p.state[0] = PlateletState::Adhered(0);
        p.clear_forces();
        adhesion_forces(&mut p, &sites, &bx, &params);
        // Displaced +x from the site: spring pulls −x.
        assert!(p.fx[0] < 0.0);
    }

    #[test]
    fn aggregation_attracts_active_pairs() {
        let (mut p, sites, bx, params) = setup();
        p.push_platelet([4.0, 3.0, 5.0], [0.0; 3], 1);
        p.push_platelet([4.8, 3.0, 5.0], [0.0; 3], 1);
        p.state[0] = PlateletState::Active;
        p.state[1] = PlateletState::Active;
        p.clear_forces();
        adhesion_forces(&mut p, &sites, &bx, &params);
        // Separation 0.8 > r0=0.3: attraction pulls them together.
        assert!(p.fx[0] > 0.0);
        assert!(p.fx[1] < 0.0);
        // Newton's third law.
        assert!((p.fx[0] + p.fx[1]).abs() < 1e-12);
    }

    #[test]
    fn sites_on_plane_respect_axis() {
        let s = WallSites::on_plane(20, 1, 0.0, [0.0; 3], [4.0, 4.0, 4.0], 7);
        assert_eq!(s.pos.len(), 20);
        for p in &s.pos {
            assert_eq!(p[1], 0.0);
            assert!(p[0] >= 0.0 && p[0] <= 4.0);
        }
    }
}
