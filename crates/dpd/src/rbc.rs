//! Explicit blood-cell models: bead-spring membranes immersed in the DPD
//! solvent ("modeling explicitly ... the red blood cells", paper §1).
//!
//! The paper's production runs carry full 3D RBC membranes
//! (Fedosov–Caswell–Karniadakis); here we implement the same mechanical
//! ingredients on ring vesicles (the 2D cross-section membrane widely used
//! in microcirculation studies, cf. McWhirter–Noguchi–Gompper cited by the
//! paper):
//!
//! * **elastic bonds** between consecutive membrane beads (harmonic, with
//!   the rest length set at construction);
//! * **bending resistance** via a discrete-Laplacian penalty on each bead
//!   triple;
//! * **area conservation** via a quadratic penalty on the enclosed
//!   (shoelace) area — the 2D analogue of the RBC's conserved volume;
//! * the beads are ordinary DPD particles of a dedicated species, so they
//!   feel solvent interactions (and the thermostat) like everything else.

use crate::domain::Box3;
use crate::particles::Particles;

/// One membrane (ring vesicle) plus its elastic parameters.
#[derive(Debug, Clone)]
pub struct CellModel {
    /// Particle indices of the membrane beads, in ring order.
    pub beads: Vec<usize>,
    /// Bond rest length.
    pub r0: f64,
    /// Spring constant of the bonds.
    pub k_spring: f64,
    /// Bending (Laplacian-penalty) constant.
    pub k_bend: f64,
    /// Area-conservation constant.
    pub k_area: f64,
    /// Target enclosed area.
    pub area0: f64,
}

impl CellModel {
    /// Create a ring of `n` beads of `species` around `center` in the
    /// xy-plane with given `radius`, pushing the beads into `p`.
    #[allow(clippy::too_many_arguments)]
    pub fn ring(
        p: &mut Particles,
        center: [f64; 3],
        radius: f64,
        n: usize,
        species: u8,
        k_spring: f64,
        k_bend: f64,
        k_area: f64,
    ) -> Self {
        assert!(n >= 4, "a membrane needs at least 4 beads");
        let mut beads = Vec::with_capacity(n);
        for k in 0..n {
            let th = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let pos = [
                center[0] + radius * th.cos(),
                center[1] + radius * th.sin(),
                center[2],
            ];
            beads.push(p.push(pos, [0.0; 3], species));
        }
        let r0 = 2.0 * radius * (std::f64::consts::PI / n as f64).sin();
        Self {
            beads,
            r0,
            k_spring,
            k_bend,
            k_area,
            area0: std::f64::consts::PI * radius * radius,
        }
    }

    /// Bead positions unwrapped into a continuous chain starting from bead
    /// 0 (minimum-image hops), so ring geometry is well defined across
    /// periodic boundaries.
    fn unwrapped(&self, p: &Particles, bx: &Box3) -> Vec<[f64; 3]> {
        let mut out = Vec::with_capacity(self.beads.len());
        let mut prev = p.pos(self.beads[0]);
        out.push(prev);
        for &b in &self.beads[1..] {
            let d = bx.min_image(p.pos(b), prev);
            let cur = [prev[0] + d[0], prev[1] + d[1], prev[2] + d[2]];
            out.push(cur);
            prev = cur;
        }
        out
    }

    /// Current enclosed area (xy shoelace on the unwrapped ring).
    pub fn area(&self, p: &Particles, bx: &Box3) -> f64 {
        let u = self.unwrapped(p, bx);
        let n = u.len();
        let mut a = 0.0;
        for k in 0..n {
            let q = (k + 1) % n;
            a += u[k][0] * u[q][1] - u[q][0] * u[k][1];
        }
        0.5 * a.abs()
    }

    /// Current bond lengths.
    pub fn bond_lengths(&self, p: &Particles, bx: &Box3) -> Vec<f64> {
        let n = self.beads.len();
        (0..n)
            .map(|k| {
                let d = bx.min_image(p.pos(self.beads[(k + 1) % n]), p.pos(self.beads[k]));
                (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .collect()
    }

    /// Ring centroid (unwrapped, then wrapped back into the box).
    pub fn center(&self, p: &Particles, bx: &Box3) -> [f64; 3] {
        let u = self.unwrapped(p, bx);
        let n = u.len() as f64;
        let mut c = [0.0; 3];
        for q in &u {
            for k in 0..3 {
                c[k] += q[k] / n;
            }
        }
        bx.wrap(&mut c);
        c
    }

    /// Accumulate the membrane forces into `p.force`.
    pub fn accumulate_forces(&self, p: &mut Particles, bx: &Box3) {
        let n = self.beads.len();
        let u = self.unwrapped(p, bx);
        // Bonds (harmonic).
        for k in 0..n {
            let q = (k + 1) % n;
            let d = [
                u[(k + 1) % n][0] - u[k][0],
                u[(k + 1) % n][1] - u[k][1],
                u[(k + 1) % n][2] - u[k][2],
            ];
            // For the closing bond (q == 0) the unwrapped difference needs
            // min-image since u[0] was the anchor:
            let d = if q == 0 {
                bx.min_image(p.pos(self.beads[0]), p.pos(self.beads[k]))
            } else {
                d
            };
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt().max(1e-12);
            let f = self.k_spring * (r - self.r0) / r;
            let (bi, bj) = (self.beads[k], self.beads[q]);
            let fv = [f * d[0], f * d[1], f * d[2]];
            p.add_force(bi, fv);
            p.add_force(bj, [-fv[0], -fv[1], -fv[2]]);
        }
        // Bending: discrete Laplacian penalty, momentum-conserving
        // (F_j = k (u_{j-1} + u_{j+1} - 2 u_j), reaction split to neighbors).
        for j in 0..n {
            let im = (j + n - 1) % n;
            let ip = (j + 1) % n;
            let dm = bx.min_image(p.pos(self.beads[im]), p.pos(self.beads[j]));
            let dp = bx.min_image(p.pos(self.beads[ip]), p.pos(self.beads[j]));
            let lap = [dm[0] + dp[0], dm[1] + dp[1], dm[2] + dp[2]];
            let kb = self.k_bend;
            p.add_force(self.beads[j], [kb * lap[0], kb * lap[1], kb * lap[2]]);
            let half = [-0.5 * kb * lap[0], -0.5 * kb * lap[1], -0.5 * kb * lap[2]];
            p.add_force(self.beads[im], half);
            p.add_force(self.beads[ip], half);
        }
        // Area conservation: F_j = -k_area (A - A0) ∂A/∂x_j.
        let a = {
            let mut s = 0.0;
            for k in 0..n {
                let q = (k + 1) % n;
                s += u[k][0] * u[q][1] - u[q][0] * u[k][1];
            }
            0.5 * s
        };
        let sign = if a >= 0.0 { 1.0 } else { -1.0 };
        let coef = -self.k_area * (a.abs() - self.area0) * sign;
        for j in 0..n {
            let im = (j + n - 1) % n;
            let ip = (j + 1) % n;
            // ∂A/∂x_j = (y_{j+1} - y_{j-1})/2 ; ∂A/∂y_j = (x_{j-1} - x_{j+1})/2.
            let dax = 0.5 * (u[ip][1] - u[im][1]);
            let day = 0.5 * (u[im][0] - u[ip][0]);
            p.fx[self.beads[j]] += coef * dax;
            p.fy[self.beads[j]] += coef * day;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(radius: f64, n: usize) -> (Particles, CellModel, Box3) {
        let bx = Box3::new([0.0; 3], [10.0; 3], [true; 3]);
        let mut p = Particles::new();
        let cell = CellModel::ring(&mut p, [5.0, 5.0, 5.0], radius, n, 2, 100.0, 10.0, 50.0);
        (p, cell, bx)
    }

    #[test]
    fn ring_construction_geometry() {
        let (p, cell, bx) = setup(1.0, 16);
        assert_eq!(cell.beads.len(), 16);
        // All bonds at rest length; area near π r².
        for l in cell.bond_lengths(&p, &bx) {
            assert!((l - cell.r0).abs() < 1e-12);
        }
        // Polygon area < circle area but close for n=16.
        let a = cell.area(&p, &bx);
        assert!(a > 0.95 * cell.area0 && a <= cell.area0, "area {a}");
        let c = cell.center(&p, &bx);
        assert!((c[0] - 5.0).abs() < 1e-12 && (c[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn forces_vanish_at_rest_shape_except_area_term() {
        let (mut p, cell, bx) = setup(1.0, 32);
        p.clear_forces();
        cell.accumulate_forces(&mut p, &bx);
        // Bonds at rest; bending Laplacian ≈ small inward; area penalty small
        // (polygon vs circle). Total force per bead stays small and the NET
        // force is exactly zero (momentum conservation).
        let net: [f64; 3] = [p.fx.iter().sum(), p.fy.iter().sum(), p.fz.iter().sum()];
        for c in net {
            assert!(c.abs() < 1e-9, "net membrane force {net:?}");
        }
    }

    #[test]
    fn stretched_bond_pulls_back() {
        let (mut p, cell, bx) = setup(1.0, 8);
        // Move bead 0 radially outward.
        p.x[cell.beads[0]] += 0.5;
        p.clear_forces();
        cell.accumulate_forces(&mut p, &bx);
        // Restoring force points back toward the ring (-x).
        assert!(
            p.fx[cell.beads[0]] < 0.0,
            "force {:?}",
            p.force(cell.beads[0])
        );
    }

    #[test]
    fn compressed_cell_pushes_outward() {
        let (mut p, cell, bx) = setup(1.0, 16);
        // Shrink the ring uniformly by 20%: area penalty should push out.
        for &b in &cell.beads {
            p.x[b] = 5.0 + (p.x[b] - 5.0) * 0.8;
            p.y[b] = 5.0 + (p.y[b] - 5.0) * 0.8;
        }
        p.clear_forces();
        cell.accumulate_forces(&mut p, &bx);
        // Radial component of force on bead 0 (at +x) should be positive
        // (outward): bonds are compressed (pushing out) and area deficit
        // pushes out.
        let f = p.force(cell.beads[0]);
        assert!(f[0] > 0.0, "outward restoring force expected: {f:?}");
    }

    #[test]
    fn membrane_survives_flow_in_dpd() {
        use crate::sim::{DpdConfig, DpdSim, WallGeometry};
        let cfg = DpdConfig {
            seed: 33,
            ..Default::default()
        };
        let bx = Box3::new([0.0; 3], [8.0, 6.0, 4.0], [true, false, true]);
        let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
        sim.fill_solvent();
        let cell = CellModel::ring(
            &mut sim.particles,
            [4.0, 3.0, 2.0],
            1.0,
            24,
            2,
            200.0,
            20.0,
            100.0,
        );
        let x0 = cell.center(&sim.particles, &bx)[0];
        sim.cells.push(cell);
        sim.set_body_force(|_| [0.1, 0.0, 0.0]);
        for _ in 0..400 {
            sim.step();
        }
        let cell = &sim.cells[0];
        // Membrane intact: no bond stretched beyond 2x rest length.
        let max_bond = cell
            .bond_lengths(&sim.particles, &sim.bx)
            .into_iter()
            .fold(0.0f64, f64::max);
        assert!(
            max_bond < 2.0 * cell.r0,
            "membrane torn: max bond {max_bond} vs r0 {}",
            cell.r0
        );
        // Area within 30% of target despite flow + thermal agitation.
        let a = cell.area(&sim.particles, &sim.bx);
        assert!(
            (a - cell.area0).abs() < 0.3 * cell.area0,
            "area {a} vs {0}",
            cell.area0
        );
        // The cell advected downstream with the flow.
        let x1 = cell.center(&sim.particles, &sim.bx)[0];
        let drift = {
            let mut d = x1 - x0;
            let l = 8.0;
            if d < -l / 2.0 {
                d += l;
            }
            d
        };
        assert!(
            drift > 0.1,
            "cell should advect with the flow: drift {drift}"
        );
    }
}
