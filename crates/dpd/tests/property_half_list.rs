//! Property tests for the half-neighbor-list sweep: on arbitrary random
//! particle clouds the half-list traversal (each pair visited once, ±F
//! scattered to both endpoints) must agree with the full-list baseline
//! (every particle sums over all its neighbors independently) to within
//! floating-point reassociation noise, and the parallel half sweep must
//! be bitwise deterministic at its fixed chunk decomposition.

use nkg_dpd::cells::CellGrid;
use nkg_dpd::force::{
    accumulate_pair_forces, accumulate_pair_forces_full_par, accumulate_pair_forces_par,
    SpeciesMatrix,
};
use nkg_dpd::particles::Particles;
use nkg_dpd::Box3;
use proptest::prelude::*;

const RC: f64 = 1.0;
const KBT: f64 = 1.0;
const DT: f64 = 0.01;

/// Random cloud of `n` particles in a periodic box of side `l`, with two
/// species and non-zero velocities so all three Groot-Warren terms
/// (conservative, dissipative, random) contribute.
fn random_cloud(n: usize, l: f64, seed: u64) -> (Particles, Box3) {
    let bx = Box3::new([0.0; 3], [l; 3], [true; 3]);
    let mut p = Particles::new();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = || {
        // splitmix64 — deterministic per (seed, call index)
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    for i in 0..n {
        let pos = [next() * l, next() * l, next() * l];
        let vel = [next() - 0.5, next() - 0.5, next() - 0.5];
        p.push(pos, vel, (i % 2) as u8);
    }
    (p, bx)
}

/// Shared signature of the three sweep entry points.
type Sweep = fn(&mut Particles, &CellGrid, &Box3, &SpeciesMatrix, f64, f64, f64, u64, u64) -> u64;

fn sweep_forces(
    p: &mut Particles,
    bx: &Box3,
    m: &SpeciesMatrix,
    seed: u64,
    step: u64,
    which: Sweep,
) -> (u64, Vec<[f64; 3]>) {
    let mut grid = CellGrid::new(*bx, RC);
    grid.rebuild_soa(&p.x, &p.y, &p.z);
    p.clear_forces();
    let hits = which(p, &grid, bx, m, RC, KBT, DT, seed, step);
    (hits, p.force_aos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Half-list (serial and parallel) and full-list sweeps visit the
    /// same pair set and produce forces equal to within 1e-12 of the
    /// largest force magnitude — the only permitted difference is the
    /// summation order.
    #[test]
    fn half_and_full_sweeps_agree(
        seed in 0u64..10_000,
        step in 0u64..1_000,
        n in 32usize..256,
        l in 3.0f64..6.0,
    ) {
        let m = {
            let mut m = SpeciesMatrix::uniform(2, 25.0, 4.5);
            m.set(0, 1, 32.0, 6.0);
            m
        };
        let (mut p, bx) = random_cloud(n, l, seed);
        let (hits_half, f_half) =
            sweep_forces(&mut p, &bx, &m, seed, step, accumulate_pair_forces);
        let (hits_par, f_par) =
            sweep_forces(&mut p, &bx, &m, seed, step, accumulate_pair_forces_par);
        let (hits_full, f_full) =
            sweep_forces(&mut p, &bx, &m, seed, step, accumulate_pair_forces_full_par);

        prop_assert_eq!(hits_half, hits_full, "pair counts diverged");
        prop_assert_eq!(hits_half, hits_par, "parallel half pair count diverged");

        let scale = f_full
            .iter()
            .flatten()
            .fold(1.0f64, |a, &b| a.max(b.abs()));
        for i in 0..n {
            for k in 0..3 {
                prop_assert!(
                    (f_half[i][k] - f_full[i][k]).abs() <= 1e-12 * scale,
                    "half vs full at particle {} component {}: {} vs {}",
                    i, k, f_half[i][k], f_full[i][k]
                );
                prop_assert!(
                    (f_par[i][k] - f_full[i][k]).abs() <= 1e-12 * scale,
                    "parallel half vs full at particle {} component {}: {} vs {}",
                    i, k, f_par[i][k], f_full[i][k]
                );
            }
        }
    }

    /// At the fixed chunk decomposition (chunk count is a compile-time
    /// constant, independent of thread count) the parallel half sweep is
    /// bitwise deterministic: repeated runs reproduce every force word.
    #[test]
    fn parallel_half_sweep_is_bitwise_deterministic(
        seed in 0u64..10_000,
        n in 32usize..256,
    ) {
        let m = SpeciesMatrix::uniform(2, 25.0, 4.5);
        let (mut p, bx) = random_cloud(n, 4.0, seed);
        let (_, f1) = sweep_forces(&mut p, &bx, &m, seed, 7, accumulate_pair_forces_par);
        let (_, f2) = sweep_forces(&mut p, &bx, &m, seed, 7, accumulate_pair_forces_par);
        for i in 0..n {
            for k in 0..3 {
                prop_assert_eq!(
                    f1[i][k].to_bits(),
                    f2[i][k].to_bits(),
                    "parallel half sweep not reproducible at particle {}", i
                );
            }
        }
    }
}
