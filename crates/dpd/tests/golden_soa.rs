//! Golden-value pin for the SoA particle-storage refactor.
//!
//! The expected hashes below were captured from the pre-refactor AoS
//! implementation (`Particles` as `Vec<[f64; 3]>` arrays, pair-at-a-time
//! scalar sweep) on a frozen deterministic scene. The SoA layout, the
//! batched min-image/distance kernel and the hoisted pair-noise prefix
//! must all reproduce the same forces and trajectories *bitwise*; any
//! drift here means the refactor changed physics, not just layout.

use nkg_dpd::cells::CellGrid;
use nkg_dpd::force::{accumulate_pair_forces, accumulate_pair_forces_full_par, SpeciesMatrix};
use nkg_dpd::sim::{DpdConfig, DpdSim, ForceBackend, WallGeometry};
use nkg_dpd::Box3;

/// Number of interacting pairs in the frozen scene (both sweep flavors).
const GOLDEN_PAIRS: u64 = 6663;
/// Forces after one serial half sweep, captured pre-refactor.
const GOLDEN_SERIAL_FORCE_HASH: u64 = 0x342987006f999797;
/// Forces after one full-neighborhood sweep, captured pre-refactor.
const GOLDEN_FULL_FORCE_HASH: u64 = 0x79090c96cd35a9dd;
/// Positions+velocities after 5 serial steps, captured pre-refactor.
const GOLDEN_STATE_HASH: u64 = 0xc1864ac053544b01;

/// FNV-1a over the little-endian bit patterns of a stream of f64s.
fn fnv1a(values: impl Iterator<Item = f64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Deterministic ~1k-particle cloud (LCG), 2 species, in a 7^3 periodic box.
fn frozen_scene() -> (DpdSim, CellGrid, SpeciesMatrix, Box3) {
    let bx = Box3::new([0.0; 3], [7.0; 3], [true; 3]);
    let cfg = DpdConfig {
        seed: 4242,
        ..Default::default()
    };
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::None);
    sim.fill_solvent();
    assert_eq!(sim.particles.len(), 1029, "frozen scene changed size");
    // Deterministically retag some particles as species 1.
    for i in (0..sim.particles.len()).step_by(7) {
        sim.particles.species[i] = 1;
    }
    let mut m = SpeciesMatrix::uniform(2, 25.0, 4.5);
    m.set(0, 1, 40.0, 9.0);
    let mut grid = CellGrid::new(bx, 1.0);
    grid.rebuild_soa(&sim.particles.x, &sim.particles.y, &sim.particles.z);
    (sim, grid, m, bx)
}

fn force_hash(sim: &DpdSim) -> u64 {
    fnv1a(
        sim.particles
            .force_aos()
            .iter()
            .flat_map(|f| f.iter().copied()),
    )
}

fn state_hash(sim: &DpdSim) -> u64 {
    fnv1a(
        sim.particles
            .pos_aos()
            .iter()
            .chain(sim.particles.vel_aos().iter())
            .flat_map(|v| v.iter().copied()),
    )
}

/// The restructured serial half sweep (per-`i` batched candidate lists
/// through the vectorized distance kernel) preserves each particle's
/// accumulation order, so its output is bitwise equal to the historical
/// pair-at-a-time sweep.
#[test]
fn serial_half_sweep_matches_pre_refactor_golden() {
    let (mut sim, grid, m, bx) = frozen_scene();
    sim.particles.clear_forces();
    let pairs = accumulate_pair_forces(&mut sim.particles, &grid, &bx, &m, 1.0, 1.0, 0.01, 4242, 3);
    assert_eq!(pairs, GOLDEN_PAIRS, "serial pair count drifted");
    assert_eq!(
        force_hash(&sim),
        GOLDEN_SERIAL_FORCE_HASH,
        "serial half-sweep forces are not bitwise identical to the \
         pre-refactor AoS implementation"
    );
}

/// The full-neighborhood baseline sweep keeps the historical per-particle
/// candidate enumeration order and must also hash identically.
#[test]
fn full_sweep_matches_pre_refactor_golden() {
    let (mut sim, grid, m, bx) = frozen_scene();
    sim.particles.clear_forces();
    let pairs = accumulate_pair_forces_full_par(
        &mut sim.particles,
        &grid,
        &bx,
        &m,
        1.0,
        1.0,
        0.01,
        4242,
        3,
    );
    assert_eq!(pairs, GOLDEN_PAIRS, "full-sweep pair count drifted");
    assert_eq!(
        force_hash(&sim),
        GOLDEN_FULL_FORCE_HASH,
        "full-sweep forces are not bitwise identical to the pre-refactor \
         AoS implementation"
    );
}

/// Five serial velocity-Verlet steps (integrator, wrapping, thermostat,
/// noise hoisting and grid rebuild all in the loop) reproduce the
/// pre-refactor trajectory bitwise.
#[test]
fn serial_trajectory_matches_pre_refactor_golden() {
    let (mut sim, _, _, _) = frozen_scene();
    sim.force_backend = ForceBackend::Serial;
    for _ in 0..5 {
        sim.step();
    }
    assert_eq!(
        state_hash(&sim),
        GOLDEN_STATE_HASH,
        "5-step serial trajectory diverged from the pre-refactor AoS \
         implementation"
    );
}
