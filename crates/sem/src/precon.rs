//! Persistent elliptic solver engine: low-energy block preconditioners,
//! an assembled coarse vertex-space solve, successive-RHS projection warm
//! starts and allocation-free PCG workspaces.
//!
//! The paper attributes the scalability of its NεκTαr flow solver to
//! "low-energy preconditioning" of the conjugate-gradient Helmholtz and
//! Poisson solves. This module implements that ladder for the matrix-free
//! SEM operators of [`crate::space2d::Space2d`] and
//! [`crate::space3d::Space3d`]:
//!
//! * the GLL tensor basis of each element is split by topological role —
//!   **vertex / edge / (face) / interior** — which is exactly the
//!   decomposition in which the high-order basis is "low energy": coupling
//!   between the groups is weak, so block-diagonal inverses per group are a
//!   good approximation of `A⁻¹`;
//! * shared edge/face blocks are assembled across the elements that touch
//!   them and inverted by small dense Cholesky factorizations computed once;
//! * the vertex degrees of freedom form a **coarse problem**: a Galerkin
//!   projection `A_c = PᵀAP` onto the continuous Q1 hat functions of the
//!   element vertices, factored once and solved exactly on every
//!   application — this is the two-level ingredient that makes iteration
//!   counts (nearly) independent of the element count;
//! * an [`EllipticSolver`] is created **once** per (space, λ, Dirichlet
//!   mask) and owns every buffer the solve needs, so the time-stepping hot
//!   loop performs zero heap allocation;
//! * successive right-hand sides reuse the last `K` solutions through an
//!   A-orthonormal **projection warm start** (Fischer's successive-RHS
//!   projection): the new RHS is projected onto the stored solutions for an
//!   initial guess, and each new solution is A-orthogonalized back into the
//!   basis.
//!
//! Everything here preserves the crate's reproducibility contract: all
//! inner products route through [`nkg_simd::par`], so solves are bitwise
//! identical across rayon thread counts, and bitwise identical to the
//! serial kernels at `RAYON_NUM_THREADS=1`.

use crate::cg::{pcg_ws, CgResult, CgWorkspace};
use nkg_artifact::{cached, Artifact, ArtifactKey, KeyHasher};
use nkg_ckpt::{Dec, Enc};
use nkg_simd::par::{par_axpy, par_dot};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Reusable scratch for matrix-free Helmholtz applications (2D and 3D).
///
/// `du`/`fl` hold reference-space derivatives and metric fluxes (the 2D
/// kernel uses the first two of each), `ul`/`ol` the gathered/locally
/// applied element vectors, and `locals` is the flat per-element output
/// buffer of the rayon element-parallel path.
#[derive(Debug, Default, Clone)]
pub struct ApplyScratch {
    pub(crate) ul: Vec<f64>,
    pub(crate) du: [Vec<f64>; 3],
    pub(crate) fl: [Vec<f64>; 3],
    pub(crate) ol: Vec<f64>,
    pub(crate) locals: Vec<f64>,
}

impl ApplyScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow the per-element buffers to `nloc` entries.
    pub(crate) fn ensure(&mut self, nloc: usize) {
        if self.ul.len() < nloc {
            self.ul.resize(nloc, 0.0);
            self.ol.resize(nloc, 0.0);
            for b in &mut self.du {
                b.resize(nloc, 0.0);
            }
            for b in &mut self.fl {
                b.resize(nloc, 0.0);
            }
        }
    }

    /// Grow the flat per-element output buffer (parallel scatter path).
    pub(crate) fn ensure_locals(&mut self, len: usize) {
        if self.locals.len() < len {
            self.locals.resize(len, 0.0);
        }
    }
}

/// Dirichlet mask with a reused scratch buffer: the shared masked-operator
/// helper that replaces the per-CG-iteration `p.to_vec()` clones.
#[derive(Debug, Clone)]
pub struct DirichletMask {
    is_bc: Vec<bool>,
    bc_dofs: Vec<usize>,
    scratch: Vec<f64>,
}

impl DirichletMask {
    pub fn new(nglobal: usize, dirichlet: &[usize]) -> Self {
        let mut is_bc = vec![false; nglobal];
        for &d in dirichlet {
            is_bc[d] = true;
        }
        Self {
            is_bc,
            bc_dofs: dirichlet.to_vec(),
            scratch: vec![0.0; nglobal],
        }
    }

    #[inline]
    pub fn is_masked(&self, i: usize) -> bool {
        self.is_bc[i]
    }

    /// The boolean mask (true at Dirichlet DoFs).
    pub fn flags(&self) -> &[bool] {
        &self.is_bc
    }

    /// Zero the masked entries of `v` in place.
    pub fn zero_masked(&self, v: &mut [f64]) {
        for &d in &self.bc_dofs {
            v[d] = 0.0;
        }
    }

    /// Masked operator application `out = M A M p` without allocating:
    /// copies `p` into the internal scratch, zeroes its Dirichlet entries,
    /// runs `raw` on the masked input, then zeroes Dirichlet entries of the
    /// output.
    pub fn apply_masked(
        &mut self,
        p: &[f64],
        out: &mut [f64],
        raw: impl FnOnce(&[f64], &mut [f64]),
    ) {
        self.scratch[..p.len()].copy_from_slice(p);
        for &d in &self.bc_dofs {
            self.scratch[d] = 0.0;
        }
        raw(&self.scratch[..p.len()], out);
        for &d in &self.bc_dofs {
            out[d] = 0.0;
        }
    }
}

/// Topological role of a local tensor-product node inside one element.
///
/// The `u8` payload distinguishes the element's edges (2D: 4, 3D: 12) and
/// faces (3D: 6) so nodes on different entities never land in one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRole {
    Vertex,
    Edge(u8),
    Face(u8),
    Interior,
}

/// What a space must expose for the elliptic engine to precondition it.
///
/// Implemented by [`crate::Space2d`] and [`crate::Space3d`]; the engine
/// itself is dimension-agnostic.
pub trait EllipticSpace {
    /// Global DoF count.
    fn nglobal(&self) -> usize;
    /// Element count.
    fn num_elems(&self) -> usize;
    /// Nodes per element.
    fn nloc(&self) -> usize;
    /// Local→global DoF map of element `e`.
    fn elem_gids(&self, e: usize) -> &[usize];
    /// Matrix-free `out = A u` with caller-provided scratch (no per-call
    /// allocation).
    fn apply_helmholtz_ws(&self, lambda: f64, u: &[f64], out: &mut [f64], ws: &mut ApplyScratch);
    /// Assembled operator diagonal.
    fn helmholtz_diag(&self, lambda: f64) -> Vec<f64>;
    /// Dense element Helmholtz matrix (row-major `nloc × nloc`), built by
    /// probing the element kernel with unit vectors.
    fn elem_matrix(&self, e: usize, lambda: f64, out: &mut [f64], ws: &mut ApplyScratch);
    /// Topological role of each local node (identical for every element of
    /// the tensor-product basis).
    fn node_roles(&self) -> Vec<NodeRole>;
    /// Element corners: local node index of each corner, and the Q1
    /// (bi/trilinear) hat values `hats[c][k]` of corner `c` at local node
    /// `k` — the element prolongation of the coarse vertex space.
    fn corner_hats(&self) -> (Vec<usize>, Vec<Vec<f64>>);
    /// Content fingerprint of the discretization (mesh geometry,
    /// connectivity and order), if the space can produce one. Feeds the
    /// `nkg-artifact` keys under which setup factorizations are shared;
    /// `None` (the default) opts the space out of caching — every build
    /// stays cold, which is always correct.
    fn fingerprint(&self) -> Option<ArtifactKey> {
        None
    }
}

/// The preconditioner rungs of the ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreconKind {
    /// Identity (plain CG).
    None,
    /// Pointwise inverse of the assembled diagonal.
    Jacobi,
    /// Vertex diagonal + assembled edge/face/interior block inverses.
    LowEnergy,
    /// [`PreconKind::LowEnergy`] plus the Galerkin coarse vertex solve.
    LowEnergyCoarse,
}

/// `M⁻¹` application; `&mut self` because implementations own scratch.
pub trait Preconditioner {
    fn apply(&mut self, r: &[f64], z: &mut [f64]);
}

// ---------------------------------------------------------------------------
// Small dense Cholesky (row-major, in place)
// ---------------------------------------------------------------------------

/// In-place lower Cholesky of a row-major `n×n` SPD matrix. Returns false
/// (leaving `a` partially overwritten) when a non-positive pivot shows the
/// matrix is not numerically SPD.
fn cholesky_in_place(a: &mut [f64], n: usize) -> bool {
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return false;
                }
                a[i * n + i] = s.sqrt();
            } else {
                a[i * n + j] = s / a[j * n + j];
            }
        }
    }
    true
}

/// Solve `L Lᵀ x = b` in place given the lower factor from
/// [`cholesky_in_place`].
fn cholesky_solve(l: &[f64], n: usize, x: &mut [f64]) {
    for i in 0..n {
        let mut s = x[i];
        for k in 0..i {
            s -= l[i * n + k] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    for i in (0..n).rev() {
        let mut s = x[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
}

// ---------------------------------------------------------------------------
// Low-energy block preconditioner
// ---------------------------------------------------------------------------

/// One assembled topological block: the unmasked global DoFs of a shared
/// edge/face (or one element interior) and the Cholesky factor of the
/// corresponding principal submatrix of `A`.
#[derive(Debug, Clone)]
struct Block {
    gids: Vec<usize>,
    n: usize,
    chol: Vec<f64>,
}

/// Factored coarse vertex-space solve `P A_c⁻¹ Pᵀ` (immutable part).
#[derive(Debug, Clone)]
struct CoarseFactors {
    nc: usize,
    chol: Vec<f64>,
    /// Sparse prolongation by coarse column: `cols[c]` lists the
    /// `(global DoF, hat value)` support of coarse vertex `c`.
    cols: Vec<Vec<(usize, f64)>>,
}

/// The immutable product of low-energy preconditioner assembly: block
/// Cholesky factors, the vertex diagonal and the optional coarse solve.
///
/// This is the expensive part of [`LowEnergyPrecon`] construction (element
/// matrix probing plus the factorizations), split from the per-solver
/// apply scratch so [`EllipticSolver`]s with the same (space, λ, mask) key
/// can `Arc`-share one copy through the `nkg-artifact` cache.
#[derive(Debug, Clone)]
pub struct LowEnergyFactors {
    blocks: Vec<Block>,
    /// `(gid, diag)` of unmasked vertex DoFs; applied as `r/diag`.
    vertex_diag: Vec<(usize, f64)>,
    coarse: Option<CoarseFactors>,
    max_block: usize,
}

/// Additive two-level low-energy preconditioner:
/// `z = Σ_g R_gᵀ A_g⁻¹ R_g r  +  D_v⁻¹ r  +  P A_c⁻¹ Pᵀ r`
/// (the last term only for [`PreconKind::LowEnergyCoarse`]). Holds shared
/// immutable factors plus its own gather/coarse-residual scratch.
#[derive(Debug, Clone)]
pub struct LowEnergyPrecon {
    factors: Arc<LowEnergyFactors>,
    gather: Vec<f64>,
    rc: Vec<f64>,
}

impl LowEnergyFactors {
    /// Assemble the blocks (and optionally the coarse problem) for `space`
    /// at shift `lambda` with the given Dirichlet mask.
    pub fn build<S: EllipticSpace + ?Sized>(
        space: &S,
        lambda: f64,
        mask: &DirichletMask,
        with_coarse: bool,
    ) -> Self {
        let nloc = space.nloc();
        let roles = space.node_roles();
        let (corner_locs, hats) = space.corner_hats();
        let ncorner = corner_locs.len();

        // Group local nodes of the reference element by topological entity.
        let mut entity_locs: HashMap<NodeRole, Vec<usize>> = HashMap::new();
        for (k, &role) in roles.iter().enumerate() {
            if role != NodeRole::Vertex {
                entity_locs.entry(role).or_default().push(k);
            }
        }
        // Deterministic iteration order over entities within an element.
        let mut entity_list: Vec<(NodeRole, Vec<usize>)> = entity_locs.into_iter().collect();
        entity_list.sort_by_key(|(role, _)| match *role {
            NodeRole::Edge(i) => (0u8, i),
            NodeRole::Face(i) => (1u8, i),
            NodeRole::Interior => (2u8, 0),
            NodeRole::Vertex => unreachable!(),
        });

        // Assemble blocks across elements, keyed by the (unmasked) global
        // DoF set so shared edges/faces merge.
        struct Builder {
            gids: Vec<usize>,
            mat: Vec<f64>,
        }
        let mut key_index: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut builders: Vec<Builder> = Vec::new();
        let mut ws = ApplyScratch::new();
        let mut ae = vec![0.0f64; nloc * nloc];
        let mut coarse_mat: Vec<f64> = Vec::new();
        let mut coarse_index: HashMap<usize, usize> = HashMap::new();
        let mut coarse_cols: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut vertex_gids: BTreeSet<usize> = BTreeSet::new();

        // Coarse DoFs = unmasked vertex gids, numbered in sorted order so
        // the assembly below is deterministic.
        if with_coarse {
            let mut set = BTreeSet::new();
            for e in 0..space.num_elems() {
                let gmap = space.elem_gids(e);
                for &cl in &corner_locs {
                    let g = gmap[cl];
                    if !mask.is_masked(g) {
                        set.insert(g);
                    }
                }
            }
            for (i, g) in set.iter().enumerate() {
                coarse_index.insert(*g, i);
            }
            let nc = coarse_index.len();
            coarse_mat = vec![0.0; nc * nc];
            coarse_cols = vec![Vec::new(); nc];
        }
        // Per-column dedup for the sparse prolongation (shared nodes are
        // visited once per incident element with identical hat values).
        let mut col_maps: Vec<HashMap<usize, f64>> = vec![HashMap::new(); coarse_index.len()];
        let mut pe = vec![0.0f64; nloc];
        let mut qe = vec![0.0f64; ncorner * nloc];

        for e in 0..space.num_elems() {
            let gmap = space.elem_gids(e);
            space.elem_matrix(e, lambda, &mut ae, &mut ws);

            for &cl in &corner_locs {
                let g = gmap[cl];
                if !mask.is_masked(g) {
                    vertex_gids.insert(g);
                }
            }

            for (_role, locs) in &entity_list {
                // Unmasked members only (the masked operator is zero on
                // Dirichlet rows/columns), sorted by global id and deduped
                // — a periodically self-identified entity keeps one copy.
                let mut pairs: Vec<(usize, usize)> = locs
                    .iter()
                    .filter(|&&k| !mask.is_masked(gmap[k]))
                    .map(|&k| (gmap[k], k))
                    .collect();
                if pairs.is_empty() {
                    continue;
                }
                pairs.sort_unstable();
                pairs.dedup_by_key(|p| p.0);
                let gids: Vec<usize> = pairs.iter().map(|p| p.0).collect();
                let bi = *key_index.entry(gids.clone()).or_insert_with(|| {
                    builders.push(Builder {
                        mat: vec![0.0; gids.len() * gids.len()],
                        gids,
                    });
                    builders.len() - 1
                });
                let b = &mut builders[bi];
                let m = b.gids.len();
                for (bi_row, &(_, li)) in pairs.iter().enumerate() {
                    for (bi_col, &(_, lj)) in pairs.iter().enumerate() {
                        b.mat[bi_row * m + bi_col] += ae[li * nloc + lj];
                    }
                }
            }

            if with_coarse {
                // Element contribution to A_c = Pᵀ A P with masked rows of
                // P zeroed and masked vertex columns dropped.
                for c in 0..ncorner {
                    for k in 0..nloc {
                        pe[k] = if mask.is_masked(gmap[k]) {
                            0.0
                        } else {
                            hats[c][k]
                        };
                    }
                    let q = &mut qe[c * nloc..(c + 1) * nloc];
                    for (i, qi) in q.iter_mut().enumerate() {
                        let row = &ae[i * nloc..(i + 1) * nloc];
                        *qi = row.iter().zip(&pe).map(|(a, p)| a * p).sum();
                    }
                }
                let nc = coarse_index.len();
                for (c, &cl) in corner_locs.iter().enumerate() {
                    let Some(&ci) = coarse_index.get(&gmap[cl]) else {
                        continue;
                    };
                    // Sparse prolongation entries for this column.
                    for k in 0..nloc {
                        let g = gmap[k];
                        if !mask.is_masked(g) && hats[c][k] != 0.0 {
                            col_maps[ci].insert(g, hats[c][k]);
                        }
                    }
                    for (d, &dl) in corner_locs.iter().enumerate() {
                        let Some(&di) = coarse_index.get(&gmap[dl]) else {
                            continue;
                        };
                        let qd = &qe[d * nloc..(d + 1) * nloc];
                        let mut s = 0.0;
                        for k in 0..nloc {
                            if !mask.is_masked(gmap[k]) {
                                s += hats[c][k] * qd[k];
                            }
                        }
                        coarse_mat[ci * nc + di] += s;
                    }
                }
            }
        }

        // Factor the blocks; a non-SPD block (cannot happen for a
        // well-posed problem, but belt and braces) degrades to its
        // diagonal.
        let mut blocks = Vec::with_capacity(builders.len());
        for mut b in builders {
            let m = b.gids.len();
            let diag: Vec<f64> = (0..m).map(|i| b.mat[i * m + i]).collect();
            if !cholesky_in_place(&mut b.mat, m) {
                b.mat.iter_mut().for_each(|v| *v = 0.0);
                for i in 0..m {
                    b.mat[i * m + i] = diag[i].abs().max(1e-300).sqrt();
                }
            }
            blocks.push(Block {
                gids: b.gids,
                n: m,
                chol: b.mat,
            });
        }

        // Fine-level vertex treatment: pointwise assembled diagonal. Any
        // unmasked DoF not covered by a block (cannot happen on conforming
        // meshes, but cheap to guarantee) also falls back to its diagonal
        // so M⁻¹ stays positive definite on the whole masked subspace.
        let diag = space.helmholtz_diag(lambda);
        let mut covered = vec![false; space.nglobal()];
        for b in &blocks {
            for &g in &b.gids {
                covered[g] = true;
            }
        }
        let mut vertex_diag: Vec<(usize, f64)> = Vec::new();
        for g in vertex_gids {
            vertex_diag.push((g, diag[g]));
            covered[g] = true;
        }
        for g in 0..space.nglobal() {
            if !covered[g] && !mask.is_masked(g) {
                vertex_diag.push((g, diag[g]));
            }
        }

        let coarse = if with_coarse && !coarse_index.is_empty() {
            let nc = coarse_index.len();
            if cholesky_in_place(&mut coarse_mat, nc) {
                for (ci, m) in col_maps.into_iter().enumerate() {
                    let mut v: Vec<(usize, f64)> = m.into_iter().collect();
                    v.sort_by_key(|&(g, _)| g);
                    coarse_cols[ci] = v;
                }
                Some(CoarseFactors {
                    nc,
                    chol: coarse_mat,
                    cols: coarse_cols,
                })
            } else {
                None
            }
        } else {
            None
        };

        let max_block = blocks.iter().map(|b| b.n).max().unwrap_or(0);
        Self {
            blocks,
            vertex_diag,
            coarse,
            max_block,
        }
    }
}

/// The factors opt into the artifact disk tier: every `f64` round-trips
/// through its exact bit pattern, so a disk-hit preconditioner applies
/// bitwise identically to a cold-built one.
impl Artifact for LowEnergyFactors {
    fn approx_bytes(&self) -> usize {
        let blocks: usize = self
            .blocks
            .iter()
            .map(|b| b.gids.len() * 8 + b.chol.len() * 8)
            .sum();
        let coarse = self.coarse.as_ref().map_or(0, |c| {
            c.chol.len() * 8 + c.cols.iter().map(|col| col.len() * 16).sum::<usize>()
        });
        blocks + coarse + self.vertex_diag.len() * 16
    }

    fn encode(&self) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        e.put(self.blocks.len() as u64);
        for b in &self.blocks {
            let gids: Vec<u64> = b.gids.iter().map(|&g| g as u64).collect();
            e.put_slice(&gids);
            e.put_slice(&b.chol);
        }
        let vg: Vec<u64> = self.vertex_diag.iter().map(|&(g, _)| g as u64).collect();
        let vd: Vec<f64> = self.vertex_diag.iter().map(|&(_, d)| d).collect();
        e.put_slice(&vg);
        e.put_slice(&vd);
        e.put_bool(self.coarse.is_some());
        if let Some(c) = &self.coarse {
            e.put(c.nc as u64);
            e.put_slice(&c.chol);
            e.put(c.cols.len() as u64);
            for col in &c.cols {
                let gs: Vec<u64> = col.iter().map(|&(g, _)| g as u64).collect();
                let vs: Vec<f64> = col.iter().map(|&(_, v)| v).collect();
                e.put_slice(&gs);
                e.put_slice(&vs);
            }
        }
        Some(e.into_bytes())
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let nb = d.take::<u64>().ok()? as usize;
        let mut blocks = Vec::with_capacity(nb);
        for _ in 0..nb {
            let gids: Vec<usize> = d
                .take_vec::<u64>()
                .ok()?
                .into_iter()
                .map(|g| g as usize)
                .collect();
            let chol = d.take_vec::<f64>().ok()?;
            let n = gids.len();
            if chol.len() != n * n {
                return None;
            }
            blocks.push(Block { gids, n, chol });
        }
        let vg = d.take_vec::<u64>().ok()?;
        let vd = d.take_vec::<f64>().ok()?;
        if vg.len() != vd.len() {
            return None;
        }
        let vertex_diag = vg
            .into_iter()
            .map(|g| g as usize)
            .zip(vd)
            .collect::<Vec<_>>();
        let coarse = if d.take_bool().ok()? {
            let nc = d.take::<u64>().ok()? as usize;
            let chol = d.take_vec::<f64>().ok()?;
            if chol.len() != nc * nc {
                return None;
            }
            let ncols = d.take::<u64>().ok()? as usize;
            let mut cols = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let gs = d.take_vec::<u64>().ok()?;
                let vs = d.take_vec::<f64>().ok()?;
                if gs.len() != vs.len() {
                    return None;
                }
                cols.push(gs.into_iter().map(|g| g as usize).zip(vs).collect());
            }
            Some(CoarseFactors { nc, chol, cols })
        } else {
            None
        };
        d.finish().ok()?;
        let max_block = blocks.iter().map(|b| b.n).max().unwrap_or(0);
        Some(Self {
            blocks,
            vertex_diag,
            coarse,
            max_block,
        })
    }
}

impl LowEnergyPrecon {
    /// Assemble the blocks (and optionally the coarse problem) for `space`
    /// at shift `lambda` with the given Dirichlet mask.
    pub fn new<S: EllipticSpace + ?Sized>(
        space: &S,
        lambda: f64,
        mask: &DirichletMask,
        with_coarse: bool,
    ) -> Self {
        Self::from_factors(Arc::new(LowEnergyFactors::build(
            space,
            lambda,
            mask,
            with_coarse,
        )))
    }

    /// Wrap shared (possibly cached) factors with fresh apply scratch.
    pub fn from_factors(factors: Arc<LowEnergyFactors>) -> Self {
        let gather = vec![0.0; factors.max_block];
        let rc = vec![0.0; factors.coarse.as_ref().map_or(0, |c| c.nc)];
        Self {
            factors,
            gather,
            rc,
        }
    }

    /// Whether the coarse vertex solve is active.
    pub fn has_coarse(&self) -> bool {
        self.factors.coarse.is_some()
    }
}

impl Preconditioner for LowEnergyPrecon {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        z.iter_mut().for_each(|v| *v = 0.0);
        for b in &self.factors.blocks {
            let g = &mut self.gather[..b.n];
            for (i, &gid) in b.gids.iter().enumerate() {
                g[i] = r[gid];
            }
            cholesky_solve(&b.chol, b.n, g);
            for (i, &gid) in b.gids.iter().enumerate() {
                z[gid] += g[i];
            }
        }
        for &(g, d) in &self.factors.vertex_diag {
            z[g] += r[g] / d;
        }
        if let Some(c) = &self.factors.coarse {
            for (ci, col) in c.cols.iter().enumerate() {
                let mut s = 0.0;
                for &(g, v) in col {
                    s += v * r[g];
                }
                self.rc[ci] = s;
            }
            cholesky_solve(&c.chol, c.nc, &mut self.rc);
            for (ci, col) in c.cols.iter().enumerate() {
                let y = self.rc[ci];
                for &(g, v) in col {
                    z[g] += v * y;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Successive-RHS projection warm starts
// ---------------------------------------------------------------------------

/// A-orthonormal basis of previous solutions for one RHS stream.
///
/// Invariant: `w[i]ᵀ A w[j] = δ_ij`; `aw[i] = A w[i]`. The initial guess
/// for a new masked RHS `b` is `x₀ = Σ (w_iᵀ b) w_i` — the A-norm-optimal
/// element of `span{w}` — and each converged solution is A-orthogonalized
/// back into the basis, evicting the oldest vector beyond `depth`
/// (dropping a member of an A-orthonormal set keeps the rest
/// A-orthonormal).
#[derive(Debug, Clone, Default)]
struct ProjBasis {
    depth: usize,
    w: Vec<Vec<f64>>,
    aw: Vec<Vec<f64>>,
    /// Candidate scratch, so a rejected candidate never evicts anything.
    vtmp: Vec<f64>,
    avtmp: Vec<f64>,
}

impl ProjBasis {
    fn new(depth: usize) -> Self {
        Self {
            depth,
            ..Self::default()
        }
    }

    /// Write the projected initial guess into `x0`; returns the basis size.
    fn guess(&self, b: &[f64], x0: &mut [f64]) -> usize {
        x0.iter_mut().for_each(|v| *v = 0.0);
        for w in &self.w {
            let c = par_dot(w, b);
            par_axpy(c, w, x0);
        }
        self.w.len()
    }

    /// A-orthogonalize `x` against the basis and append it (evicting the
    /// oldest member at capacity). `ax` must hold the masked `A x`.
    fn absorb(&mut self, x: &[f64], ax: &[f64]) {
        if self.depth == 0 {
            return;
        }
        let n = x.len();
        if self.vtmp.len() < n {
            self.vtmp.resize(n, 0.0);
            self.avtmp.resize(n, 0.0);
        }
        let (wv, av) = (&mut self.vtmp[..n], &mut self.avtmp[..n]);
        wv.copy_from_slice(x);
        av.copy_from_slice(ax);
        let nrm2_full = par_dot(wv, av);
        for (w, aw) in self.w.iter().zip(&self.aw) {
            // c = wᵀ A x  (A-projection of the candidate on the basis).
            let c = par_dot(aw, x);
            par_axpy(-c, w, wv);
            par_axpy(-c, aw, av);
        }
        let nrm2 = par_dot(wv, av);
        if nrm2 <= 1e-28 + 1e-14 * nrm2_full {
            // Candidate already (numerically) in the span — e.g. a steady
            // state resolving the same RHS every step, or a warm-started
            // solve whose orthogonal remainder is pure CG round-off. The
            // relative cut matters: normalizing a remainder of A-norm
            // ~`tol` would amplify solver noise into a garbage basis
            // vector that poisons every later guess. Keep the basis.
            return;
        }
        let inv = 1.0 / nrm2.sqrt();
        wv.iter_mut().for_each(|v| *v *= inv);
        av.iter_mut().for_each(|v| *v *= inv);
        let (mut ws, mut as_) = if self.w.len() >= self.depth {
            // Recycle the evicted buffers: steady state allocates nothing.
            (self.w.remove(0), self.aw.remove(0))
        } else {
            (vec![0.0; n], vec![0.0; n])
        };
        ws.copy_from_slice(wv);
        as_.copy_from_slice(av);
        self.w.push(ws);
        self.aw.push(as_);
    }

    fn len(&self) -> usize {
        self.w.len()
    }
}

// ---------------------------------------------------------------------------
// The persistent engine
// ---------------------------------------------------------------------------

enum PreconImpl {
    Identity,
    Jacobi { diag: Vec<f64>, is_bc: Vec<bool> },
    LowEnergy(Box<LowEnergyPrecon>),
}

impl Preconditioner for PreconImpl {
    fn apply(&mut self, r: &[f64], z: &mut [f64]) {
        match self {
            PreconImpl::Identity => z.copy_from_slice(r),
            PreconImpl::Jacobi { diag, is_bc } => {
                for i in 0..r.len() {
                    z[i] = if is_bc[i] { 0.0 } else { r[i] / diag[i] };
                }
            }
            PreconImpl::LowEnergy(le) => le.apply(r, z),
        }
    }
}

/// Exported projection bases: per slot, the `(w, Aw)` pairs in age order.
pub type ProjState = Vec<Vec<(Vec<f64>, Vec<f64>)>>;

/// Diagnostics of one [`EllipticSolver::solve_into`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// CG outcome (iterations, residual, convergence, breakdown flag).
    pub cg: CgResult,
    /// Number of projection-basis vectors used for the initial guess.
    pub proj_dim: usize,
}

/// Persistent elliptic solver: one per (space, λ, Dirichlet mask).
///
/// Owns the BC mask, the preconditioner factorizations, the CG workspace
/// and the projection bases; [`EllipticSolver::solve_into`] allocates
/// nothing. The space is passed to each call (rather than owned) so the
/// NS solvers can hold an engine next to the space they both borrow.
pub struct EllipticSolver {
    lambda: f64,
    kind: PreconKind,
    tol: f64,
    max_iter: usize,
    mask: DirichletMask,
    dirichlet: Vec<usize>,
    precon: PreconImpl,
    cg_ws: CgWorkspace,
    scratch: ApplyScratch,
    x_bc: Vec<f64>,
    b: Vec<f64>,
    du: Vec<f64>,
    ax: Vec<f64>,
    proj: Vec<ProjBasis>,
}

impl EllipticSolver {
    /// Build an engine for `space` at shift `lambda` with Dirichlet DoFs
    /// `dirichlet`. `proj_slots` independent RHS streams (e.g. one per
    /// velocity component) each keep up to `proj_depth` past solutions for
    /// warm starts; `proj_depth = 0` disables projection.
    #[allow(clippy::too_many_arguments)]
    pub fn new<S: EllipticSpace + ?Sized>(
        space: &S,
        lambda: f64,
        dirichlet: &[usize],
        kind: PreconKind,
        tol: f64,
        max_iter: usize,
        proj_slots: usize,
        proj_depth: usize,
    ) -> Self {
        let n = space.nglobal();
        let mask = DirichletMask::new(n, dirichlet);
        let precon = match kind {
            PreconKind::None => PreconImpl::Identity,
            PreconKind::Jacobi => PreconImpl::Jacobi {
                diag: space.helmholtz_diag(lambda),
                is_bc: mask.flags().to_vec(),
            },
            PreconKind::LowEnergy | PreconKind::LowEnergyCoarse => {
                // Cache-first: engines over the same (space, λ, mask, rung)
                // Arc-share one set of factors through the ambient
                // `nkg-artifact` cache. Without an ambient cache, or for a
                // space with no fingerprint, this is exactly the cold
                // build — and a cache hit is the *same* immutable object,
                // so the apply arithmetic is bitwise unchanged.
                let with_coarse = kind == PreconKind::LowEnergyCoarse;
                let build = || LowEnergyFactors::build(space, lambda, &mask, with_coarse);
                let factors = match space.fingerprint() {
                    Some(fp) => {
                        let mut h = KeyHasher::new("precon");
                        h.key(fp);
                        h.f64(lambda);
                        h.bool(with_coarse);
                        h.usizes(dirichlet);
                        cached("precon", h.finish(), build)
                    }
                    None => Arc::new(build()),
                };
                PreconImpl::LowEnergy(Box::new(LowEnergyPrecon::from_factors(factors)))
            }
        };
        Self {
            lambda,
            kind,
            tol,
            max_iter,
            mask,
            dirichlet: dirichlet.to_vec(),
            precon,
            cg_ws: CgWorkspace::new(),
            scratch: ApplyScratch::new(),
            x_bc: vec![0.0; n],
            b: vec![0.0; n],
            du: vec![0.0; n],
            ax: vec![0.0; n],
            proj: (0..proj_slots)
                .map(|_| ProjBasis::new(proj_depth))
                .collect(),
        }
    }

    /// The shift λ this engine was factored for.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The preconditioner rung in use.
    pub fn kind(&self) -> PreconKind {
        self.kind
    }

    /// Current projection-basis size of `slot` (0 when projection is off).
    pub fn proj_len(&self, slot: usize) -> usize {
        self.proj.get(slot).map_or(0, |p| p.len())
    }

    /// Solve `(-∇² + λ) u = f` (weak RHS) with Dirichlet values
    /// `bc_value[i]` at the engine's `dirichlet[i]`, writing the solution
    /// into `x`. `slot` selects the projection stream; pass any index ≥
    /// `proj_slots` (or build with `proj_depth = 0`) for a cold start.
    ///
    /// The hot path performs zero heap allocation.
    pub fn solve_into<S: EllipticSpace + ?Sized>(
        &mut self,
        space: &S,
        rhs_weak: &[f64],
        bc_value: &[f64],
        x: &mut [f64],
        slot: usize,
    ) -> SolveStats {
        assert_eq!(bc_value.len(), self.dirichlet.len());
        let n = space.nglobal();
        // Dirichlet lifting: b = mask(rhs − A x_bc).
        self.x_bc.iter_mut().for_each(|v| *v = 0.0);
        for (&d, &v) in self.dirichlet.iter().zip(bc_value) {
            self.x_bc[d] = v;
        }
        space.apply_helmholtz_ws(self.lambda, &self.x_bc, &mut self.ax, &mut self.scratch);
        for i in 0..n {
            self.b[i] = if self.mask.is_masked(i) {
                0.0
            } else {
                rhs_weak[i] - self.ax[i]
            };
        }

        // Warm start by projection onto past solutions.
        let proj_dim = match self.proj.get(slot) {
            Some(basis) if basis.depth > 0 => basis.guess(&self.b, &mut self.du),
            _ => {
                self.du.iter_mut().for_each(|v| *v = 0.0);
                0
            }
        };

        let Self {
            mask,
            scratch,
            precon,
            cg_ws,
            b,
            du,
            lambda,
            tol,
            max_iter,
            ..
        } = self;
        let lambda = *lambda;
        let cg = pcg_ws(
            |p, out| {
                mask.apply_masked(p, out, |pm, o| {
                    space.apply_helmholtz_ws(lambda, pm, o, scratch)
                })
            },
            |r, z| precon.apply(r, z),
            b,
            du,
            *tol,
            *max_iter,
            cg_ws,
        );

        // Absorb the homogeneous solution into the projection basis.
        if self.proj.get(slot).is_some_and(|p| p.depth > 0) {
            let Self {
                mask,
                scratch,
                ax,
                du,
                proj,
                ..
            } = self;
            mask.apply_masked(du, ax, |pm, o| {
                space.apply_helmholtz_ws(lambda, pm, o, scratch)
            });
            proj[slot].absorb(du, ax);
        }

        // x = x_bc + du on free DoFs.
        x.copy_from_slice(&self.x_bc);
        for i in 0..n {
            if !self.mask.is_masked(i) {
                x[i] += self.du[i];
            }
        }
        SolveStats { cg, proj_dim }
    }

    /// Export the projection bases for checkpointing: per slot, the list
    /// of `(w, Aw)` pairs in storage (age) order. Restoring this exactly
    /// preserves bitwise solver state across checkpoint/restart.
    pub fn proj_export(&self) -> ProjState {
        self.proj
            .iter()
            .map(|p| {
                p.w.iter()
                    .zip(&p.aw)
                    .map(|(w, a)| (w.clone(), a.clone()))
                    .collect()
            })
            .collect()
    }

    /// Restore projection bases previously captured by
    /// [`EllipticSolver::proj_export`]. Slots beyond the engine's
    /// configuration are ignored; vectors beyond `proj_depth` are dropped
    /// oldest-first.
    pub fn proj_import(&mut self, state: &ProjState) {
        for (slot, vecs) in state.iter().enumerate() {
            let Some(basis) = self.proj.get_mut(slot) else {
                continue;
            };
            basis.w.clear();
            basis.aw.clear();
            let skip = vecs.len().saturating_sub(basis.depth);
            for (w, a) in vecs.iter().skip(skip) {
                basis.w.push(w.clone());
                basis.aw.push(a.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space2d::Space2d;
    use crate::space3d::Space3d;
    use nkg_mesh::hex::HexMesh;
    use nkg_mesh::quad::QuadMesh;

    fn space2(nx: usize, ny: usize, p: usize) -> Space2d {
        Space2d::new(QuadMesh::rectangle(nx, ny, 0.0, 2.0, 0.0, 1.0), p, false)
    }

    fn space3(p: usize) -> Space3d {
        let mesh = HexMesh::box_mesh(2, 2, 2, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        Space3d::new(mesh, [2, 2, 2], p, false)
    }

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        // Deterministic quasi-random vector (no RNG dependency). The
        // splitmix64-style finalizer matters: a plain `i·M + seed >> 33`
        // leaves the seed in bits the shift discards, so every seed would
        // produce (almost) the same vector.
        (0..n)
            .map(|i| {
                let mut z = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1342543DE82EF95));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                ((z >> 33) as f64 / (1u64 << 31) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn cholesky_roundtrip() {
        let n = 4;
        // SPD: AᵀA + I for a fixed A.
        let a0: Vec<f64> = (0..n * n)
            .map(|i| ((i * 7 + 3) % 11) as f64 * 0.1)
            .collect();
        let mut spd = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = if i == j { 1.0 } else { 0.0 };
                for k in 0..n {
                    s += a0[k * n + i] * a0[k * n + j];
                }
                spd[i * n + j] = s;
            }
        }
        let x = [1.0, -2.0, 0.5, 3.0];
        let mut b = vec![0.0; n];
        for i in 0..n {
            b[i] = (0..n).map(|j| spd[i * n + j] * x[j]).sum();
        }
        assert!(cholesky_in_place(&mut spd, n));
        cholesky_solve(&spd, n, &mut b);
        for i in 0..n {
            assert!((b[i] - x[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 0.0, 0.0, -1.0];
        assert!(!cholesky_in_place(&mut a, 2));
    }

    /// Every preconditioner rung must be symmetric positive definite on
    /// the masked subspace: z₂·M⁻¹r₁ = r₁ᵀM⁻ᵀr₂ symmetry and r·M⁻¹r > 0.
    #[test]
    fn preconditioners_symmetric_positive_2d() {
        let s = space2(2, 2, 5);
        let bnd = s.boundary_dofs(|_| true);
        let mask = DirichletMask::new(s.nglobal, &bnd);
        for kind in [
            PreconKind::Jacobi,
            PreconKind::LowEnergy,
            PreconKind::LowEnergyCoarse,
        ] {
            let mut eng = EllipticSolver::new(&s, 1.3, &bnd, kind, 1e-10, 100, 0, 0);
            let mut r1 = pseudo(s.nglobal, 17);
            let mut r2 = pseudo(s.nglobal, 91);
            mask.zero_masked(&mut r1);
            mask.zero_masked(&mut r2);
            let mut z1 = vec![0.0; s.nglobal];
            let mut z2 = vec![0.0; s.nglobal];
            eng.precon.apply(&r1, &mut z1);
            eng.precon.apply(&r2, &mut z2);
            let a = par_dot(&r2, &z1);
            let b = par_dot(&r1, &z2);
            assert!(
                (a - b).abs() <= 1e-10 * a.abs().max(1.0),
                "{kind:?} not symmetric: {a} vs {b}"
            );
            let pos = par_dot(&r1, &z1);
            assert!(pos > 0.0, "{kind:?} not positive: {pos}");
        }
    }

    #[test]
    fn low_energy_beats_jacobi_2d() {
        let pi = std::f64::consts::PI;
        let s = space2(4, 4, 8);
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];

        // Accuracy: each rung solves the smooth manufactured problem to the
        // same answer.
        let exact = |x: f64, y: f64| (pi * x / 2.0).sin() * (pi * y).sin();
        let smooth_rhs = s.weak_rhs(|x, y| pi * pi * 1.25 * exact(x, y));
        // Iteration ladder: a rough RHS exercising the whole spectrum (a
        // single smooth mode converges in a handful of Krylov directions
        // under any preconditioner, hiding the ladder).
        let rough_rhs = s.apply_mass(&pseudo(s.nglobal, 42));

        let mut iters = Vec::new();
        for kind in [
            PreconKind::Jacobi,
            PreconKind::LowEnergy,
            PreconKind::LowEnergyCoarse,
        ] {
            let mut eng = EllipticSolver::new(&s, 0.0, &bnd, kind, 1e-10, 20_000, 0, 0);
            let mut x = vec![0.0; s.nglobal];
            let st = eng.solve_into(&s, &smooth_rhs, &zeros, &mut x, usize::MAX);
            assert!(st.cg.converged, "{kind:?}: {:?}", st.cg);
            let err = s.l2_error(&x, exact);
            assert!(err < 1e-6, "{kind:?} L2 error {err}");
            let st = eng.solve_into(&s, &rough_rhs, &zeros, &mut x, usize::MAX);
            assert!(st.cg.converged, "{kind:?}: {:?}", st.cg);
            iters.push(st.cg.iterations);
        }
        assert!(
            iters[1] < iters[0],
            "low-energy ({}) not better than Jacobi ({})",
            iters[1],
            iters[0]
        );
        assert!(
            iters[2] < iters[1],
            "coarse ({}) not better than low-energy ({})",
            iters[2],
            iters[1]
        );
    }

    /// The coarse vertex solve makes iteration counts (nearly) independent
    /// of the element count — the two-level scalability claim.
    #[test]
    fn coarse_solve_gives_mesh_independence() {
        let run = |nx: usize, ny: usize, kind: PreconKind| -> usize {
            let s = space2(nx, ny, 4);
            let rhs = s.apply_mass(&pseudo(s.nglobal, 7));
            let bnd = s.boundary_dofs(|_| true);
            let zeros = vec![0.0; bnd.len()];
            let mut eng = EllipticSolver::new(&s, 0.0, &bnd, kind, 1e-10, 20_000, 0, 0);
            let mut x = vec![0.0; s.nglobal];
            let st = eng.solve_into(&s, &rhs, &zeros, &mut x, usize::MAX);
            assert!(st.cg.converged);
            st.cg.iterations
        };
        let small = run(4, 2, PreconKind::LowEnergyCoarse);
        let large = run(12, 6, PreconKind::LowEnergyCoarse);
        // 9× the elements: allow a modest drift, nothing like the ~sqrt
        // growth of the one-level methods.
        assert!(
            large <= small + small / 2 + 4,
            "coarse not mesh-independent: {small} -> {large}"
        );
        let le_large = run(12, 6, PreconKind::LowEnergy);
        assert!(
            large * 2 < le_large,
            "coarse ({large}) should far outpace one-level ({le_large}) on many elements"
        );
    }

    #[test]
    fn low_energy_converges_3d() {
        let pi = std::f64::consts::PI;
        let s = space3(4);
        let exact = move |x: f64, y: f64, z: f64| (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        let rhs = s.weak_rhs(|x, y, z| 3.0 * pi * pi * exact(x, y, z));
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];
        let mut jac = EllipticSolver::new(&s, 0.0, &bnd, PreconKind::Jacobi, 1e-10, 4000, 0, 0);
        let mut le = EllipticSolver::new(
            &s,
            0.0,
            &bnd,
            PreconKind::LowEnergyCoarse,
            1e-10,
            4000,
            0,
            0,
        );
        let mut xj = vec![0.0; s.nglobal];
        let mut xl = vec![0.0; s.nglobal];
        let rj = jac.solve_into(&s, &rhs, &zeros, &mut xj, usize::MAX);
        let rl = le.solve_into(&s, &rhs, &zeros, &mut xl, usize::MAX);
        assert!(rj.cg.converged && rl.cg.converged);
        assert!(
            rl.cg.iterations < rj.cg.iterations,
            "3D low-energy {} vs jacobi {}",
            rl.cg.iterations,
            rj.cg.iterations
        );
        for (a, b) in xj.iter().zip(&xl) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    /// Projection warm starts must never make things worse, and repeated
    /// runs must be bitwise identical.
    #[test]
    fn projection_warm_start_helps_and_is_deterministic() {
        let pi = std::f64::consts::PI;
        let s = space2(3, 3, 6);
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];
        let run = |depth: usize| -> (Vec<usize>, Vec<Vec<f64>>) {
            let mut eng = EllipticSolver::new(
                &s,
                0.0,
                &bnd,
                PreconKind::LowEnergyCoarse,
                1e-10,
                4000,
                1,
                depth,
            );
            let mut iters = Vec::new();
            let mut sols = Vec::new();
            for step in 0..6 {
                let t = step as f64 * 0.05;
                let rhs = s.weak_rhs(|x, y| {
                    pi * pi * 1.25 * ((pi * x / 2.0).sin() * (pi * y).sin()) * (1.0 + t)
                        + t * x.cos()
                });
                let mut x = vec![0.0; s.nglobal];
                let st = eng.solve_into(&s, &rhs, &zeros, &mut x, 0);
                assert!(st.cg.converged);
                iters.push(st.cg.iterations);
                sols.push(x);
            }
            (iters, sols)
        };
        let (cold, _) = run(0);
        let (warm, sols_a) = run(8);
        let (warm2, sols_b) = run(8);
        for (c, w) in cold.iter().zip(&warm) {
            assert!(
                w <= c,
                "projection increased iterations: warm {warm:?} cold {cold:?}"
            );
        }
        // After the first solve the basis must actually help.
        assert!(
            warm[1..].iter().sum::<usize>() < cold[1..].iter().sum::<usize>(),
            "warm {warm:?} vs cold {cold:?}"
        );
        assert_eq!(warm, warm2);
        for (a, b) in sols_a.iter().zip(&sols_b) {
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn proj_export_import_roundtrip_is_bitwise() {
        let pi = std::f64::consts::PI;
        let s = space2(2, 2, 5);
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];
        let mk = || {
            EllipticSolver::new(
                &s,
                0.0,
                &bnd,
                PreconKind::LowEnergyCoarse,
                1e-10,
                4000,
                1,
                4,
            )
        };
        let solve_seq =
            |eng: &mut EllipticSolver, steps: std::ops::Range<usize>| -> Vec<Vec<f64>> {
                steps
                    .map(|step| {
                        let t = step as f64 * 0.1;
                        let rhs = s.weak_rhs(|x, y| {
                            pi * pi * (1.0 + t) * ((pi * x / 2.0).sin() * (pi * y).sin())
                        });
                        let mut x = vec![0.0; s.nglobal];
                        eng.solve_into(&s, &rhs, &zeros, &mut x, 0);
                        x
                    })
                    .collect()
            };
        let mut full = mk();
        let _ = solve_seq(&mut full, 0..3);
        let state = full.proj_export();
        let ref_sols = solve_seq(&mut full, 3..6);
        let mut resumed = mk();
        let _ = solve_seq(&mut resumed, 0..3);
        resumed.proj_import(&state);
        let new_sols = solve_seq(&mut resumed, 3..6);
        for (a, b) in ref_sols.iter().zip(&new_sols) {
            assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    /// The engine with Jacobi and no projection must reproduce the
    /// pre-engine allocating solver bit for bit (`solve_helmholtz` now
    /// delegates to the engine; this pins the arithmetic it replaced).
    #[test]
    fn engine_matches_legacy_solver_bitwise() {
        let pi = std::f64::consts::PI;
        let s = space2(3, 2, 6);
        let lambda = 3.0;
        let exact = |x: f64, y: f64| (pi * x).cos() * y.exp();
        let rhs = s.weak_rhs(|x, y| (pi * pi - 1.0 + lambda) * exact(x, y));
        let bnd = s.boundary_dofs(|_| true);
        let vals: Vec<f64> = bnd
            .iter()
            .map(|&g| exact(s.coords[g][0], s.coords[g][1]))
            .collect();

        // The seed's solver, verbatim: per-iteration clones and all.
        let legacy = || -> (Vec<f64>, CgResult) {
            let mut is_bc = vec![false; s.nglobal];
            let mut x = vec![0.0f64; s.nglobal];
            for (&d, &v) in bnd.iter().zip(&vals) {
                is_bc[d] = true;
                x[d] = v;
            }
            let mut ax = vec![0.0f64; s.nglobal];
            s.apply_helmholtz(lambda, &x, &mut ax);
            let mut b = vec![0.0f64; s.nglobal];
            for i in 0..s.nglobal {
                b[i] = if is_bc[i] { 0.0 } else { rhs[i] - ax[i] };
            }
            let diag = s.helmholtz_diag(lambda);
            let mut du = vec![0.0f64; s.nglobal];
            let res = crate::cg::pcg(
                |p, out| {
                    let mut pm = p.to_vec();
                    for (i, m) in pm.iter_mut().enumerate() {
                        if is_bc[i] {
                            *m = 0.0;
                        }
                    }
                    s.apply_helmholtz(lambda, &pm, out);
                    for (i, o) in out.iter_mut().enumerate() {
                        if is_bc[i] {
                            *o = 0.0;
                        }
                    }
                },
                |r, z| {
                    for i in 0..r.len() {
                        z[i] = if is_bc[i] { 0.0 } else { r[i] / diag[i] };
                    }
                },
                &b,
                &mut du,
                1e-12,
                3000,
            );
            for i in 0..s.nglobal {
                if !is_bc[i] {
                    x[i] += du[i];
                }
            }
            (x, res)
        };
        let (u_legacy, r_legacy) = legacy();
        let mut eng = EllipticSolver::new(&s, lambda, &bnd, PreconKind::Jacobi, 1e-12, 3000, 0, 0);
        let mut u = vec![0.0; s.nglobal];
        let st = eng.solve_into(&s, &rhs, &vals, &mut u, usize::MAX);
        assert_eq!(st.cg.iterations, r_legacy.iterations);
        assert_eq!(st.cg.residual.to_bits(), r_legacy.residual.to_bits());
        assert!(u
            .iter()
            .zip(&u_legacy)
            .all(|(a, b)| a.to_bits() == b.to_bits()));

        // And the refactored public solver must agree with both.
        let (u_pub, r_pub) = s.solve_helmholtz(lambda, &rhs, &bnd, &vals, 1e-12, 3000);
        assert_eq!(r_pub.iterations, r_legacy.iterations);
        assert!(u_pub
            .iter()
            .zip(&u_legacy)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    /// Spectral p-convergence in 3D under the low-energy+coarse rung:
    /// for an analytic solution the L² error must drop by well over 4×
    /// per order bump (exponential, not algebraic, decay).
    #[test]
    fn spectral_convergence_3d_low_energy() {
        let pi = std::f64::consts::PI;
        let exact = move |x: f64, y: f64, z: f64| (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        let mut errs = Vec::new();
        for p in [2usize, 3, 4, 5] {
            let s = space3(p);
            let rhs = s.weak_rhs(|x, y, z| 3.0 * pi * pi * exact(x, y, z));
            let bnd = s.boundary_dofs(|_| true);
            let zeros = vec![0.0; bnd.len()];
            let mut eng = EllipticSolver::new(
                &s,
                0.0,
                &bnd,
                PreconKind::LowEnergyCoarse,
                1e-12,
                4000,
                0,
                0,
            );
            let mut x = vec![0.0; s.nglobal];
            let st = eng.solve_into(&s, &rhs, &zeros, &mut x, usize::MAX);
            assert!(
                st.cg.converged && !st.cg.breakdown,
                "P={p} did not converge"
            );
            errs.push(s.l2_error(&x, exact));
        }
        for w in errs.windows(2) {
            assert!(w[1] < w[0] * 0.25, "not spectral: {errs:?}");
        }
        assert!(
            errs[errs.len() - 1] < 1e-4,
            "final error too large: {errs:?}"
        );
    }

    /// A warm-started solve sequence is bitwise identical whether it runs
    /// on the ambient rayon pool or a 1-thread pool: the fixed-chunk
    /// reductions keep the engine's arithmetic independent of pool size.
    #[test]
    fn projection_sequence_bitwise_across_pools() {
        let run = || {
            let s = space2(3, 2, 5);
            let bnd = s.boundary_dofs(|_| true);
            let vals = vec![0.0; bnd.len()];
            let mut eng = EllipticSolver::new(
                &s,
                0.7,
                &bnd,
                PreconKind::LowEnergyCoarse,
                1e-10,
                2000,
                1,
                4,
            );
            let mut x = vec![0.0; s.nglobal];
            let mut bits = Vec::new();
            let mut iters = Vec::new();
            for t in 0..6 {
                let rhs = s.apply_mass(&pseudo(s.nglobal, 100 + t));
                let st = eng.solve_into(&s, &rhs, &vals, &mut x, 0);
                iters.push(st.cg.iterations);
                bits.extend(x.iter().map(|v| v.to_bits()));
            }
            (bits, iters)
        };
        let ambient = run();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool");
        let single = pool.install(run);
        assert_eq!(ambient.1, single.1, "iteration counts differ across pools");
        assert_eq!(ambient.0, single.0, "solutions differ across pools");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Every preconditioner rung applies a symmetric positive
            /// operator on the free subspace — the property PCG's
            /// correctness rests on — for arbitrary meshes, orders,
            /// shifts and probe vectors.
            #[test]
            fn preconditioner_application_symmetric_positive(
                seed in 0u64..1_000_000,
                p in 2usize..6,
                nx in 1usize..4,
                ny in 1usize..4,
                lambda in 0.0f64..50.0,
                kind_idx in 0usize..4,
            ) {
                let kind = [
                    PreconKind::None,
                    PreconKind::Jacobi,
                    PreconKind::LowEnergy,
                    PreconKind::LowEnergyCoarse,
                ][kind_idx];
                let s = space2(nx, ny, p);
                let bnd = s.boundary_dofs(|_| true);
                let mask = DirichletMask::new(s.nglobal, &bnd);
                let mut eng = EllipticSolver::new(&s, lambda, &bnd, kind, 1e-10, 100, 0, 0);
                let mut r1 = pseudo(s.nglobal, seed);
                let mut r2 = pseudo(s.nglobal, seed ^ 0x5851F42D4C957F2D);
                mask.zero_masked(&mut r1);
                mask.zero_masked(&mut r2);
                let mut z1 = vec![0.0; s.nglobal];
                let mut z2 = vec![0.0; s.nglobal];
                eng.precon.apply(&r1, &mut z1);
                eng.precon.apply(&r2, &mut z2);
                let a = par_dot(&r2, &z1);
                let b = par_dot(&r1, &z2);
                prop_assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                    "{:?} not symmetric: {} vs {}", kind, a, b
                );
                let pos = par_dot(&r1, &z1);
                prop_assert!(pos > 0.0, "{:?} not positive: {}", kind, pos);
            }

            /// Cache-hit preconditioners are bitwise identical to
            /// cold-built ones across random meshes, orders, shifts and
            /// Dirichlet masks: one solver built with no ambient cache,
            /// two built inside the same cache scope (the second is a
            /// hit), all applied to the same masked probe vector.
            #[test]
            fn cached_precon_bitwise_equals_cold(
                seed in 0u64..1_000_000,
                p in 2usize..6,
                nx in 1usize..4,
                ny in 1usize..4,
                lambda in 0.0f64..50.0,
                coarse in proptest::prelude::any::<bool>(),
                mask_idx in 0usize..3,
            ) {
                use nkg_artifact::{with_cache, ArtifactCache, CacheMode};
                use nkg_mesh::quad::BoundaryTag;
                let kind = if coarse {
                    PreconKind::LowEnergyCoarse
                } else {
                    PreconKind::LowEnergy
                };
                let s = space2(nx, ny, p);
                let bnd = match mask_idx {
                    0 => s.boundary_dofs(|_| true),
                    1 => s.boundary_dofs(|t| matches!(t, BoundaryTag::Wall)),
                    _ => s.boundary_dofs(|t| !matches!(t, BoundaryTag::Wall)),
                };
                let mask = DirichletMask::new(s.nglobal, &bnd);
                let mut r = pseudo(s.nglobal, seed);
                mask.zero_masked(&mut r);

                let build = || EllipticSolver::new(&s, lambda, &bnd, kind, 1e-10, 100, 0, 0);
                let mut cold = build();
                let cache = std::sync::Arc::new(ArtifactCache::new(CacheMode::Process));
                let (mut warm1, mut warm2) = with_cache(&cache, || (build(), build()));

                let mut z_cold = vec![0.0; s.nglobal];
                let mut z1 = vec![0.0; s.nglobal];
                let mut z2 = vec![0.0; s.nglobal];
                cold.precon.apply(&r, &mut z_cold);
                warm1.precon.apply(&r, &mut z1);
                warm2.precon.apply(&r, &mut z2);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&z_cold), bits(&z1), "miss-path diverged from cold");
                prop_assert_eq!(bits(&z_cold), bits(&z2), "hit-path diverged from cold");
                prop_assert!(cache.totals().hits > 0, "second build was not a cache hit");
            }
        }
    }

    /// The on-disk codec for low-energy factors must round-trip every
    /// bit: a decoded factor set applies identically to the original.
    #[test]
    fn low_energy_factors_codec_roundtrip_bitwise() {
        let s = space2(3, 2, 5);
        let bnd = s.boundary_dofs(|_| true);
        let mask = DirichletMask::new(s.nglobal, &bnd);
        for with_coarse in [false, true] {
            let factors = LowEnergyFactors::build(&s, 2.7, &mask, with_coarse);
            let bytes = factors.encode().expect("factors encode");
            let back = LowEnergyFactors::decode(&bytes).expect("factors decode");
            let mut a = LowEnergyPrecon::from_factors(Arc::new(factors));
            let mut b = LowEnergyPrecon::from_factors(Arc::new(back));
            let mut r = pseudo(s.nglobal, 7);
            mask.zero_masked(&mut r);
            let mut za = vec![0.0; s.nglobal];
            let mut zb = vec![0.0; s.nglobal];
            a.apply(&r, &mut za);
            b.apply(&r, &mut zb);
            for (x, y) in za.iter().zip(&zb) {
                assert_eq!(x.to_bits(), y.to_bits(), "decoded factors diverged");
            }
        }
    }
}
