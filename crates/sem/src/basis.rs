//! Gauss–Lobatto–Legendre (GLL) bases: quadrature points and weights,
//! Lagrange differentiation matrices and interpolation operators.
//!
//! These are the building blocks of every spectral/hp element operator in
//! NεκTαr: fields are stored as values at the `(P+1)` GLL points per
//! direction, derivatives are dense matrix applications, and the GLL
//! quadrature renders the mass matrix diagonal.

/// Legendre polynomial `L_n(x)` and its derivative by the three-term
/// recurrence. Returns `(L_n, L_n')`.
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let (mut p0, mut p1) = (1.0f64, x);
    for k in 1..n {
        let kf = k as f64;
        let p2 = ((2.0 * kf + 1.0) * x * p1 - kf * p0) / (kf + 1.0);
        p0 = p1;
        p1 = p2;
    }
    // L_n' from the identity (1-x²) L_n' = n (L_{n-1} - x L_n), with the
    // endpoint limit L_n'(±1) = (±1)^{n-1} n(n+1)/2.
    let dp = if (x * x - 1.0).abs() < 1e-14 {
        let nf = n as f64;
        let sign = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 - 1)
        };
        sign * nf * (nf + 1.0) / 2.0
    } else {
        n as f64 * (p0 - x * p1) / (1.0 - x * x)
    };
    (p1, dp)
}

/// The `p+1` GLL points on `[-1, 1]` (ascending) and their quadrature
/// weights. Exact for polynomials of degree `≤ 2p-1`.
pub fn gll(p: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(p >= 1, "GLL needs order >= 1");
    let n = p + 1;
    let mut x = vec![0.0f64; n];
    // Chebyshev-Gauss-Lobatto initial guesses, then Newton on (1-x²) L_p'(x).
    for (i, xi) in x.iter_mut().enumerate() {
        *xi = -(std::f64::consts::PI * i as f64 / p as f64).cos();
    }
    for (i, xi) in x.iter_mut().enumerate() {
        if i == 0 {
            *xi = -1.0;
            continue;
        }
        if i == p {
            *xi = 1.0;
            continue;
        }
        let mut xk = *xi;
        for _ in 0..100 {
            // f = L_p'(x); f' = (2x L_p' - p(p+1) L_p) / (1 - x²)
            let (lp, dlp) = legendre(p, xk);
            let f = dlp;
            let fp = (2.0 * xk * dlp - (p * (p + 1)) as f64 * lp) / (1.0 - xk * xk);
            let dx = f / fp;
            xk -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        *xi = xk;
    }
    let mut w = vec![0.0f64; n];
    for i in 0..n {
        let (lp, _) = legendre(p, x[i]);
        w[i] = 2.0 / ((p * (p + 1)) as f64 * lp * lp);
    }
    (x, w)
}

/// Dense `(p+1)×(p+1)` Lagrange differentiation matrix on the GLL points:
/// `(D u)_i = u'(x_i)` for `u` the interpolating polynomial. Row-major.
pub fn diff_matrix(p: usize, x: &[f64]) -> Vec<f64> {
    let n = p + 1;
    assert_eq!(x.len(), n);
    let mut d = vec![0.0f64; n * n];
    let l: Vec<f64> = x.iter().map(|&xi| legendre(p, xi).0).collect();
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] = if i == j {
                if i == 0 {
                    -((p * (p + 1)) as f64) / 4.0
                } else if i == p {
                    (p * (p + 1)) as f64 / 4.0
                } else {
                    0.0
                }
            } else {
                l[i] / (l[j] * (x[i] - x[j]))
            };
        }
    }
    d
}

/// Values of the `p+1` GLL Lagrange cardinal polynomials at point `xi`
/// (barycentric evaluation): `out[j] = ℓ_j(xi)`.
pub fn lagrange_at(x: &[f64], xi: f64) -> Vec<f64> {
    let n = x.len();
    // Exact hit on a node?
    for (j, &xj) in x.iter().enumerate() {
        if (xi - xj).abs() < 1e-14 {
            let mut out = vec![0.0; n];
            out[j] = 1.0;
            return out;
        }
    }
    // Barycentric weights.
    let mut wts = vec![1.0f64; n];
    for j in 0..n {
        for k in 0..n {
            if k != j {
                wts[j] /= x[j] - x[k];
            }
        }
    }
    let mut denom = 0.0;
    let mut terms = vec![0.0f64; n];
    for j in 0..n {
        terms[j] = wts[j] / (xi - x[j]);
        denom += terms[j];
    }
    terms.iter().map(|&t| t / denom).collect()
}

/// A complete 1D GLL basis bundle of order `p`.
#[derive(Debug, Clone)]
pub struct GllBasis {
    /// Polynomial order.
    pub p: usize,
    /// GLL points, ascending in `[-1, 1]`.
    pub points: Vec<f64>,
    /// Quadrature weights.
    pub weights: Vec<f64>,
    /// Differentiation matrix, row-major `(p+1)²`.
    pub d: Vec<f64>,
}

impl GllBasis {
    /// Build the basis of order `p ≥ 1`.
    ///
    /// Routed through the ambient `nkg-artifact` cache (kind `"gll"`): the
    /// Newton solve for the points runs once per order per cache scope,
    /// and a hit clones the table — `Vec<f64>` clones preserve bits, so
    /// the result is bitwise identical to a cold build. With no ambient
    /// cache installed this *is* the cold build.
    pub fn new(p: usize) -> Self {
        let mut h = nkg_artifact::KeyHasher::new("gll");
        h.usize(p);
        (*nkg_artifact::cached("gll", h.finish(), || Self::build(p))).clone()
    }

    fn build(p: usize) -> Self {
        let (points, weights) = gll(p);
        let d = diff_matrix(p, &points);
        Self {
            p,
            points,
            weights,
            d,
        }
    }

    /// Number of nodes `p + 1`.
    pub fn n(&self) -> usize {
        self.p + 1
    }

    /// Differentiate nodal values: `out_i = Σ_j D_ij u_j`.
    pub fn diff(&self, u: &[f64], out: &mut [f64]) {
        let n = self.n();
        debug_assert_eq!(u.len(), n);
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..n {
                s += self.d[i * n + j] * u[j];
            }
            out[i] = s;
        }
    }

    /// Interpolate nodal values to an arbitrary point `xi ∈ [-1,1]`.
    pub fn eval(&self, u: &[f64], xi: f64) -> f64 {
        lagrange_at(&self.points, xi)
            .iter()
            .zip(u)
            .map(|(l, v)| l * v)
            .sum()
    }
}

/// Memory-tier artifact only: the tables are a few hundred bytes, so the
/// win is skipping the Newton solve within a process, not disk reuse.
impl nkg_artifact::Artifact for GllBasis {
    fn approx_bytes(&self) -> usize {
        (self.points.len() + self.weights.len() + self.d.len()) * 8 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legendre_low_orders() {
        for &x in &[-0.7, 0.0, 0.3, 1.0] {
            assert!((legendre(0, x).0 - 1.0).abs() < 1e-15);
            assert!((legendre(1, x).0 - x).abs() < 1e-15);
            assert!((legendre(2, x).0 - (1.5 * x * x - 0.5)).abs() < 1e-14);
            assert!((legendre(3, x).0 - (2.5 * x * x * x - 1.5 * x)).abs() < 1e-14);
        }
    }

    #[test]
    fn gll_points_symmetric_with_endpoints() {
        for p in 1..=12 {
            let (x, w) = gll(p);
            assert_eq!(x.len(), p + 1);
            assert_eq!(x[0], -1.0);
            assert_eq!(x[p], 1.0);
            for i in 0..=p {
                assert!((x[i] + x[p - i]).abs() < 1e-13, "p={p}");
                assert!((w[i] - w[p - i]).abs() < 1e-13, "p={p}");
            }
            // Ascending.
            for k in 1..=p {
                assert!(x[k] > x[k - 1]);
            }
        }
    }

    #[test]
    fn quadrature_exact_to_2p_minus_1() {
        for p in 2..=8 {
            let (x, w) = gll(p);
            for deg in 0..=(2 * p - 1) {
                let integral: f64 = x
                    .iter()
                    .zip(&w)
                    .map(|(&xi, &wi)| wi * xi.powi(deg as i32))
                    .sum();
                let exact = if deg % 2 == 1 {
                    0.0
                } else {
                    2.0 / (deg as f64 + 1.0)
                };
                assert!(
                    (integral - exact).abs() < 1e-12,
                    "p={p} deg={deg}: {integral} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn weights_sum_to_two() {
        for p in 1..=10 {
            let (_, w) = gll(p);
            assert!((w.iter().sum::<f64>() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diff_matrix_exact_on_polynomials() {
        for p in 2..=9 {
            let b = GllBasis::new(p);
            for deg in 0..=p {
                let u: Vec<f64> = b.points.iter().map(|&x| x.powi(deg as i32)).collect();
                let mut du = vec![0.0; p + 1];
                b.diff(&u, &mut du);
                for (i, &x) in b.points.iter().enumerate() {
                    let exact = if deg == 0 {
                        0.0
                    } else {
                        deg as f64 * x.powi(deg as i32 - 1)
                    };
                    assert!(
                        (du[i] - exact).abs() < 1e-9,
                        "p={p} deg={deg} i={i}: {} vs {exact}",
                        du[i]
                    );
                }
            }
        }
    }

    #[test]
    fn diff_rows_sum_to_zero() {
        // Derivative of the constant function vanishes.
        let b = GllBasis::new(7);
        let n = b.n();
        for i in 0..n {
            let row: f64 = (0..n).map(|j| b.d[i * n + j]).sum();
            assert!(row.abs() < 1e-11);
        }
    }

    #[test]
    fn interpolation_reproduces_polynomials() {
        let b = GllBasis::new(6);
        let u: Vec<f64> = b
            .points
            .iter()
            .map(|&x| 3.0 * x.powi(5) - x + 0.5)
            .collect();
        for &xi in &[-0.913f64, -0.4, 0.0, 0.5721, 0.99] {
            let exact = 3.0 * xi.powi(5) - xi + 0.5;
            assert!((b.eval(&u, xi) - exact).abs() < 1e-11);
        }
        // Exactly at a node.
        assert!((b.eval(&u, b.points[2]) - u[2]).abs() < 1e-14);
    }

    #[test]
    fn lagrange_cardinality() {
        let (x, _) = gll(5);
        for (j, &xj) in x.iter().enumerate() {
            let l = lagrange_at(&x, xj);
            for (k, &lk) in l.iter().enumerate() {
                let expect = if k == j { 1.0 } else { 0.0 };
                assert!((lk - expect).abs() < 1e-12);
            }
        }
        // Partition of unity off-node.
        let l = lagrange_at(&x, 0.1234);
        assert!((l.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
