//! Continuous-Galerkin spectral-element discretization on quadrilateral
//! meshes: global numbering, geometric factors, matrix-free elliptic
//! operators and boundary handling.

use crate::basis::{lagrange_at, GllBasis};
use crate::cg::CgResult;
use crate::precon::{ApplyScratch, EllipticSolver, EllipticSpace, NodeRole, PreconKind};
use nkg_artifact::{ArtifactKey, KeyHasher};
use nkg_mesh::quad::{BoundaryTag, QuadMesh};
use std::collections::HashMap;

/// Geometric factors of one element, evaluated at the `(P+1)²` GLL nodes
/// (local index `k = j·(P+1) + i`, `i` along ξ).
#[derive(Debug, Clone)]
pub struct ElemGeom {
    /// Stiffness metrics including quadrature weights and |J|:
    /// `g11 = w |J| (ξ_x² + ξ_y²)` etc.
    pub g11: Vec<f64>,
    /// Cross metric `w |J| (ξ_x η_x + ξ_y η_y)`.
    pub g12: Vec<f64>,
    /// `w |J| (η_x² + η_y²)`.
    pub g22: Vec<f64>,
    /// Diagonal mass `w_i w_j |J|`.
    pub mass: Vec<f64>,
    /// `∂ξ/∂x` at each node (for collocation gradients).
    pub rx: Vec<f64>,
    /// `∂ξ/∂y`.
    pub ry: Vec<f64>,
    /// `∂η/∂x`.
    pub sx: Vec<f64>,
    /// `∂η/∂y`.
    pub sy: Vec<f64>,
    /// Physical x of each node.
    pub x: Vec<f64>,
    /// Physical y of each node.
    pub y: Vec<f64>,
}

/// A scalar CG-SEM function space of order `p` on a quad mesh.
pub struct Space2d {
    /// The mesh.
    pub mesh: QuadMesh,
    /// 1D GLL basis (tensorized).
    pub basis: GllBasis,
    /// Per-element local→global DoF map.
    pub gmap: Vec<Vec<usize>>,
    /// Number of global DoFs.
    pub nglobal: usize,
    /// Per-element geometry.
    pub geom: Vec<ElemGeom>,
    /// Node multiplicity (how many elements share each global DoF).
    pub mult: Vec<f64>,
    /// Global coordinates of each DoF.
    pub coords: Vec<[f64; 2]>,
    /// Content fingerprint of (mesh geometry, connectivity, order,
    /// periodicity) — the `nkg-artifact` key component under which setup
    /// factorizations over this discretization are shared.
    fp: ArtifactKey,
}

#[derive(Hash, PartialEq, Eq, Clone, Copy)]
enum NodeKey {
    Vertex(usize),
    Edge(usize, usize, usize), // (min vid, max vid, position from min)
    Interior(usize, usize),    // (elem, local)
}

impl Space2d {
    /// Build the space. `periodic_x`: identify DoFs on the `x = min` and
    /// `x = max` lines (the mesh must have matching vertex y-coordinates
    /// there), enabling streamwise-periodic channel flows.
    pub fn new(mesh: QuadMesh, p: usize, periodic_x: bool) -> Self {
        let basis = GllBasis::new(p);
        let n = p + 1;
        let nloc = n * n;
        // Optional periodic vertex aliasing.
        let alias = build_alias(&mesh, periodic_x);

        let mut key_map: HashMap<NodeKey, usize> = HashMap::new();
        let mut gmap = Vec::with_capacity(mesh.num_elems());
        let mut nglobal = 0usize;
        let mut intern = |key: NodeKey, nglobal: &mut usize| -> usize {
            *key_map.entry(key).or_insert_with(|| {
                let id = *nglobal;
                *nglobal += 1;
                id
            })
        };
        for (e, verts) in mesh.elems.iter().enumerate() {
            let v: Vec<usize> = verts.iter().map(|&vv| alias[vv]).collect();
            let mut map = vec![usize::MAX; nloc];
            for j in 0..n {
                for i in 0..n {
                    let k = j * n + i;
                    let key = match (i, j) {
                        (0, 0) => NodeKey::Vertex(v[0]),
                        (x, 0) if x == p => NodeKey::Vertex(v[1]),
                        (x, y) if x == p && y == p => NodeKey::Vertex(v[2]),
                        (0, y) if y == p => NodeKey::Vertex(v[3]),
                        (x, 0) => edge_key(v[0], v[1], x, p),
                        (x, y) if x == p => edge_key(v[1], v[2], y, p),
                        (x, y) if y == p => edge_key(v[3], v[2], x, p),
                        (0, y) => edge_key(v[0], v[3], y, p),
                        _ => NodeKey::Interior(e, k),
                    };
                    map[k] = intern(key, &mut nglobal);
                }
            }
            gmap.push(map);
        }

        // Geometry per element (bilinear isoparametric mapping).
        let mut geom = Vec::with_capacity(mesh.num_elems());
        for verts in &mesh.elems {
            geom.push(elem_geometry(&mesh, *verts, &basis));
        }

        // Multiplicity and representative coordinates.
        let mut mult = vec![0.0f64; nglobal];
        let mut coords = vec![[0.0f64; 2]; nglobal];
        for (e, map) in gmap.iter().enumerate() {
            for (k, &g) in map.iter().enumerate() {
                mult[g] += 1.0;
                coords[g] = [geom[e].x[k], geom[e].y[k]];
            }
        }
        // Content fingerprint: exact vertex-coordinate bits, element
        // connectivity, order and the (periodicity-aware) assembled
        // numbering. Everything the elliptic setup products depend on is a
        // pure function of these inputs, so equal fingerprints mean
        // bitwise-interchangeable factorizations. Hashing is O(DoF) — noise
        // next to the geometry build above.
        let fp = {
            let mut h = KeyHasher::new("space2d");
            h.usize(p);
            h.bool(periodic_x);
            h.usize(nglobal);
            h.usize(mesh.num_elems());
            for verts in &mesh.elems {
                for &v in verts {
                    h.usize(v);
                }
            }
            for c in &mesh.coords {
                h.f64(c[0]);
                h.f64(c[1]);
            }
            for map in &gmap {
                h.usizes(map);
            }
            h.finish()
        };
        Self {
            mesh,
            basis,
            gmap,
            nglobal,
            geom,
            mult,
            coords,
            fp,
        }
    }

    /// Polynomial order.
    pub fn order(&self) -> usize {
        self.basis.p
    }

    /// Nodes per element.
    pub fn nloc(&self) -> usize {
        self.basis.n() * self.basis.n()
    }

    /// Interpolate a function onto the global DoFs (nodal projection).
    pub fn project(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        self.coords.iter().map(|&[x, y]| f(x, y)).collect()
    }

    /// Weak right-hand side `(v, f)` for all test functions: element-wise
    /// `mass .* f(nodes)`, assembled.
    pub fn weak_rhs(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut out = vec![0.0; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                out[gid] += g.mass[k] * f(g.x[k], g.y[k]);
            }
        }
        out
    }

    /// Multiply a global (nodal) vector by the assembled diagonal mass
    /// matrix: `out = M u`.
    pub fn apply_mass(&self, u: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                out[gid] += g.mass[k] * u[gid];
            }
        }
        out
    }

    /// Domain integral of a nodal field.
    pub fn integrate(&self, u: &[f64]) -> f64 {
        let mut total = 0.0;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                total += g.mass[k] * u[gid];
            }
        }
        total
    }

    /// Total domain area.
    pub fn area(&self) -> f64 {
        self.integrate(&vec![1.0; self.nglobal])
    }

    /// L2 norm of a nodal field.
    pub fn l2_norm(&self, u: &[f64]) -> f64 {
        let mut total = 0.0;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                total += g.mass[k] * u[gid] * u[gid];
            }
        }
        total.sqrt()
    }

    /// L2 norm of the difference between a nodal field and a function.
    pub fn l2_error(&self, u: &[f64], exact: impl Fn(f64, f64) -> f64) -> f64 {
        let mut total = 0.0;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                let d = u[gid] - exact(g.x[k], g.y[k]);
                total += g.mass[k] * d * d;
            }
        }
        total.sqrt()
    }

    /// One element's Helmholtz kernel on a gathered local vector:
    /// `ol = DᵀGD ul + λ M ul`. Scratch is caller-provided so every path
    /// (operator application, matrix probing) shares one set of buffers and
    /// the arithmetic is identical everywhere.
    fn helmholtz_elem_local(
        &self,
        e: usize,
        lambda: f64,
        ul: &[f64],
        ur: &mut [f64],
        us: &mut [f64],
        f1: &mut [f64],
        f2: &mut [f64],
        ol: &mut [f64],
    ) {
        let n = self.basis.n();
        let nloc = self.nloc();
        let d = &self.basis.d;
        let g = &self.geom[e];
        // ur = ∂u/∂ξ ; us = ∂u/∂η
        for j in 0..n {
            for i in 0..n {
                let mut sr = 0.0;
                let mut ss = 0.0;
                for m in 0..n {
                    sr += d[i * n + m] * ul[j * n + m];
                    ss += d[j * n + m] * ul[m * n + i];
                }
                ur[j * n + i] = sr;
                us[j * n + i] = ss;
            }
        }
        for k in 0..nloc {
            f1[k] = g.g11[k] * ur[k] + g.g12[k] * us[k];
            f2[k] = g.g12[k] * ur[k] + g.g22[k] * us[k];
        }
        // ol = Dξᵀ f1 + Dηᵀ f2 + λ M u
        for j in 0..n {
            for i in 0..n {
                let mut s = 0.0;
                for m in 0..n {
                    s += d[m * n + i] * f1[j * n + m];
                    s += d[m * n + j] * f2[m * n + i];
                }
                let k = j * n + i;
                ol[k] = s + lambda * g.mass[k] * ul[k];
            }
        }
    }

    /// Apply the global Helmholtz operator `A u = ∫∇v·∇u + λ ∫v u` to a
    /// global vector (matrix-free, gather → element tensor kernels →
    /// scatter-add). Allocates scratch; the hot loops use
    /// [`Space2d::apply_helmholtz_ws`].
    pub fn apply_helmholtz(&self, lambda: f64, u: &[f64], out: &mut [f64]) {
        self.apply_helmholtz_ws(lambda, u, out, &mut ApplyScratch::new());
    }

    /// [`Space2d::apply_helmholtz`] with caller-provided scratch: zero
    /// heap allocation per application.
    pub fn apply_helmholtz_ws(
        &self,
        lambda: f64,
        u: &[f64],
        out: &mut [f64],
        ws: &mut ApplyScratch,
    ) {
        out.iter_mut().for_each(|o| *o = 0.0);
        let nloc = self.nloc();
        ws.ensure(nloc);
        let ApplyScratch { ul, du, fl, ol, .. } = ws;
        let [ur, us, _] = du;
        let [f1, f2, _] = fl;
        for (e, map) in self.gmap.iter().enumerate() {
            for (k, &gid) in map.iter().enumerate() {
                ul[k] = u[gid];
            }
            self.helmholtz_elem_local(
                e,
                lambda,
                &ul[..nloc],
                &mut ur[..nloc],
                &mut us[..nloc],
                &mut f1[..nloc],
                &mut f2[..nloc],
                &mut ol[..nloc],
            );
            for (k, &gid) in map.iter().enumerate() {
                out[gid] += ol[k];
            }
        }
    }

    /// Assembled diagonal of the Helmholtz operator (for Jacobi
    /// preconditioning).
    pub fn helmholtz_diagonal(&self, lambda: f64) -> Vec<f64> {
        let n = self.basis.n();
        let d = &self.basis.d;
        let mut diag = vec![0.0f64; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for j in 0..n {
                for i in 0..n {
                    let k = j * n + i;
                    let mut v = 0.0;
                    for m in 0..n {
                        v += g.g11[j * n + m] * d[m * n + i] * d[m * n + i];
                        v += g.g22[m * n + i] * d[m * n + j] * d[m * n + j];
                    }
                    v += 2.0 * g.g12[k] * d[i * n + i] * d[j * n + j];
                    v += lambda * g.mass[k];
                    diag[map[k]] += v;
                }
            }
        }
        diag
    }

    /// Collocation gradient of a global field: per-element tensor
    /// derivatives mapped to physical space, averaged at shared DoFs.
    /// Returns `(du/dx, du/dy)` as global vectors.
    pub fn gradient(&self, u: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut gx = vec![0.0f64; self.nglobal];
        let mut gy = vec![0.0f64; self.nglobal];
        self.gradient_ws(u, &mut gx, &mut gy, &mut ApplyScratch::new());
        (gx, gy)
    }

    /// [`Space2d::gradient`] into caller-provided outputs and scratch: no
    /// per-call allocation.
    pub fn gradient_ws(&self, u: &[f64], gx: &mut [f64], gy: &mut [f64], ws: &mut ApplyScratch) {
        let n = self.basis.n();
        let nloc = self.nloc();
        let d = &self.basis.d;
        gx.iter_mut().for_each(|v| *v = 0.0);
        gy.iter_mut().for_each(|v| *v = 0.0);
        ws.ensure(nloc);
        let ul = &mut ws.ul;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gid) in map.iter().enumerate() {
                ul[k] = u[gid];
            }
            for j in 0..n {
                for i in 0..n {
                    let mut sr = 0.0;
                    let mut ss = 0.0;
                    for m in 0..n {
                        sr += d[i * n + m] * ul[j * n + m];
                        ss += d[j * n + m] * ul[m * n + i];
                    }
                    let k = j * n + i;
                    gx[map[k]] += g.rx[k] * sr + g.sx[k] * ss;
                    gy[map[k]] += g.ry[k] * sr + g.sy[k] * ss;
                }
            }
        }
        for gid in 0..self.nglobal {
            gx[gid] /= self.mult[gid];
            gy[gid] /= self.mult[gid];
        }
    }

    /// Global DoF ids lying on boundary edges whose tag satisfies `pred`.
    pub fn boundary_dofs(&self, pred: impl Fn(BoundaryTag) -> bool) -> Vec<usize> {
        let n = self.basis.n();
        let p = self.basis.p;
        let mut out = std::collections::BTreeSet::new();
        for &(e, edge, tag) in &self.mesh.boundary {
            if !pred(tag) {
                continue;
            }
            for t in 0..n {
                let (i, j) = match edge {
                    0 => (t, 0),
                    1 => (p, t),
                    2 => (t, p),
                    3 => (0, t),
                    _ => unreachable!(),
                };
                out.insert(self.gmap[e][j * n + i]);
            }
        }
        out.into_iter().collect()
    }

    /// Solve the Helmholtz problem `-∇²u + λu = f` (weak form) with
    /// Dirichlet data on the DoFs listed in `dirichlet` (values from
    /// `bc_value`), Jacobi-preconditioned CG.
    ///
    /// `rhs_weak` must already be in weak form (e.g. from
    /// [`Space2d::weak_rhs`]). Returns the solution and CG diagnostics.
    pub fn solve_helmholtz(
        &self,
        lambda: f64,
        rhs_weak: &[f64],
        dirichlet: &[usize],
        bc_value: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> (Vec<f64>, CgResult) {
        // One-shot engine: identical arithmetic to the historical inline
        // solver (see `precon::tests::engine_matches_legacy_solver_bitwise`)
        // without the per-iteration `p.to_vec()` clone.
        let mut eng = EllipticSolver::new(
            self,
            lambda,
            dirichlet,
            PreconKind::Jacobi,
            tol,
            max_iter,
            0,
            0,
        );
        let mut x = vec![0.0f64; self.nglobal];
        let stats = eng.solve_into(self, rhs_weak, bc_value, &mut x, usize::MAX);
        (x, stats.cg)
    }

    /// Locate the element containing a physical point: an O(elements)
    /// linear scan with Newton inversion of each bilinear map, returning
    /// `(element, ξ, η)` for the *first* containing element (the tie-break
    /// every interpolation path shares). `None` if the point lies outside
    /// the mesh (with tolerance `1e-8`).
    pub fn locate(&self, x: f64, y: f64) -> Option<(usize, f64, f64)> {
        for (e, verts) in self.mesh.elems.iter().enumerate() {
            let vs = verts.map(|v| self.mesh.coords[v]);
            if let Some((xi, eta)) = invert_bilinear(&vs, x, y) {
                return Some((e, xi, eta));
            }
        }
        None
    }

    /// Append the `(P+1)²` tensor-product Lagrange weights at reference
    /// point `(ξ, η)` to `out`, in local-node order `k = j·(P+1) + i`:
    /// `w[k] = lj[j] · li[i]`. A field evaluation is then the dot product
    /// of this row with the element's nodal values — bitwise the inner
    /// loop of [`Space2d::eval_at`].
    pub fn interp_weights_into(&self, xi: f64, eta: f64, out: &mut Vec<f64>) {
        let n = self.basis.n();
        let li = lagrange_at(&self.basis.points, xi);
        let lj = lagrange_at(&self.basis.points, eta);
        out.reserve(n * n);
        for j in 0..n {
            for i in 0..n {
                out.push(lj[j] * li[i]);
            }
        }
    }

    /// Evaluate a global field at an arbitrary physical point by locating
    /// the containing element (Newton inversion of the bilinear map) and
    /// interpolating with the tensor Lagrange basis. Returns `None` if the
    /// point lies outside the mesh (with tolerance `1e-8`).
    ///
    /// For static point sets evaluated repeatedly, precompute an
    /// [`crate::interp::InterpTable`] instead — bitwise the same result
    /// without the per-call element scan and weight allocation.
    pub fn eval_at(&self, u: &[f64], x: f64, y: f64) -> Option<f64> {
        let (e, xi, eta) = self.locate(x, y)?;
        let mut w = Vec::new();
        self.interp_weights_into(xi, eta, &mut w);
        let mut val = 0.0;
        for (wk, &g) in w.iter().zip(&self.gmap[e]) {
            val += wk * u[g];
        }
        Some(val)
    }
}

impl EllipticSpace for Space2d {
    fn nglobal(&self) -> usize {
        self.nglobal
    }

    fn num_elems(&self) -> usize {
        self.gmap.len()
    }

    fn nloc(&self) -> usize {
        self.nloc()
    }

    fn elem_gids(&self, e: usize) -> &[usize] {
        &self.gmap[e]
    }

    fn apply_helmholtz_ws(&self, lambda: f64, u: &[f64], out: &mut [f64], ws: &mut ApplyScratch) {
        Space2d::apply_helmholtz_ws(self, lambda, u, out, ws);
    }

    fn helmholtz_diag(&self, lambda: f64) -> Vec<f64> {
        self.helmholtz_diagonal(lambda)
    }

    fn elem_matrix(&self, e: usize, lambda: f64, out: &mut [f64], ws: &mut ApplyScratch) {
        let nloc = self.nloc();
        assert!(out.len() >= nloc * nloc);
        ws.ensure(nloc);
        let ApplyScratch { ul, du, fl, ol, .. } = ws;
        let [ur, us, _] = du;
        let [f1, f2, _] = fl;
        for l in 0..nloc {
            ul[..nloc].iter_mut().for_each(|v| *v = 0.0);
            ul[l] = 1.0;
            self.helmholtz_elem_local(
                e,
                lambda,
                &ul[..nloc],
                &mut ur[..nloc],
                &mut us[..nloc],
                &mut f1[..nloc],
                &mut f2[..nloc],
                &mut ol[..nloc],
            );
            for k in 0..nloc {
                out[k * nloc + l] = ol[k];
            }
        }
    }

    fn node_roles(&self) -> Vec<NodeRole> {
        let n = self.basis.n();
        let p = self.basis.p;
        let mut roles = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                let bi = i == 0 || i == p;
                let bj = j == 0 || j == p;
                roles.push(match (bi, bj) {
                    (true, true) => NodeRole::Vertex,
                    // Local edge ids follow the boundary numbering:
                    // 0 = η-min, 1 = ξ-max, 2 = η-max, 3 = ξ-min.
                    (false, true) => NodeRole::Edge(if j == 0 { 0 } else { 2 }),
                    (true, false) => NodeRole::Edge(if i == p { 1 } else { 3 }),
                    (false, false) => NodeRole::Interior,
                });
            }
        }
        roles
    }

    fn fingerprint(&self) -> Option<ArtifactKey> {
        Some(self.fp)
    }

    fn corner_hats(&self) -> (Vec<usize>, Vec<Vec<f64>>) {
        let n = self.basis.n();
        let p = self.basis.p;
        // Corner order matches the element vertex order of the mesh.
        let locs = vec![0, p, p * n + p, p * n];
        let pts = &self.basis.points;
        let mut hats = vec![vec![0.0; n * n]; 4];
        for j in 0..n {
            for i in 0..n {
                let (xi, eta) = (pts[i], pts[j]);
                let k = j * n + i;
                hats[0][k] = 0.25 * (1.0 - xi) * (1.0 - eta);
                hats[1][k] = 0.25 * (1.0 + xi) * (1.0 - eta);
                hats[2][k] = 0.25 * (1.0 + xi) * (1.0 + eta);
                hats[3][k] = 0.25 * (1.0 - xi) * (1.0 + eta);
            }
        }
        (locs, hats)
    }
}

fn edge_key(va: usize, vb: usize, t: usize, p: usize) -> NodeKey {
    // Position measured from the smaller vertex id, so both elements
    // sharing the edge agree regardless of traversal direction.
    if va < vb {
        NodeKey::Edge(va, vb, t)
    } else {
        NodeKey::Edge(vb, va, p - t)
    }
}

fn build_alias(mesh: &QuadMesh, periodic_x: bool) -> Vec<usize> {
    let mut alias: Vec<usize> = (0..mesh.num_verts()).collect();
    if !periodic_x {
        return alias;
    }
    let xmin = mesh.coords.iter().map(|p| p[0]).fold(f64::MAX, f64::min);
    let xmax = mesh.coords.iter().map(|p| p[0]).fold(f64::MIN, f64::max);
    let tol = 1e-9 * (xmax - xmin).max(1.0);
    for (v, pv) in mesh.coords.iter().enumerate() {
        if (pv[0] - xmax).abs() < tol {
            // Find the partner at xmin with the same y.
            let partner = mesh
                .coords
                .iter()
                .position(|q| (q[0] - xmin).abs() < tol && (q[1] - pv[1]).abs() < tol)
                .expect("periodic_x: no matching vertex on the opposite side");
            alias[v] = partner;
        }
    }
    alias
}

fn elem_geometry(mesh: &QuadMesh, verts: [usize; 4], basis: &GllBasis) -> ElemGeom {
    let n = basis.n();
    let nloc = n * n;
    let vc: Vec<[f64; 2]> = verts.iter().map(|&v| mesh.coords[v]).collect();
    let mut g = ElemGeom {
        g11: vec![0.0; nloc],
        g12: vec![0.0; nloc],
        g22: vec![0.0; nloc],
        mass: vec![0.0; nloc],
        rx: vec![0.0; nloc],
        ry: vec![0.0; nloc],
        sx: vec![0.0; nloc],
        sy: vec![0.0; nloc],
        x: vec![0.0; nloc],
        y: vec![0.0; nloc],
    };
    for j in 0..n {
        for i in 0..n {
            let (xi, eta) = (basis.points[i], basis.points[j]);
            let k = j * n + i;
            // Bilinear shape functions and their derivatives.
            let nfun = [
                0.25 * (1.0 - xi) * (1.0 - eta),
                0.25 * (1.0 + xi) * (1.0 - eta),
                0.25 * (1.0 + xi) * (1.0 + eta),
                0.25 * (1.0 - xi) * (1.0 + eta),
            ];
            let dxi = [
                -0.25 * (1.0 - eta),
                0.25 * (1.0 - eta),
                0.25 * (1.0 + eta),
                -0.25 * (1.0 + eta),
            ];
            let deta = [
                -0.25 * (1.0 - xi),
                -0.25 * (1.0 + xi),
                0.25 * (1.0 + xi),
                0.25 * (1.0 - xi),
            ];
            let (mut x, mut y) = (0.0, 0.0);
            let (mut x_xi, mut y_xi, mut x_eta, mut y_eta) = (0.0, 0.0, 0.0, 0.0);
            for a in 0..4 {
                x += nfun[a] * vc[a][0];
                y += nfun[a] * vc[a][1];
                x_xi += dxi[a] * vc[a][0];
                y_xi += dxi[a] * vc[a][1];
                x_eta += deta[a] * vc[a][0];
                y_eta += deta[a] * vc[a][1];
            }
            let jac = x_xi * y_eta - x_eta * y_xi;
            assert!(
                jac > 1e-14,
                "element has non-positive Jacobian {jac} (inverted or degenerate)"
            );
            let rx = y_eta / jac;
            let ry = -x_eta / jac;
            let sx = -y_xi / jac;
            let sy = x_xi / jac;
            let w = basis.weights[i] * basis.weights[j] * jac;
            g.x[k] = x;
            g.y[k] = y;
            g.rx[k] = rx;
            g.ry[k] = ry;
            g.sx[k] = sx;
            g.sy[k] = sy;
            g.mass[k] = w;
            g.g11[k] = w * (rx * rx + ry * ry);
            g.g12[k] = w * (rx * sx + ry * sy);
            g.g22[k] = w * (sx * sx + sy * sy);
        }
    }
    g
}

/// Newton inversion of the bilinear map; returns reference coordinates when
/// the point is inside (|ξ|,|η| ≤ 1 + 1e-8).
fn invert_bilinear(vc: &[[f64; 2]], x: f64, y: f64) -> Option<(f64, f64)> {
    // Quick reject by bounding box.
    let (mut lo, mut hi) = ([f64::MAX; 2], [f64::MIN; 2]);
    for p in vc {
        for d in 0..2 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let pad = 1e-8 * ((hi[0] - lo[0]) + (hi[1] - lo[1])).max(1e-12);
    if x < lo[0] - pad || x > hi[0] + pad || y < lo[1] - pad || y > hi[1] + pad {
        return None;
    }
    let (mut xi, mut eta) = (0.0f64, 0.0f64);
    for _ in 0..30 {
        let nfun = [
            0.25 * (1.0 - xi) * (1.0 - eta),
            0.25 * (1.0 + xi) * (1.0 - eta),
            0.25 * (1.0 + xi) * (1.0 + eta),
            0.25 * (1.0 - xi) * (1.0 + eta),
        ];
        let dxi = [
            -0.25 * (1.0 - eta),
            0.25 * (1.0 - eta),
            0.25 * (1.0 + eta),
            -0.25 * (1.0 + eta),
        ];
        let deta = [
            -0.25 * (1.0 - xi),
            -0.25 * (1.0 + xi),
            0.25 * (1.0 + xi),
            0.25 * (1.0 - xi),
        ];
        let (mut fx, mut fy) = (-x, -y);
        let (mut a11, mut a12, mut a21, mut a22) = (0.0, 0.0, 0.0, 0.0);
        for a in 0..4 {
            fx += nfun[a] * vc[a][0];
            fy += nfun[a] * vc[a][1];
            a11 += dxi[a] * vc[a][0];
            a12 += deta[a] * vc[a][0];
            a21 += dxi[a] * vc[a][1];
            a22 += deta[a] * vc[a][1];
        }
        let det = a11 * a22 - a12 * a21;
        if det.abs() < 1e-30 {
            return None;
        }
        let dxi_step = (fx * a22 - fy * a12) / det;
        let deta_step = (fy * a11 - fx * a21) / det;
        xi -= dxi_step;
        eta -= deta_step;
        if dxi_step.abs() + deta_step.abs() < 1e-13 {
            break;
        }
    }
    if xi.abs() <= 1.0 + 1e-8 && eta.abs() <= 1.0 + 1e-8 {
        Some((xi.clamp(-1.0, 1.0), eta.clamp(-1.0, 1.0)))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel(nx: usize, ny: usize, p: usize) -> Space2d {
        let mesh = QuadMesh::rectangle(nx, ny, 0.0, 2.0, 0.0, 1.0);
        Space2d::new(mesh, p, false)
    }

    #[test]
    fn dof_count_structured() {
        // nx*p+1 by ny*p+1 grid points.
        let s = channel(3, 2, 4);
        assert_eq!(s.nglobal, (3 * 4 + 1) * (2 * 4 + 1));
    }

    #[test]
    fn multiplicity_correct() {
        let s = channel(2, 2, 3);
        // Central vertex shared by 4 elements.
        let max_mult = s.mult.iter().cloned().fold(0.0, f64::max);
        assert_eq!(max_mult, 4.0);
        let ones = s.mult.iter().filter(|&&m| m == 1.0).count();
        // Interior nodes: 4 elements * (p-1)^2 = 16, plus boundary-only
        // nodes... count: all nodes minus shared ones; just check interior.
        assert!(ones >= 4 * (3 - 1) * (3 - 1));
    }

    #[test]
    fn area_of_rectangle() {
        let s = channel(3, 3, 5);
        assert!((s.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mass_integrates_polynomials_exactly() {
        let s = channel(2, 2, 4);
        // ∫_0^2 ∫_0^1 x² y dx dy = (8/3)(1/2) = 4/3.
        let u = s.project(|x, y| x * x * y);
        assert!((s.integrate(&u) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_exact_for_polynomials() {
        let s = channel(2, 2, 5);
        let u = s.project(|x, y| x * x * y + 3.0 * y * y);
        let (gx, gy) = s.gradient(&u);
        for (g, &[x, y]) in gx.iter().zip(&s.coords) {
            assert!((g - 2.0 * x * y).abs() < 1e-9, "at ({x},{y})");
        }
        for (g, &[x, y]) in gy.iter().zip(&s.coords) {
            assert!((g - (x * x + 6.0 * y)).abs() < 1e-9, "at ({x},{y})");
        }
    }

    #[test]
    fn helmholtz_operator_symmetric() {
        let s = channel(2, 2, 3);
        let n = s.nglobal;
        // Probe symmetry with a few random-ish vectors.
        let u: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) % 13) as f64 / 13.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 5 + 3) % 11) as f64 / 11.0).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        s.apply_helmholtz(2.5, &u, &mut au);
        s.apply_helmholtz(2.5, &v, &mut av);
        let vau: f64 = v.iter().zip(&au).map(|(a, b)| a * b).sum();
        let uav: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
        assert!((vau - uav).abs() < 1e-9 * vau.abs().max(1.0));
    }

    #[test]
    fn operator_annihilates_constants_when_lambda_zero() {
        let s = channel(3, 2, 4);
        let u = vec![1.0; s.nglobal];
        let mut au = vec![0.0; s.nglobal];
        s.apply_helmholtz(0.0, &u, &mut au);
        for (i, &a) in au.iter().enumerate() {
            assert!(a.abs() < 1e-10, "dof {i}: {a}");
        }
    }

    #[test]
    fn diagonal_matches_operator_probe() {
        let s = channel(2, 1, 3);
        let diag = s.helmholtz_diagonal(1.5);
        let n = s.nglobal;
        for gid in [0usize, 3, n / 2, n - 1] {
            let mut e = vec![0.0; n];
            e[gid] = 1.0;
            let mut ae = vec![0.0; n];
            s.apply_helmholtz(1.5, &e, &mut ae);
            assert!(
                (ae[gid] - diag[gid]).abs() < 1e-10 * diag[gid].abs().max(1.0),
                "dof {gid}: probe {} vs diag {}",
                ae[gid],
                diag[gid]
            );
        }
    }

    #[test]
    fn poisson_manufactured_solution() {
        // -∇²u = f on [0,2]x[0,1] with u = sin(πx/2) sin(πy) (zero on the
        // boundary), f = π²(1/4 + 1) u.
        let s = channel(3, 3, 7);
        let pi = std::f64::consts::PI;
        let exact = |x: f64, y: f64| (pi * x / 2.0).sin() * (pi * y).sin();
        let rhs = s.weak_rhs(|x, y| pi * pi * (0.25 + 1.0) * exact(x, y));
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];
        let (u, res) = s.solve_helmholtz(0.0, &rhs, &bnd, &zeros, 1e-12, 2000);
        assert!(res.converged, "CG failed: {res:?}");
        let err = s.l2_error(&u, exact);
        assert!(err < 1e-6, "L2 error {err}");
    }

    #[test]
    fn poisson_p_convergence_is_spectral() {
        let pi = std::f64::consts::PI;
        let exact = move |x: f64, y: f64| (pi * x / 2.0).sin() * (pi * y).sin();
        let mut errs = Vec::new();
        for p in [2usize, 4, 6, 8] {
            let s = channel(2, 2, p);
            let rhs = s.weak_rhs(|x, y| pi * pi * 1.25 * exact(x, y));
            let bnd = s.boundary_dofs(|_| true);
            let zeros = vec![0.0; bnd.len()];
            let (u, res) = s.solve_helmholtz(0.0, &rhs, &bnd, &zeros, 1e-13, 4000);
            assert!(res.converged);
            errs.push(s.l2_error(&u, exact));
        }
        // Each +2 in order must shrink the error by well over 10x
        // (exponential convergence).
        for w in errs.windows(2) {
            assert!(w[1] < w[0] / 10.0, "errors not spectral: {errs:?}");
        }
        assert!(errs.last().unwrap() < &1e-7);
    }

    #[test]
    fn helmholtz_with_positive_lambda() {
        // (-∇² + λ)u = f, u = cos(πx) e^y is non-zero on the boundary:
        // exercises Dirichlet lifting. f = (π² + λ - 1) ... compute:
        // -∇²u = π² cos(πx) e^y - cos(πx) e^y.
        let s = channel(3, 2, 6);
        let pi = std::f64::consts::PI;
        let lambda = 3.0;
        let exact = |x: f64, y: f64| (pi * x).cos() * y.exp();
        let rhs = s.weak_rhs(|x, y| (pi * pi - 1.0 + lambda) * exact(x, y));
        let bnd = s.boundary_dofs(|_| true);
        let vals: Vec<f64> = bnd
            .iter()
            .map(|&g| exact(s.coords[g][0], s.coords[g][1]))
            .collect();
        let (u, res) = s.solve_helmholtz(lambda, &rhs, &bnd, &vals, 1e-12, 3000);
        assert!(res.converged);
        let err = s.l2_error(&u, exact);
        assert!(err < 1e-6, "L2 error {err}");
    }

    #[test]
    fn periodic_space_merges_dofs() {
        let mesh = QuadMesh::rectangle(4, 2, 0.0, 1.0, 0.0, 0.5);
        let plain = Space2d::new(mesh.clone(), 3, false);
        let periodic = Space2d::new(mesh, 3, true);
        // Periodic merge removes one column of (ny*p+1) DoFs.
        assert_eq!(plain.nglobal - periodic.nglobal, 2 * 3 + 1);
    }

    #[test]
    fn eval_at_interpolates() {
        let s = channel(3, 2, 5);
        let u = s.project(|x, y| x * y * y + 1.0);
        let v = s.eval_at(&u, 0.713, 0.377).unwrap();
        assert!((v - (0.713 * 0.377 * 0.377 + 1.0)).abs() < 1e-10);
        assert!(s.eval_at(&u, 5.0, 0.5).is_none());
    }

    #[test]
    fn boundary_dofs_by_tag() {
        let s = channel(3, 2, 2);
        let inlet = s.boundary_dofs(|t| t == BoundaryTag::Inlet);
        // Inlet is x=0 line: ny*p+1 nodes.
        assert_eq!(inlet.len(), 2 * 2 + 1);
        for &g in &inlet {
            assert!(s.coords[g][0].abs() < 1e-12);
        }
    }

    #[test]
    fn mapped_mesh_area() {
        // Shear-mapped rectangle preserves area.
        let mesh = QuadMesh::rectangle(3, 3, 0.0, 2.0, 0.0, 1.0).mapped(|[x, y]| [x + 0.3 * y, y]);
        let s = Space2d::new(mesh, 4, false);
        assert!((s.area() - 2.0).abs() < 1e-10);
    }
}
