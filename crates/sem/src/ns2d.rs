//! Unsteady incompressible Navier–Stokes in 2D: the stiffly-stable
//! velocity-correction splitting of Karniadakis–Israeli–Orszag (JCP 1991),
//! the time-stepping scheme of NεκTαr-3D, here on quadrilateral SEM spaces.
//!
//! Per step (order J ∈ {1,2} shown for J=2 with γ₀ = 3/2, α = [2, -1/2],
//! β = [2, -1]):
//!
//! 1. **advection**: `u* = Σ α_q u^{n-q} + Δt(−Σ β_q N(u^{n-q}) + f^{n+1})`
//!    with `N(u) = (u·∇)u` in collocation form;
//! 2. **pressure**: solve `∇²p = ∇·u*/Δt` (weak Poisson, homogeneous
//!    Neumann on velocity-Dirichlet boundaries, Dirichlet where the caller
//!    marks pressure outlets); project `ũ = u* − Δt ∇p`;
//! 3. **viscous**: Helmholtz solve `(−∇² + λ)u^{n+1} = λ_ν ũ` with
//!    `λ = γ₀/(νΔt)`, velocity Dirichlet boundary values at `t^{n+1}`.
//!
//! Boundary values normally come from the configured closure; the coupling
//! layer overrides individual interface DoFs each exchange via
//! [`NsSolver2d::set_velocity_override`] — that is exactly how the paper's
//! inter-patch and continuum→atomistic conditions enter the solver.

use crate::precon::{EllipticSolver, PreconKind};
use crate::space2d::Space2d;
use nkg_ckpt::{CkptError, Dec, Enc, Snapshot};
use nkg_mesh::quad::BoundaryTag;
use std::collections::HashMap;

/// Numerical parameters of the splitting scheme.
#[derive(Clone)]
pub struct NsConfig {
    /// Kinematic viscosity ν.
    pub nu: f64,
    /// Time step Δt.
    pub dt: f64,
    /// Temporal order (1 or 2).
    pub time_order: usize,
    /// CG tolerance for the pressure and viscous solves.
    pub tol: f64,
    /// CG iteration cap.
    pub max_iter: usize,
    /// Preconditioner rung for the elliptic solves.
    pub precon: PreconKind,
    /// Successive-RHS projection depth (0 disables warm starts).
    pub proj_depth: usize,
}

impl Default for NsConfig {
    fn default() -> Self {
        Self {
            nu: 0.01,
            dt: 1e-3,
            time_order: 2,
            tol: 1e-10,
            max_iter: 4000,
            precon: PreconKind::LowEnergyCoarse,
            proj_depth: 8,
        }
    }
}

/// Stable numeric code of a [`PreconKind`] for snapshot fingerprints.
pub(crate) fn precon_code(k: PreconKind) -> u64 {
    match k {
        PreconKind::None => 0,
        PreconKind::Jacobi => 1,
        PreconKind::LowEnergy => 2,
        PreconKind::LowEnergyCoarse => 3,
    }
}

/// Per-step elliptic-solve telemetry (pressure Poisson + the velocity
/// Helmholtz solves), surfaced into the metasolver's `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepSolveStats {
    /// Pressure CG iterations.
    pub pressure_iterations: usize,
    /// Final pressure residual 2-norm.
    pub pressure_residual: f64,
    /// Projection-basis size used for the pressure warm start.
    pub pressure_proj_dim: usize,
    /// Velocity Helmholtz iterations, summed over components.
    pub viscous_iterations: usize,
    /// Largest final viscous residual over the components.
    pub viscous_residual: f64,
    /// Largest viscous projection-basis size over the components.
    pub viscous_proj_dim: usize,
    /// True when any solve hit a CG breakdown (`pᵀAp ≤ 0`).
    pub breakdown: bool,
}

impl StepSolveStats {
    pub(crate) fn snapshot_into(&self, enc: &mut Enc) {
        enc.put(self.pressure_iterations as u64);
        enc.put(self.pressure_residual);
        enc.put(self.pressure_proj_dim as u64);
        enc.put(self.viscous_iterations as u64);
        enc.put(self.viscous_residual);
        enc.put(self.viscous_proj_dim as u64);
        enc.put(self.breakdown as u64);
    }

    pub(crate) fn restore_from(dec: &mut Dec<'_>) -> Result<Self, CkptError> {
        Ok(Self {
            pressure_iterations: dec.take::<u64>()? as usize,
            pressure_residual: dec.take()?,
            pressure_proj_dim: dec.take::<u64>()? as usize,
            viscous_iterations: dec.take::<u64>()? as usize,
            viscous_residual: dec.take()?,
            viscous_proj_dim: dec.take::<u64>()? as usize,
            breakdown: dec.take::<u64>()? != 0,
        })
    }
}

/// Encode one engine's projection bases (per slot, age order).
pub(crate) fn snapshot_proj(enc: &mut Enc, state: &crate::precon::ProjState) {
    enc.put(state.len() as u64);
    for slot in state {
        enc.put(slot.len() as u64);
        for (w, aw) in slot {
            enc.put_slice(w);
            enc.put_slice(aw);
        }
    }
}

/// Decode projection bases written by [`snapshot_proj`]; every vector must
/// have length `n`.
pub(crate) fn restore_proj(
    dec: &mut Dec<'_>,
    n: usize,
) -> Result<crate::precon::ProjState, CkptError> {
    let nslots = dec.take::<u64>()? as usize;
    let mut state = Vec::with_capacity(nslots.min(16));
    for _ in 0..nslots {
        let nvec = dec.take::<u64>()? as usize;
        let mut slot = Vec::with_capacity(nvec.min(1 << 10));
        for _ in 0..nvec {
            let w = dec.take_vec::<f64>()?;
            let aw = dec.take_vec::<f64>()?;
            if w.len() != n || aw.len() != n {
                return Err(CkptError::Malformed("projection basis length"));
            }
            slot.push((w, aw));
        }
        state.push(slot);
    }
    Ok(state)
}

type VelBcFn = Box<dyn Fn(f64, f64, f64) -> (f64, f64) + Send + Sync>;
type ScalarBcFn = Box<dyn Fn(f64, f64, f64) -> f64 + Send + Sync>;
type ForceFn = Box<dyn Fn(f64, f64, f64) -> (f64, f64) + Send + Sync>;

/// 2D incompressible Navier–Stokes solver.
pub struct NsSolver2d {
    /// The function space shared by velocity components and pressure.
    pub space: Space2d,
    cfg: NsConfig,
    /// Velocity DoF ids with Dirichlet data.
    vel_dofs: Vec<usize>,
    vel_bc: VelBcFn,
    /// Pressure DoF ids with Dirichlet data (may be empty → nullspace pin).
    p_dofs: Vec<usize>,
    p_bc: ScalarBcFn,
    force: ForceFn,
    /// Per-DoF velocity overrides applied after the closure (coupling data).
    overrides: HashMap<usize, (f64, f64)>,
    /// Per-DoF pressure overrides (coupling data for artificial outlets).
    p_overrides: HashMap<usize, f64>,
    /// Velocity fields (global vectors).
    pub u: Vec<f64>,
    /// y-velocity.
    pub v: Vec<f64>,
    /// Pressure.
    pub p: Vec<f64>,
    u_prev: Vec<f64>,
    v_prev: Vec<f64>,
    nu_hist: [Vec<f64>; 2],
    nv_hist: [Vec<f64>; 2],
    /// Simulated time.
    pub time: f64,
    steps: usize,
    /// Cumulative CG iterations (pressure, viscous) — performance metric.
    pub cg_iterations: usize,
    /// Persistent pressure-Poisson engine (λ = 0, one projection slot).
    p_engine: EllipticSolver,
    /// Persistent viscous Helmholtz engine; rebuilt when λ = γ₀/(νΔt)
    /// changes (the order-1 → order-2 ramp after the first step).
    v_engine: Option<EllipticSolver>,
    last_stats: StepSolveStats,
}

impl NsSolver2d {
    /// Create a solver.
    ///
    /// * `vel_tags` — boundary tags carrying velocity Dirichlet conditions;
    /// * `vel_bc(x, y, t)` — the Dirichlet velocity;
    /// * `p_tags` — boundary tags carrying pressure Dirichlet conditions
    ///   (typically outlets; may select nothing, in which case the pressure
    ///   nullspace is pinned at one DoF);
    /// * `p_bc(x, y, t)` — the Dirichlet pressure;
    /// * `force(x, y, t)` — body force.
    pub fn new(
        space: Space2d,
        cfg: NsConfig,
        vel_tags: impl Fn(BoundaryTag) -> bool,
        vel_bc: impl Fn(f64, f64, f64) -> (f64, f64) + Send + Sync + 'static,
        p_tags: impl Fn(BoundaryTag) -> bool,
        p_bc: impl Fn(f64, f64, f64) -> f64 + Send + Sync + 'static,
        force: impl Fn(f64, f64, f64) -> (f64, f64) + Send + Sync + 'static,
    ) -> Self {
        assert!(matches!(cfg.time_order, 1 | 2), "time order must be 1 or 2");
        let vel_dofs = space.boundary_dofs(&vel_tags);
        let p_dofs = space.boundary_dofs(&p_tags);
        let n = space.nglobal;
        // Pressure engine: pure-Neumann problems pin DoF 0 to fix the
        // nullspace, exactly as the pre-engine solver did.
        let p_pin = if p_dofs.is_empty() {
            vec![0]
        } else {
            p_dofs.clone()
        };
        let p_engine = EllipticSolver::new(
            &space,
            0.0,
            &p_pin,
            cfg.precon,
            cfg.tol,
            cfg.max_iter,
            1,
            cfg.proj_depth,
        );
        Self {
            space,
            cfg,
            vel_dofs,
            vel_bc: Box::new(vel_bc),
            p_dofs,
            p_bc: Box::new(p_bc),
            force: Box::new(force),
            overrides: HashMap::new(),
            p_overrides: HashMap::new(),
            u: vec![0.0; n],
            v: vec![0.0; n],
            p: vec![0.0; n],
            u_prev: vec![0.0; n],
            v_prev: vec![0.0; n],
            nu_hist: [vec![0.0; n], vec![0.0; n]],
            nv_hist: [vec![0.0; n], vec![0.0; n]],
            time: 0.0,
            steps: 0,
            cg_iterations: 0,
            p_engine,
            v_engine: None,
            last_stats: StepSolveStats::default(),
        }
    }

    /// Elliptic-solve telemetry of the most recent [`NsSolver2d::step`].
    pub fn last_step_stats(&self) -> StepSolveStats {
        self.last_stats
    }

    /// Set the initial velocity from functions of `(x, y)`.
    pub fn set_initial(&mut self, fu: impl Fn(f64, f64) -> f64, fv: impl Fn(f64, f64) -> f64) {
        self.u = self.space.project(fu);
        self.v = self.space.project(fv);
        self.u_prev.copy_from_slice(&self.u);
        self.v_prev.copy_from_slice(&self.v);
    }

    /// Override the velocity Dirichlet value at specific global DoFs for
    /// all subsequent steps (until replaced). This is the entry point used
    /// by the multipatch and continuum↔atomistic couplings.
    pub fn set_velocity_override(&mut self, values: HashMap<usize, (f64, f64)>) {
        self.overrides = values;
    }

    /// The velocity Dirichlet DoF ids (for building override maps).
    pub fn velocity_bc_dofs(&self) -> &[usize] {
        &self.vel_dofs
    }

    /// Override the pressure Dirichlet value at specific global DoFs (the
    /// multipatch artificial-outlet condition).
    pub fn set_pressure_override(&mut self, values: HashMap<usize, f64>) {
        self.p_overrides = values;
    }

    /// The pressure Dirichlet DoF ids.
    pub fn pressure_bc_dofs(&self) -> &[usize] {
        &self.p_dofs
    }

    /// Immutable access to the configuration.
    pub fn config(&self) -> &NsConfig {
        &self.cfg
    }

    /// Advection term `N(u) = (u·∇)u` in collocation form.
    fn advection(&self, u: &[f64], v: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let (ux, uy) = self.space.gradient(u);
        let (vx, vy) = self.space.gradient(v);
        let n = self.space.nglobal;
        let mut nu = vec![0.0; n];
        let mut nv = vec![0.0; n];
        for i in 0..n {
            nu[i] = u[i] * ux[i] + v[i] * uy[i];
            nv[i] = u[i] * vx[i] + v[i] * vy[i];
        }
        (nu, nv)
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let n = self.space.nglobal;
        let dt = self.cfg.dt;
        let t_new = self.time + dt;
        // Effective order ramps up: first step is order 1.
        let order = self.cfg.time_order.min(self.steps + 1);
        let (gamma0, alpha, beta): (f64, [f64; 2], [f64; 2]) = match order {
            1 => (1.0, [1.0, 0.0], [1.0, 0.0]),
            _ => (1.5, [2.0, -0.5], [2.0, -1.0]),
        };

        // --- Step 1: explicit advection + force.
        let (nu0, nv0) = self.advection(&self.u, &self.v);
        let mut ustar = vec![0.0f64; n];
        let mut vstar = vec![0.0f64; n];
        for i in 0..n {
            let fu;
            let fv;
            {
                let [x, y] = self.space.coords[i];
                let f = (self.force)(x, y, t_new);
                fu = f.0;
                fv = f.1;
            }
            // Force is evaluated at t^{n+1} directly (no extrapolation).
            ustar[i] = alpha[0] * self.u[i]
                + alpha[1] * self.u_prev[i]
                + dt * (-(beta[0] * nu0[i] + beta[1] * self.nu_hist[0][i]) + fu);
            vstar[i] = alpha[0] * self.v[i]
                + alpha[1] * self.v_prev[i]
                + dt * (-(beta[0] * nv0[i] + beta[1] * self.nv_hist[0][i]) + fv);
        }

        // --- Step 2: pressure Poisson  ∇²p = ∇·u*/Δt.
        let (dux, _) = self.space.gradient(&ustar);
        let (_, dvy) = self.space.gradient(&vstar);
        let mut div = vec![0.0f64; n];
        for i in 0..n {
            div[i] = (dux[i] + dvy[i]) / dt;
        }
        // Weak RHS of  -∇²p = -div :  b = -M·div.
        let mdiv = self.space.apply_mass(&div);
        let b: Vec<f64> = mdiv.iter().map(|&x| -x).collect();
        let p_vals: Vec<f64> = if self.p_dofs.is_empty() {
            // Pure Neumann problem: the engine pins DoF 0 at zero.
            vec![0.0]
        } else {
            self.p_dofs
                .iter()
                .map(|&g| {
                    if let Some(&pv) = self.p_overrides.get(&g) {
                        pv
                    } else {
                        let [x, y] = self.space.coords[g];
                        (self.p_bc)(x, y, t_new)
                    }
                })
                .collect()
        };
        let pres = self
            .p_engine
            .solve_into(&self.space, &b, &p_vals, &mut self.p, 0);
        self.cg_iterations += pres.cg.iterations;

        // Projection: ũ = u* − Δt ∇p.
        let (px, py) = self.space.gradient(&self.p);
        for i in 0..n {
            ustar[i] -= dt * px[i];
            vstar[i] -= dt * py[i];
        }

        // --- Step 3: viscous Helmholtz  (−∇² + λ) u^{n+1} = λ_ν ũ.
        let lambda = gamma0 / (self.cfg.nu * dt);
        let scale = 1.0 / (self.cfg.nu * dt);
        let bu: Vec<f64> = self
            .space
            .apply_mass(&ustar)
            .iter()
            .map(|&x| x * scale)
            .collect();
        let bv: Vec<f64> = self
            .space
            .apply_mass(&vstar)
            .iter()
            .map(|&x| x * scale)
            .collect();
        let (ubc, vbc): (Vec<f64>, Vec<f64>) = self
            .vel_dofs
            .iter()
            .map(|&g| {
                if let Some(&(ou, ov)) = self.overrides.get(&g) {
                    (ou, ov)
                } else {
                    let [x, y] = self.space.coords[g];
                    (self.vel_bc)(x, y, t_new)
                }
            })
            .unzip();
        // The viscous engine is rebuilt whenever λ changes (the order ramp
        // after the first step); a rebuild discards the projection bases,
        // which a changed operator invalidates anyway.
        let rebuild = match &self.v_engine {
            None => true,
            Some(e) => e.lambda().to_bits() != lambda.to_bits(),
        };
        if rebuild {
            self.v_engine = Some(EllipticSolver::new(
                &self.space,
                lambda,
                &self.vel_dofs,
                self.cfg.precon,
                self.cfg.tol,
                self.cfg.max_iter,
                2,
                self.cfg.proj_depth,
            ));
        }
        // Rotate the velocity history first so the solves can write the
        // fields in place.
        self.u_prev.copy_from_slice(&self.u);
        self.v_prev.copy_from_slice(&self.v);
        let ve = self.v_engine.as_mut().expect("viscous engine just built");
        let ures = ve.solve_into(&self.space, &bu, &ubc, &mut self.u, 0);
        let vres = ve.solve_into(&self.space, &bv, &vbc, &mut self.v, 1);
        self.cg_iterations += ures.cg.iterations + vres.cg.iterations;
        self.last_stats = StepSolveStats {
            pressure_iterations: pres.cg.iterations,
            pressure_residual: pres.cg.residual,
            pressure_proj_dim: pres.proj_dim,
            viscous_iterations: ures.cg.iterations + vres.cg.iterations,
            viscous_residual: ures.cg.residual.max(vres.cg.residual),
            viscous_proj_dim: ures.proj_dim.max(vres.proj_dim),
            breakdown: pres.cg.breakdown || ures.cg.breakdown || vres.cg.breakdown,
        };

        // Rotate the advection histories.
        self.nu_hist[0] = nu0;
        self.nv_hist[0] = nv0;
        self.time = t_new;
        self.steps += 1;
    }

    /// L2 norm of the velocity divergence (a quality metric — the splitting
    /// enforces it weakly).
    pub fn divergence_norm(&self) -> f64 {
        let (ux, _) = self.space.gradient(&self.u);
        let (_, vy) = self.space.gradient(&self.v);
        let div: Vec<f64> = ux.iter().zip(&vy).map(|(a, b)| a + b).collect();
        self.space.l2_norm(&div)
    }

    /// Kinetic energy `½∫(u² + v²)`.
    pub fn kinetic_energy(&self) -> f64 {
        let ke: Vec<f64> = self
            .u
            .iter()
            .zip(&self.v)
            .map(|(a, b)| 0.5 * (a * a + b * b))
            .collect();
        self.space.integrate(&ke)
    }
}

impl Snapshot for NsSolver2d {
    const TAG: u32 = nkg_ckpt::tag4(b"NSSV");

    fn snapshot(&self, enc: &mut Enc) {
        // --- Configuration/discretization fingerprint (verified). ---
        enc.put(self.cfg.nu);
        enc.put(self.cfg.dt);
        enc.put(self.cfg.time_order as u64);
        enc.put(self.cfg.tol);
        enc.put(self.cfg.max_iter as u64);
        enc.put(precon_code(self.cfg.precon));
        enc.put(self.cfg.proj_depth as u64);
        enc.put(self.space.nglobal as u64);
        enc.put_slice(&self.vel_dofs);
        enc.put_slice(&self.p_dofs);
        // --- Evolving state. ---
        enc.put_slice(&self.u);
        enc.put_slice(&self.v);
        enc.put_slice(&self.p);
        enc.put_slice(&self.u_prev);
        enc.put_slice(&self.v_prev);
        for h in &self.nu_hist {
            enc.put_slice(h);
        }
        for h in &self.nv_hist {
            enc.put_slice(h);
        }
        enc.put(self.time);
        enc.put(self.steps as u64);
        enc.put(self.cg_iterations as u64);
        // Override maps, sorted by DoF id so the encoding is canonical.
        let mut vo: Vec<(&usize, &(f64, f64))> = self.overrides.iter().collect();
        vo.sort_by_key(|(k, _)| **k);
        enc.put(vo.len() as u64);
        for (k, (ou, ov)) in vo {
            enc.put(*k);
            enc.put(*ou);
            enc.put(*ov);
        }
        let mut po: Vec<(&usize, &f64)> = self.p_overrides.iter().collect();
        po.sort_by_key(|(k, _)| **k);
        enc.put(po.len() as u64);
        for (k, pv) in po {
            enc.put(*k);
            enc.put(*pv);
        }
        // Projection warm-start bases: without them a resumed run would
        // take different CG trajectories than the original (the fields
        // would still converge, but not bitwise-identically).
        snapshot_proj(enc, &self.p_engine.proj_export());
        match &self.v_engine {
            None => enc.put(0u64),
            Some(e) => {
                enc.put(1u64);
                enc.put(e.lambda());
                snapshot_proj(enc, &e.proj_export());
            }
        }
        self.last_stats.snapshot_into(enc);
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), CkptError> {
        let mismatch = |what: &str| CkptError::Mismatch(format!("NS solver {what} differs"));
        let bits = [self.cfg.nu, self.cfg.dt];
        for want in bits {
            if dec.take::<f64>()?.to_bits() != want.to_bits() {
                return Err(mismatch("config"));
            }
        }
        if dec.take::<u64>()? as usize != self.cfg.time_order {
            return Err(mismatch("time order"));
        }
        if dec.take::<f64>()?.to_bits() != self.cfg.tol.to_bits() {
            return Err(mismatch("tolerance"));
        }
        if dec.take::<u64>()? as usize != self.cfg.max_iter {
            return Err(mismatch("iteration cap"));
        }
        if dec.take::<u64>()? != precon_code(self.cfg.precon) {
            return Err(mismatch("preconditioner"));
        }
        if dec.take::<u64>()? as usize != self.cfg.proj_depth {
            return Err(mismatch("projection depth"));
        }
        let n = self.space.nglobal;
        if dec.take::<u64>()? as usize != n {
            return Err(mismatch("global DoF count"));
        }
        if dec.take_vec::<usize>()? != self.vel_dofs || dec.take_vec::<usize>()? != self.p_dofs {
            return Err(mismatch("boundary DoF layout"));
        }
        let field = |dec: &mut Dec<'_>| -> Result<Vec<f64>, CkptError> {
            let f = dec.take_vec::<f64>()?;
            if f.len() != n {
                return Err(CkptError::Malformed("field length"));
            }
            Ok(f)
        };
        self.u = field(dec)?;
        self.v = field(dec)?;
        self.p = field(dec)?;
        self.u_prev = field(dec)?;
        self.v_prev = field(dec)?;
        for h in &mut self.nu_hist {
            *h = field(dec)?;
        }
        for h in &mut self.nv_hist {
            *h = field(dec)?;
        }
        self.time = dec.take()?;
        self.steps = dec.take::<u64>()? as usize;
        self.cg_iterations = dec.take::<u64>()? as usize;
        let n_vo = dec.take::<u64>()? as usize;
        let mut overrides = HashMap::with_capacity(n_vo.min(1 << 20));
        for _ in 0..n_vo {
            let k = dec.take::<usize>()?;
            let ou = dec.take::<f64>()?;
            let ov = dec.take::<f64>()?;
            overrides.insert(k, (ou, ov));
        }
        self.overrides = overrides;
        let n_po = dec.take::<u64>()? as usize;
        let mut p_overrides = HashMap::with_capacity(n_po.min(1 << 20));
        for _ in 0..n_po {
            let k = dec.take::<usize>()?;
            let pv = dec.take::<f64>()?;
            p_overrides.insert(k, pv);
        }
        self.p_overrides = p_overrides;
        let p_state = restore_proj(dec, n)?;
        self.p_engine.proj_import(&p_state);
        self.v_engine = None;
        if dec.take::<u64>()? != 0 {
            let lambda: f64 = dec.take()?;
            let v_state = restore_proj(dec, n)?;
            let mut eng = EllipticSolver::new(
                &self.space,
                lambda,
                &self.vel_dofs,
                self.cfg.precon,
                self.cfg.tol,
                self.cfg.max_iter,
                2,
                self.cfg.proj_depth,
            );
            eng.proj_import(&v_state);
            self.v_engine = Some(eng);
        }
        self.last_stats = StepSolveStats::restore_from(dec)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::{kovasznay, poiseuille_u};
    use nkg_mesh::quad::QuadMesh;

    /// Body-force-driven Poiseuille flow in a periodic channel relaxes to
    /// the exact parabola (which is in the polynomial space, so the error
    /// floor is the CG tolerance).
    #[test]
    fn poiseuille_steady_state() {
        let mesh = QuadMesh::rectangle(2, 2, 0.0, 2.0, 0.0, 1.0);
        let space = Space2d::new(mesh, 4, true);
        let (nu, f0, h) = (0.5, 0.4, 1.0);
        let cfg = NsConfig {
            nu,
            dt: 5e-3,
            time_order: 2,
            tol: 1e-12,
            max_iter: 4000,
            ..NsConfig::default()
        };
        let mut ns = NsSolver2d::new(
            space,
            cfg,
            |t| t == BoundaryTag::Wall,
            |_, _, _| (0.0, 0.0),
            |_| false,
            |_, _, _| 0.0,
            move |_, _, _| (f0, 0.0),
        );
        for _ in 0..600 {
            ns.step();
        }
        let err = ns.space.l2_error(&ns.u, |_, y| poiseuille_u(y, f0, nu, h));
        assert!(err < 1e-7, "Poiseuille error {err}");
        let verr = ns.space.l2_norm(&ns.v);
        assert!(verr < 1e-8, "cross-flow {verr}");
    }

    /// Kovasznay flow: initialize with the exact solution and verify the
    /// solver holds it (the residual drift is the splitting error, far
    /// smaller than the solution scale).
    #[test]
    fn kovasznay_is_preserved() {
        let re = 40.0;
        let mesh = QuadMesh::rectangle(3, 4, -0.5, 1.0, -0.5, 1.5);
        let space = Space2d::new(mesh, 6, false);
        let cfg = NsConfig {
            nu: 1.0 / re,
            dt: 2e-3,
            time_order: 2,
            tol: 1e-11,
            max_iter: 6000,
            ..NsConfig::default()
        };
        let mut ns = NsSolver2d::new(
            space,
            cfg,
            |_| true, // velocity Dirichlet on the whole boundary
            move |x, y, _| {
                let (u, v, _) = kovasznay(x, y, re);
                (u, v)
            },
            |_| false,
            |_, _, _| 0.0,
            |_, _, _| (0.0, 0.0),
        );
        ns.set_initial(|x, y| kovasznay(x, y, re).0, |x, y| kovasznay(x, y, re).1);
        for _ in 0..150 {
            ns.step();
        }
        let err_u = ns.space.l2_error(&ns.u, |x, y| kovasznay(x, y, re).0);
        let err_v = ns.space.l2_error(&ns.v, |x, y| kovasznay(x, y, re).1);
        // The error floor is the splitting error of the first-order
        // (homogeneous-Neumann) pressure boundary treatment, O(sqrt(nu dt))
        // in the boundary layer; the solution scale is O(1).
        assert!(err_u < 2e-2, "Kovasznay u error {err_u}");
        assert!(err_v < 2e-2, "Kovasznay v error {err_v}");
        // Divergence stays small relative to the O(10) L2 gradient scale of
        // the Kovasznay field on this domain.
        assert!(ns.divergence_norm() < 1.0);
    }

    /// The first-order scheme must also run and stay stable.
    #[test]
    fn first_order_scheme_stable() {
        let mesh = QuadMesh::rectangle(2, 2, 0.0, 1.0, 0.0, 1.0);
        let space = Space2d::new(mesh, 3, false);
        let cfg = NsConfig {
            nu: 0.1,
            dt: 1e-3,
            time_order: 1,
            ..Default::default()
        };
        let mut ns = NsSolver2d::new(
            space,
            cfg,
            |_| true,
            |_, _, _| (0.0, 0.0),
            |_| false,
            |_, _, _| 0.0,
            |_, _, _| (1.0, 0.0),
        );
        for _ in 0..50 {
            ns.step();
        }
        assert!(ns.kinetic_energy().is_finite());
        assert!(ns.kinetic_energy() > 0.0);
    }

    /// Velocity overrides at boundary DoFs take precedence over the BC
    /// closure — the coupling hook.
    #[test]
    fn velocity_override_applied() {
        let mesh = QuadMesh::rectangle(2, 1, 0.0, 1.0, 0.0, 1.0);
        let space = Space2d::new(mesh, 3, false);
        let mut ns = NsSolver2d::new(
            space,
            NsConfig {
                nu: 0.1,
                dt: 1e-3,
                ..Default::default()
            },
            |t| t == BoundaryTag::Inlet,
            |_, _, _| (1.0, 0.0),
            |t| t == BoundaryTag::Outlet,
            |_, _, _| 0.0,
            |_, _, _| (0.0, 0.0),
        );
        let dofs: Vec<usize> = ns.velocity_bc_dofs().to_vec();
        let map: HashMap<usize, (f64, f64)> = dofs.iter().map(|&d| (d, (7.0, -2.0))).collect();
        ns.set_velocity_override(map);
        ns.step();
        for &d in &dofs {
            assert!((ns.u[d] - 7.0).abs() < 1e-12);
            assert!((ns.v[d] + 2.0).abs() < 1e-12);
        }
    }

    /// Womersley (oscillatory channel) flow: periodic channel driven by
    /// f = A cos(ωt); after the start-up transient decays the solution
    /// must match the analytic Stokes-layer profile in amplitude and phase.
    #[test]
    fn womersley_flow_matches_analytic() {
        use crate::analytic::womersley_u;
        let (amp, omega, nu, h) = (1.0, 4.0, 0.5, 1.0);
        let mesh = QuadMesh::rectangle(2, 3, 0.0, 1.0, 0.0, h);
        let space = Space2d::new(mesh, 5, true);
        let dt = 2.0e-3;
        let cfg = NsConfig {
            nu,
            dt,
            time_order: 2,
            tol: 1e-11,
            max_iter: 4000,
            ..NsConfig::default()
        };
        let mut ns = NsSolver2d::new(
            space,
            cfg,
            |t| t == BoundaryTag::Wall,
            |_, _, _| (0.0, 0.0),
            |_| false,
            |_, _, _| 0.0,
            move |_, _, t| (amp * (omega * t).cos(), 0.0),
        );
        // Start from the analytic solution at t=0 so the homogeneous
        // transient is absent; run two full periods.
        ns.set_initial(|_, y| womersley_u(y, 0.0, amp, omega, nu, h), |_, _| 0.0);
        let period = 2.0 * std::f64::consts::PI / omega;
        let steps = (2.0 * period / dt).round() as usize;
        for _ in 0..steps {
            ns.step();
        }
        let t = ns.time;
        let err = ns
            .space
            .l2_error(&ns.u, |_, y| womersley_u(y, t, amp, omega, nu, h));
        // Amplitude scale of the Womersley profile:
        let scale = amp / omega;
        assert!(
            err < 0.02 * scale,
            "Womersley error {err} vs amplitude scale {scale}"
        );
    }

    /// Snapshot mid-run, restore into a freshly constructed solver,
    /// continue both: fields stay bitwise identical (the solver is fully
    /// deterministic, so this checks the snapshot captures *all* evolving
    /// state, including the multistep histories).
    #[test]
    fn checkpoint_resume_is_bitwise() {
        let build = || {
            let mesh = QuadMesh::rectangle(2, 2, 0.0, 2.0, 0.0, 1.0);
            let space = Space2d::new(mesh, 4, true);
            let cfg = NsConfig {
                nu: 0.5,
                dt: 5e-3,
                time_order: 2,
                tol: 1e-12,
                max_iter: 4000,
                ..NsConfig::default()
            };
            NsSolver2d::new(
                space,
                cfg,
                |t| t == BoundaryTag::Wall,
                |_, _, _| (0.0, 0.0),
                |_| false,
                |_, _, _| 0.0,
                |_, _, _| (0.4, 0.0),
            )
        };
        let mut reference = build();
        for _ in 0..7 {
            reference.step();
        }
        let bytes = nkg_ckpt::snapshot_bytes(&reference);
        let mut resumed = build();
        nkg_ckpt::restore_bytes(&mut resumed, &bytes).unwrap();
        for _ in 0..5 {
            reference.step();
            resumed.step();
        }
        for i in 0..reference.space.nglobal {
            assert_eq!(reference.u[i].to_bits(), resumed.u[i].to_bits(), "u[{i}]");
            assert_eq!(reference.v[i].to_bits(), resumed.v[i].to_bits(), "v[{i}]");
            assert_eq!(reference.p[i].to_bits(), resumed.p[i].to_bits(), "p[{i}]");
        }
        assert_eq!(reference.time.to_bits(), resumed.time.to_bits());
        assert_eq!(reference.cg_iterations, resumed.cg_iterations);
    }

    /// A snapshot refuses to restore into a solver with a different
    /// discretization or time step.
    #[test]
    fn checkpoint_refuses_different_dt() {
        let build = |dt: f64| {
            let mesh = QuadMesh::rectangle(2, 2, 0.0, 1.0, 0.0, 1.0);
            let space = Space2d::new(mesh, 3, false);
            NsSolver2d::new(
                space,
                NsConfig {
                    dt,
                    ..Default::default()
                },
                |_| true,
                |_, _, _| (0.0, 0.0),
                |_| false,
                |_, _, _| 0.0,
                |_, _, _| (0.0, 0.0),
            )
        };
        let a = build(1e-3);
        let bytes = nkg_ckpt::snapshot_bytes(&a);
        let mut b = build(2e-3);
        assert!(matches!(
            nkg_ckpt::restore_bytes(&mut b, &bytes),
            Err(CkptError::Mismatch(_))
        ));
    }

    /// Projection warm starts cut the cumulative CG work of a time-varying
    /// run without changing the physics beyond the solver tolerance, and
    /// per-step telemetry is populated.
    #[test]
    fn projection_warm_start_reduces_ns_iterations() {
        let run = |proj_depth: usize| {
            let mesh = QuadMesh::rectangle(2, 2, 0.0, 1.0, 0.0, 1.0);
            let space = Space2d::new(mesh, 4, false);
            let cfg = NsConfig {
                nu: 0.05,
                dt: 2e-3,
                proj_depth,
                ..NsConfig::default()
            };
            let mut ns = NsSolver2d::new(
                space,
                cfg,
                |_| true,
                |_, _, _| (0.0, 0.0),
                |_| false,
                |_, _, _| 0.0,
                |_, _, t| ((4.0 * t).cos(), (3.0 * t).sin()),
            );
            for _ in 0..20 {
                ns.step();
            }
            ns
        };
        let cold = run(0);
        let warm = run(8);
        assert!(
            warm.cg_iterations < cold.cg_iterations,
            "warm {} vs cold {}",
            warm.cg_iterations,
            cold.cg_iterations
        );
        let st = warm.last_step_stats();
        assert!(st.pressure_iterations > 0 || st.pressure_residual >= 0.0);
        assert!(st.pressure_proj_dim > 0);
        assert!(!st.breakdown);
        // Same flow either way (both solve to the same tolerance).
        for i in 0..warm.space.nglobal {
            assert!((warm.u[i] - cold.u[i]).abs() < 1e-7);
            assert!((warm.v[i] - cold.v[i]).abs() < 1e-7);
        }
    }

    /// Zero initial condition, zero forcing, zero BCs stays identically zero.
    #[test]
    fn zero_flow_stays_zero() {
        let mesh = QuadMesh::rectangle(2, 2, 0.0, 1.0, 0.0, 1.0);
        let space = Space2d::new(mesh, 3, false);
        let mut ns = NsSolver2d::new(
            space,
            NsConfig::default(),
            |_| true,
            |_, _, _| (0.0, 0.0),
            |_| false,
            |_, _, _| 0.0,
            |_, _, _| (0.0, 0.0),
        );
        for _ in 0..5 {
            ns.step();
        }
        assert!(ns.kinetic_energy() < 1e-20);
    }
}
