//! Analytic reference solutions for solver validation.

use std::f64::consts::PI;

/// Kovasznay flow (steady 2D Navier–Stokes behind a grid) at Reynolds
/// number `re`: returns `(u, v, p)` at `(x, y)`.
///
/// `λ = Re/2 − sqrt(Re²/4 + 4π²)`;
/// `u = 1 − e^{λx} cos 2πy`, `v = (λ/2π) e^{λx} sin 2πy`,
/// `p = ½(1 − e^{2λx})`.
pub fn kovasznay(x: f64, y: f64, re: f64) -> (f64, f64, f64) {
    let lam = re / 2.0 - (re * re / 4.0 + 4.0 * PI * PI).sqrt();
    let e = (lam * x).exp();
    (
        1.0 - e * (2.0 * PI * y).cos(),
        lam / (2.0 * PI) * e * (2.0 * PI * y).sin(),
        0.5 * (1.0 - (2.0 * lam * x).exp()),
    )
}

/// Steady plane Poiseuille profile in a channel `0 ≤ y ≤ h` driven by a
/// uniform streamwise body force `f`: `u(y) = f y (h − y) / (2ν)`.
pub fn poiseuille_u(y: f64, f: f64, nu: f64, h: f64) -> f64 {
    f * y * (h - y) / (2.0 * nu)
}

/// Womersley (oscillatory channel) flow: the exact velocity in a channel
/// `0 ≤ y ≤ h` driven by the body force `f(t) = A cos(ωt)`, after initial
/// transients. Returns `u(y, t)`.
///
/// With `k = sqrt(iω/ν)` the complex amplitude is
/// `û(y) = (A/(iω)) [1 − cosh(k(y − h/2)) / cosh(k h/2)]`, and
/// `u = Re[û e^{iωt}]`. Evaluated here with real arithmetic via the
/// complex-cosh expansion.
pub fn womersley_u(y: f64, t: f64, amp: f64, omega: f64, nu: f64, h: f64) -> f64 {
    // k = sqrt(i ω/ν) = sqrt(ω/2ν) (1 + i)
    let s = (omega / (2.0 * nu)).sqrt();
    let (kr, ki) = (s, s);
    // z = k (y - h/2); w = k h/2
    let zr = kr * (y - h / 2.0);
    let zi = ki * (y - h / 2.0);
    let wr = kr * h / 2.0;
    let wi = ki * h / 2.0;
    // cosh(z) for complex z.
    let cosh = |re: f64, im: f64| -> (f64, f64) { (re.cosh() * im.cos(), re.sinh() * im.sin()) };
    let (czr, czi) = cosh(zr, zi);
    let (cwr, cwi) = cosh(wr, wi);
    // ratio = cosh(z)/cosh(w)
    let denom = cwr * cwr + cwi * cwi;
    let rr = (czr * cwr + czi * cwi) / denom;
    let ri = (czi * cwr - czr * cwi) / denom;
    // û = (A/(iω)) (1 - ratio) = -(iA/ω)(1 - ratio)
    let ur = -amp / omega * -(0.0 - ri); // Re[-i(1-r)] = -(Im(1-r)) = ri
    let ui = -amp / omega * (1.0 - rr); // Im[-i(1-r)] = -(Re(1-r)) = rr-1 ... see below
                                        // u(t) = Re[û e^{iωt}] = ur cos ωt − ui sin ωt
    let (c, s_) = ((omega * t).cos(), (omega * t).sin());
    ur * c - ui * s_
}

/// Steady Hagen–Poiseuille profile in a circular pipe of radius `r0`
/// driven by a uniform body force `f`: `u(r) = f (r0² − r²) / (4ν)`.
pub fn pipe_poiseuille_u(r: f64, f: f64, nu: f64, r0: f64) -> f64 {
    f * (r0 * r0 - r * r) / (4.0 * nu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kovasznay_satisfies_continuity() {
        // ∂u/∂x + ∂v/∂y = 0, checked by finite differences.
        let re = 40.0;
        let h = 1e-6;
        for &(x, y) in &[(0.0, 0.2), (0.5, -0.3), (0.9, 1.1)] {
            let dudx = (kovasznay(x + h, y, re).0 - kovasznay(x - h, y, re).0) / (2.0 * h);
            let dvdy = (kovasznay(x, y + h, re).1 - kovasznay(x, y - h, re).1) / (2.0 * h);
            assert!((dudx + dvdy).abs() < 1e-6, "div at ({x},{y})");
        }
    }

    #[test]
    fn kovasznay_satisfies_momentum() {
        // u u_x + v u_y = -p_x + ν ∇²u (x-momentum), via finite differences.
        let re = 40.0;
        let nu = 1.0 / re;
        let h = 1e-5;
        let (x, y) = (0.3, 0.4);
        let f = |x: f64, y: f64| kovasznay(x, y, re);
        let (u, v, _) = f(x, y);
        let ux = (f(x + h, y).0 - f(x - h, y).0) / (2.0 * h);
        let uy = (f(x, y + h).0 - f(x, y - h).0) / (2.0 * h);
        let px = (f(x + h, y).2 - f(x - h, y).2) / (2.0 * h);
        let uxx = (f(x + h, y).0 - 2.0 * u + f(x - h, y).0) / (h * h);
        let uyy = (f(x, y + h).0 - 2.0 * u + f(x, y - h).0) / (h * h);
        let resid = u * ux + v * uy + px - nu * (uxx + uyy);
        assert!(resid.abs() < 1e-4, "x-momentum residual {resid}");
    }

    #[test]
    fn poiseuille_max_at_center() {
        let u_mid = poiseuille_u(0.5, 2.0, 0.1, 1.0);
        assert!((u_mid - 2.0 * 0.25 / 0.2).abs() < 1e-12);
        assert_eq!(poiseuille_u(0.0, 2.0, 0.1, 1.0), 0.0);
        assert_eq!(poiseuille_u(1.0, 2.0, 0.1, 1.0), 0.0);
    }

    #[test]
    fn womersley_no_slip_and_low_freq_limit() {
        let (amp, nu, h) = (1.0, 0.8, 1.0);
        // Walls: u = 0 for all t.
        for &t in &[0.0, 0.3, 1.7] {
            assert!(womersley_u(0.0, t, amp, 0.5, nu, h).abs() < 1e-12);
            assert!(womersley_u(h, t, amp, 0.5, nu, h).abs() < 1e-12);
        }
        // ω → 0: quasi-steady Poiseuille response u ≈ f(t) y(h-y)/(2ν).
        let omega = 1e-3;
        let t = 0.0; // f(0) = amp
        let u = womersley_u(0.5, t, amp, omega, nu, h);
        let quasi = poiseuille_u(0.5, amp, nu, h);
        assert!(
            (u - quasi).abs() < 0.01 * quasi.abs(),
            "low-freq limit: {u} vs {quasi}"
        );
    }

    #[test]
    fn womersley_satisfies_pde() {
        // u_t = A cos(ωt) + ν u_yy, finite differences in t and y.
        let (amp, omega, nu, h) = (2.0, 3.0, 0.25, 1.0);
        let dt = 1e-6;
        let dy = 1e-4;
        for &(y, t) in &[(0.3, 0.9), (0.61, 2.2)] {
            let ut = (womersley_u(y, t + dt, amp, omega, nu, h)
                - womersley_u(y, t - dt, amp, omega, nu, h))
                / (2.0 * dt);
            let uyy = (womersley_u(y + dy, t, amp, omega, nu, h)
                - 2.0 * womersley_u(y, t, amp, omega, nu, h)
                + womersley_u(y - dy, t, amp, omega, nu, h))
                / (dy * dy);
            let resid = ut - amp * (omega * t).cos() - nu * uyy;
            assert!(resid.abs() < 1e-3, "residual {resid} at (y={y}, t={t})");
        }
    }

    #[test]
    fn pipe_poiseuille_profile() {
        assert_eq!(pipe_poiseuille_u(1.0, 4.0, 0.5, 1.0), 0.0);
        let center = pipe_poiseuille_u(0.0, 4.0, 0.5, 1.0);
        assert!((center - 2.0).abs() < 1e-12);
    }
}
