//! NεκTαr-1D: a discontinuous-Galerkin solver for the nonlinear 1D
//! blood-flow equations on arterial networks.
//!
//! Model (per segment, area `A`, mean velocity `U`):
//!
//! ```text
//! A_t + (A U)_x = 0
//! U_t + (U²/2 + p/ρ)_x = -k_r U / A          p = β(√A − √A0)
//! ```
//!
//! Characteristics `W₁,₂ = U ± 4c`, `c² = β√A/(2ρ)`; the system is strictly
//! subcritical in physiological regimes, so exactly one characteristic
//! enters each boundary. Spatial discretization: nodal GLL DG with
//! strong-form lifting and upwind (characteristic) interface fluxes;
//! junctions enforce mass conservation and total-pressure continuity via a
//! 6×6 Newton solve; terminals use RCR Windkessel models; time integration
//! is explicit SSP-RK3.
//!
//! This is the model the paper uses to "account for flow dynamics in
//! peripheral arterial networks invisible to the MRI or CT scanners".

use crate::basis::GllBasis;
use nkg_mesh::oned::ArterialNetwork;

/// Inflow prescription at the network root.
pub enum Inflow {
    /// Prescribed mean velocity `U(t)`.
    Velocity(Box<dyn Fn(f64) -> f64 + Send>),
    /// Prescribed volumetric flow `Q(t)` (converted using the current area).
    Flow(Box<dyn Fn(f64) -> f64 + Send>),
}

/// 1D arterial network solver.
pub struct Solver1d {
    /// The network geometry/parameters.
    pub net: ArterialNetwork,
    /// Blood density.
    pub rho: f64,
    /// Wall friction coefficient `k_r` (momentum sink `-k_r U/A`).
    pub friction: f64,
    /// DG elements per segment.
    pub nel: usize,
    basis: GllBasis,
    /// Area DoFs per segment (`nel·(p+1)` each).
    pub a: Vec<Vec<f64>>,
    /// Velocity DoFs per segment.
    pub u: Vec<Vec<f64>>,
    /// Windkessel compliance pressures per segment (terminals only).
    pub wk_pressure: Vec<f64>,
    inflow: Inflow,
    /// Simulated time.
    pub time: f64,
}

impl Solver1d {
    /// Create a solver with all segments at their reference area and zero
    /// velocity.
    pub fn new(
        net: ArterialNetwork,
        p_order: usize,
        nel: usize,
        rho: f64,
        friction: f64,
        inflow: Inflow,
    ) -> Self {
        net.validate().expect("invalid network");
        let basis = GllBasis::new(p_order);
        let n = nel * (p_order + 1);
        let a = net.segments.iter().map(|s| vec![s.area0; n]).collect();
        let u = net.segments.iter().map(|_| vec![0.0; n]).collect();
        let wk_pressure = vec![0.0; net.len()];
        Self {
            net,
            rho,
            friction,
            nel,
            basis,
            a,
            u,
            wk_pressure,
            inflow,
            time: 0.0,
        }
    }

    /// Replace the root inflow prescription (used by the 3D→1D coupling to
    /// slave the network to a continuum outlet flux).
    pub fn set_inflow(&mut self, inflow: Inflow) {
        self.inflow = inflow;
    }

    /// Wave speed at area `a` in segment `s`.
    pub fn wave_speed(&self, s: usize, a: f64) -> f64 {
        (self.net.segments[s].beta * a.sqrt() / (2.0 * self.rho)).sqrt()
    }

    /// Transmural pressure at area `a` in segment `s`.
    pub fn pressure(&self, s: usize, a: f64) -> f64 {
        self.net.segments[s].pressure(a)
    }

    /// Stable time step estimate: `CFL · min(Δx / (|U| + c))`.
    pub fn cfl_dt(&self, cfl: f64) -> f64 {
        let p = self.basis.p;
        let mut dt = f64::MAX;
        for s in 0..self.net.len() {
            let h = self.net.segments[s].length / self.nel as f64;
            let dx = h / (p * p).max(1) as f64;
            for (&a, &u) in self.a[s].iter().zip(&self.u[s]) {
                let speed = u.abs() + self.wave_speed(s, a);
                dt = dt.min(cfl * dx / speed.max(1e-12));
            }
        }
        dt
    }

    /// Advance one SSP-RK3 step of size `dt`.
    pub fn step(&mut self, dt: f64) {
        let (a0, u0) = (self.a.clone(), self.u.clone());
        // Stage 1.
        let (ra, ru) = self.rhs(self.time);
        self.axpy_state(&a0, &u0, 1.0, &ra, &ru, dt);
        // Stage 2: q2 = 3/4 q0 + 1/4 (q1 + dt L(q1)).
        let (ra, ru) = self.rhs(self.time + dt);
        for s in 0..self.net.len() {
            for i in 0..self.a[s].len() {
                self.a[s][i] = 0.75 * a0[s][i] + 0.25 * (self.a[s][i] + dt * ra[s][i]);
                self.u[s][i] = 0.75 * u0[s][i] + 0.25 * (self.u[s][i] + dt * ru[s][i]);
            }
        }
        // Stage 3: q^{n+1} = 1/3 q0 + 2/3 (q2 + dt L(q2)).
        let (ra, ru) = self.rhs(self.time + 0.5 * dt);
        for s in 0..self.net.len() {
            for i in 0..self.a[s].len() {
                self.a[s][i] = a0[s][i] / 3.0 + 2.0 / 3.0 * (self.a[s][i] + dt * ra[s][i]);
                self.u[s][i] = u0[s][i] / 3.0 + 2.0 / 3.0 * (self.u[s][i] + dt * ru[s][i]);
            }
        }
        // Windkessel compliance update (forward Euler on the slow ODE).
        for s in 0..self.net.len() {
            if let Some(wk) = self.net.terminals[s] {
                let n = self.a[s].len();
                let q = self.a[s][n - 1] * self.u[s][n - 1];
                let dpc = (q - (self.wk_pressure[s] - wk.p_out) / wk.r2) / wk.c;
                self.wk_pressure[s] += dt * dpc;
            }
        }
        self.time += dt;
    }

    fn axpy_state(
        &mut self,
        a0: &[Vec<f64>],
        u0: &[Vec<f64>],
        c0: f64,
        ra: &[Vec<f64>],
        ru: &[Vec<f64>],
        dt: f64,
    ) {
        for s in 0..self.net.len() {
            for i in 0..self.a[s].len() {
                self.a[s][i] = c0 * a0[s][i] + dt * ra[s][i];
                self.u[s][i] = c0 * u0[s][i] + dt * ru[s][i];
            }
        }
    }

    /// Physical flux `F = [A U, U²/2 + p/ρ]`.
    fn flux(&self, s: usize, a: f64, u: f64) -> (f64, f64) {
        (a * u, 0.5 * u * u + self.pressure(s, a) / self.rho)
    }

    /// Upwind interface state from left/right traces via Riemann invariants.
    fn riemann(&self, s: usize, al: f64, ul: f64, ar: f64, ur: f64) -> (f64, f64) {
        let w1 = ul + 4.0 * self.wave_speed(s, al);
        let w2 = ur - 4.0 * self.wave_speed(s, ar);
        self.state_from_invariants(s, w1, w2)
    }

    /// `(A, U)` from the invariant pair.
    fn state_from_invariants(&self, s: usize, w1: f64, w2: f64) -> (f64, f64) {
        let c = (w1 - w2) / 8.0;
        let u = 0.5 * (w1 + w2);
        // c² = β √A / (2ρ)  ⇒  A = (2ρ c² / β)².
        let beta = self.net.segments[s].beta;
        let a = (2.0 * self.rho * c * c / beta).powi(2);
        (a, u)
    }

    /// Spatial RHS for the whole network.
    #[allow(clippy::type_complexity)]
    fn rhs(&mut self, t: f64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let nseg = self.net.len();
        let np = self.basis.n();
        let mut ra: Vec<Vec<f64>> = (0..nseg).map(|s| vec![0.0; self.a[s].len()]).collect();
        let mut ru = ra.clone();
        // Pre-compute the boundary states of every segment.
        let inlet_states = self.segment_boundary_states(t);
        for s in 0..nseg {
            let h = self.net.segments[s].length / self.nel as f64;
            let jac = h / 2.0;
            for e in 0..self.nel {
                let off = e * np;
                let a_e = &self.a[s][off..off + np];
                let u_e = &self.u[s][off..off + np];
                // Volume term: -dF/dx (collocation derivative of fluxes).
                let mut f1 = vec![0.0; np];
                let mut f2 = vec![0.0; np];
                for i in 0..np {
                    let (fa, fu) = self.flux(s, a_e[i], u_e[i]);
                    f1[i] = fa;
                    f2[i] = fu;
                }
                for i in 0..np {
                    let mut d1 = 0.0;
                    let mut d2 = 0.0;
                    for m in 0..np {
                        d1 += self.basis.d[i * np + m] * f1[m];
                        d2 += self.basis.d[i * np + m] * f2[m];
                    }
                    ra[s][off + i] = -d1 / jac;
                    ru[s][off + i] = -d2 / jac - self.friction * u_e[i] / a_e[i].max(1e-30);
                }
                // Interface fluxes.
                let (astar_l, ustar_l) = if e == 0 {
                    inlet_states[s].0
                } else {
                    let lo = off - 1; // last node of previous element
                    self.riemann(s, self.a[s][lo], self.u[s][lo], a_e[0], u_e[0])
                };
                let (astar_r, ustar_r) = if e == self.nel - 1 {
                    inlet_states[s].1
                } else {
                    let ro = off + np; // first node of next element
                    self.riemann(s, a_e[np - 1], u_e[np - 1], self.a[s][ro], self.u[s][ro])
                };
                // Strong-form DG lifting at the two end nodes:
                // dq/dt += -(F(q⁻) - F*)·n / (w J) with n = -1 left, +1 right.
                let (fl1, fl2) = self.flux(s, astar_l, ustar_l);
                let (fr1, fr2) = self.flux(s, astar_r, ustar_r);
                let w0 = self.basis.weights[0] * jac;
                let wp = self.basis.weights[np - 1] * jac;
                ra[s][off] -= (f1[0] - fl1) / w0;
                ru[s][off] -= (f2[0] - fl2) / w0;
                ra[s][off + np - 1] += (f1[np - 1] - fr1) / wp;
                ru[s][off + np - 1] += (f2[np - 1] - fr2) / wp;
            }
        }
        (ra, ru)
    }

    /// The upwind state at each segment's two ends: `(left, right)` states,
    /// resolving inflow, junction and Windkessel conditions.
    #[allow(clippy::type_complexity)]
    fn segment_boundary_states(&mut self, t: f64) -> Vec<((f64, f64), (f64, f64))> {
        let nseg = self.net.len();
        let mut out = vec![((0.0, 0.0), (0.0, 0.0)); nseg];
        // Root inflow.
        {
            let a0 = self.a[0][0];
            let u0 = self.u[0][0];
            let w2 = u0 - 4.0 * self.wave_speed(0, a0);
            let u_target = match &self.inflow {
                Inflow::Velocity(f) => f(t),
                Inflow::Flow(f) => f(t) / a0,
            };
            let w1 = 2.0 * u_target - w2;
            out[0].0 = self.state_from_invariants(0, w1, w2);
        }
        // Junction and terminal conditions per segment end.
        let children: Vec<Vec<usize>> = self.net.children.clone();
        for s in 0..nseg {
            let n = self.a[s].len();
            let (a_end, u_end) = (self.a[s][n - 1], self.u[s][n - 1]);
            if let Some(wk) = self.net.terminals[s] {
                out[s].1 = self.windkessel_state(s, a_end, u_end, &wk);
            } else {
                let ch = &children[s];
                assert_eq!(ch.len(), 2, "only bifurcations supported");
                let d0 = ch[0];
                let d1 = ch[1];
                let (ad0, ud0) = (self.a[d0][0], self.u[d0][0]);
                let (ad1, ud1) = (self.a[d1][0], self.u[d1][0]);
                let (parent_state, s0, s1) =
                    self.junction_states(s, a_end, u_end, d0, ad0, ud0, d1, ad1, ud1);
                out[s].1 = parent_state;
                out[d0].0 = s0;
                out[d1].0 = s1;
            }
            // Non-root segments' left states are set by their parent's
            // junction solve above; the root's was set by the inflow.
        }
        out
    }

    /// Windkessel outlet: Newton on (A*, U*) satisfying the outgoing
    /// invariant and `p(A*) = p_c + R1 A* U*`.
    fn windkessel_state(
        &self,
        s: usize,
        a_int: f64,
        u_int: f64,
        wk: &nkg_mesh::oned::Windkessel,
    ) -> (f64, f64) {
        let w1 = u_int + 4.0 * self.wave_speed(s, a_int);
        let pc = self.wk_pressure[s];
        let beta = self.net.segments[s].beta;
        let (mut a, mut u) = (a_int, u_int);
        for _ in 0..50 {
            let c = self.wave_speed(s, a);
            let f1 = u + 4.0 * c - w1;
            let f2 = self.pressure(s, a) - pc - wk.r1 * a * u;
            // Jacobian: dc/dA = c/(4A); dp/dA = β/(2√A).
            let j11 = c / a; // ∂f1/∂A = 4·c/(4A)
            let j12 = 1.0;
            let j21 = beta / (2.0 * a.sqrt()) - wk.r1 * u;
            let j22 = -wk.r1 * a;
            let det = j11 * j22 - j12 * j21;
            if det.abs() < 1e-30 {
                break;
            }
            let da = (f1 * j22 - f2 * j12) / det;
            let du = (f2 * j11 - f1 * j21) / det;
            a -= da;
            u -= du;
            a = a.max(1e-12);
            if da.abs() / a.max(1e-12) + du.abs() < 1e-12 {
                break;
            }
        }
        (a, u)
    }

    /// Bifurcation: Newton on 6 unknowns (A,U for parent end and both
    /// daughter starts) enforcing three outgoing invariants, mass
    /// conservation and total-pressure continuity.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn junction_states(
        &self,
        sp: usize,
        ap_i: f64,
        up_i: f64,
        d0: usize,
        a0_i: f64,
        u0_i: f64,
        d1: usize,
        a1_i: f64,
        u1_i: f64,
    ) -> ((f64, f64), (f64, f64), (f64, f64)) {
        let w1p = up_i + 4.0 * self.wave_speed(sp, ap_i);
        let w20 = u0_i - 4.0 * self.wave_speed(d0, a0_i);
        let w21 = u1_i - 4.0 * self.wave_speed(d1, a1_i);
        // x = [Ap, Up, A0, U0, A1, U1]
        let mut x = [ap_i, up_i, a0_i, u0_i, a1_i, u1_i];
        let rho = self.rho;
        for _ in 0..60 {
            let cp = self.wave_speed(sp, x[0]);
            let c0 = self.wave_speed(d0, x[2]);
            let c1 = self.wave_speed(d1, x[4]);
            let pp = self.pressure(sp, x[0]);
            let p0 = self.pressure(d0, x[2]);
            let p1 = self.pressure(d1, x[4]);
            let f = [
                x[1] + 4.0 * cp - w1p,
                x[3] - 4.0 * c0 - w20,
                x[5] - 4.0 * c1 - w21,
                x[0] * x[1] - x[2] * x[3] - x[4] * x[5],
                pp + 0.5 * rho * x[1] * x[1] - p0 - 0.5 * rho * x[3] * x[3],
                pp + 0.5 * rho * x[1] * x[1] - p1 - 0.5 * rho * x[5] * x[5],
            ];
            // dp/dA = β/(2√A); dc/dA = c/(4A).
            let dp_p = self.net.segments[sp].beta / (2.0 * x[0].sqrt());
            let dp_0 = self.net.segments[d0].beta / (2.0 * x[2].sqrt());
            let dp_1 = self.net.segments[d1].beta / (2.0 * x[4].sqrt());
            let mut j = [[0.0f64; 6]; 6];
            j[0][0] = cp / x[0];
            j[0][1] = 1.0;
            j[1][2] = -c0 / x[2];
            j[1][3] = 1.0;
            j[2][4] = -c1 / x[4];
            j[2][5] = 1.0;
            j[3][0] = x[1];
            j[3][1] = x[0];
            j[3][2] = -x[3];
            j[3][3] = -x[2];
            j[3][4] = -x[5];
            j[3][5] = -x[4];
            j[4][0] = dp_p;
            j[4][1] = rho * x[1];
            j[4][2] = -dp_0;
            j[4][3] = -rho * x[3];
            j[5][0] = dp_p;
            j[5][1] = rho * x[1];
            j[5][4] = -dp_1;
            j[5][5] = -rho * x[5];
            let dx = linsolve6(&mut j, &f);
            let mut maxrel = 0.0f64;
            for i in 0..6 {
                x[i] -= dx[i];
                if i % 2 == 0 {
                    x[i] = x[i].max(1e-12);
                }
                maxrel = maxrel.max(dx[i].abs() / x[i].abs().max(1e-9));
            }
            if maxrel < 1e-12 {
                break;
            }
        }
        ((x[0], x[1]), (x[2], x[3]), (x[4], x[5]))
    }

    /// Total blood volume `Σ ∫A dx`.
    pub fn total_volume(&self) -> f64 {
        let np = self.basis.n();
        let mut vol = 0.0;
        for s in 0..self.net.len() {
            let jac = self.net.segments[s].length / self.nel as f64 / 2.0;
            for e in 0..self.nel {
                for i in 0..np {
                    vol += self.basis.weights[i] * jac * self.a[s][e * np + i];
                }
            }
        }
        vol
    }

    /// Flow rate `A·U` at the inlet of segment `s`.
    pub fn inlet_flow(&self, s: usize) -> f64 {
        self.a[s][0] * self.u[s][0]
    }

    /// Flow rate at the outlet of segment `s`.
    pub fn outlet_flow(&self, s: usize) -> f64 {
        let n = self.a[s].len();
        self.a[s][n - 1] * self.u[s][n - 1]
    }

    /// Pressure at the inlet of segment `s`.
    pub fn inlet_pressure(&self, s: usize) -> f64 {
        self.pressure(s, self.a[s][0])
    }
}

/// Solve a 6×6 linear system in place (Gaussian elimination with partial
/// pivoting); returns the solution of `J dx = f`.
fn linsolve6(j: &mut [[f64; 6]; 6], f: &[f64; 6]) -> [f64; 6] {
    let mut b = *f;
    for col in 0..6 {
        // Pivot.
        let mut piv = col;
        for r in col + 1..6 {
            if j[r][col].abs() > j[piv][col].abs() {
                piv = r;
            }
        }
        j.swap(col, piv);
        b.swap(col, piv);
        let d = j[col][col];
        assert!(d.abs() > 1e-300, "singular junction Jacobian");
        for r in col + 1..6 {
            let m = j[r][col] / d;
            for c in col..6 {
                j[r][c] -= m * j[col][c];
            }
            b[r] -= m * b[col];
        }
    }
    let mut x = [0.0f64; 6];
    for row in (0..6).rev() {
        let mut s = b[row];
        for c in row + 1..6 {
            s -= j[row][c] * x[c];
        }
        x[row] = s / j[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkg_mesh::oned::Windkessel;

    fn vessel(beta: f64) -> ArterialNetwork {
        ArterialNetwork::single_vessel(
            0.2,
            1.0e-4,
            beta,
            Windkessel {
                r1: 1.0e7,
                c: 1.0e-9,
                r2: 9.0e7,
                p_out: 0.0,
            },
        )
    }

    #[test]
    fn invariants_round_trip() {
        let net = vessel(2.0e5);
        let s = Solver1d::new(net, 4, 3, 1050.0, 0.0, Inflow::Velocity(Box::new(|_| 0.0)));
        let (a, u) = (1.3e-4, 0.2);
        let w1 = u + 4.0 * s.wave_speed(0, a);
        let w2 = u - 4.0 * s.wave_speed(0, a);
        let (a2, u2) = s.state_from_invariants(0, w1, w2);
        assert!((a2 - a).abs() < 1e-12 * a);
        assert!((u2 - u).abs() < 1e-12);
    }

    #[test]
    fn pulse_travels_at_wave_speed() {
        // Put a small area bump mid-vessel, zero inflow; track its peak.
        let net = vessel(2.0e5);
        let mut s = Solver1d::new(net, 6, 20, 1050.0, 0.0, Inflow::Velocity(Box::new(|_| 0.0)));
        let np = 7;
        let length = 0.2;
        let n_total = 20 * np;
        // Node coordinates (element-wise GLL).
        let mut xs = vec![0.0; n_total];
        for e in 0..20 {
            for i in 0..np {
                let h = length / 20.0;
                xs[e * np + i] = e as f64 * h + (s.basis.points[i] + 1.0) / 2.0 * h;
            }
        }
        let a0 = 1.0e-4;
        for (i, &x) in xs.iter().enumerate() {
            s.a[0][i] = a0 * (1.0 + 0.01 * (-((x - 0.05) / 0.01).powi(2)).exp());
        }
        let c0 = s.wave_speed(0, a0);
        let dt = s.cfl_dt(0.3);
        let t_final = 0.05 / c0; // travel ~0.05 m
        let steps = (t_final / dt).ceil() as usize;
        let dt = t_final / steps as f64;
        for _ in 0..steps {
            s.step(dt);
        }
        // Peak location: a forward wave of height/2 at 0.05+c0*t = 0.10 m
        // (the initial bump splits into forward and backward waves).
        let fwd_peak = xs
            .iter()
            .zip(&s.a[0])
            .filter(|&(&x, _)| x > 0.075)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(&x, _)| x)
            .unwrap();
        assert!(
            (fwd_peak - 0.10).abs() < 0.01,
            "forward peak at {fwd_peak}, expected ~0.10 (c0 = {c0})"
        );
    }

    #[test]
    fn steady_flow_matches_windkessel_resistance() {
        // Stiff vessel; R1 matched to the characteristic impedance
        // Z_c = ρ c0 / A0 so incident waves are absorbed instead of
        // reflecting (the standard RCR tuning), and small compliances so
        // the transient dies within the simulated 0.15 s.
        let (area0, beta, rho) = (1.0e-4f64, 2.0e7f64, 1050.0f64);
        let c0 = (beta * area0.sqrt() / (2.0 * rho)).sqrt();
        let zc = rho * c0 / area0;
        let r2 = 1.0e8;
        let net = ArterialNetwork::single_vessel(
            0.2,
            area0,
            beta,
            Windkessel {
                r1: zc,
                c: 1.0e-10,
                r2,
                p_out: 0.0,
            },
        );
        let u_in = 0.1;
        let mut s = Solver1d::new(
            net,
            4,
            6,
            1050.0,
            0.0,
            Inflow::Velocity(Box::new(move |t: f64| u_in * (1.0 - (-t / 0.005).exp()))),
        );
        let dt = s.cfl_dt(0.25);
        let steps = (0.4 / dt) as usize;
        for _ in 0..steps {
            s.step(dt);
        }
        let q = s.outlet_flow(0);
        let q_in = s.inlet_flow(0);
        assert!(
            (q - q_in).abs() < 0.02 * q_in.abs(),
            "steady flow not uniform: in {q_in}, out {q}"
        );
        // Inlet pressure ≈ (R1 + R2) Q at steady state.
        let p_in = s.inlet_pressure(0);
        let expect = (zc + r2) * q;
        assert!(
            (p_in - expect).abs() < 0.05 * expect,
            "p_in {p_in} vs RQ {expect}"
        );
    }

    #[test]
    fn bifurcation_conserves_mass() {
        let net = ArterialNetwork::fractal_tree(2, 2.0e-3, 20.0, 2.0, 2.0e5, 5.0e7);
        let mut s = Solver1d::new(
            net,
            4,
            4,
            1050.0,
            0.0,
            Inflow::Velocity(Box::new(|t: f64| 0.1 * (1.0 - (-t / 0.005).exp()))),
        );
        let dt = s.cfl_dt(0.25);
        for _ in 0..((0.4 / dt) as usize) {
            s.step(dt);
        }
        let q_parent = s.outlet_flow(0);
        let q_daughters: f64 = s.net.children[0].iter().map(|&d| s.inlet_flow(d)).sum();
        assert!(
            (q_parent - q_daughters).abs() < 0.02 * q_parent.abs().max(1e-12),
            "junction mass: parent {q_parent}, daughters {q_daughters}"
        );
        // Flow split evenly by symmetry.
        let q0 = s.inlet_flow(s.net.children[0][0]);
        let q1 = s.inlet_flow(s.net.children[0][1]);
        assert!((q0 - q1).abs() < 1e-6 * q0.abs().max(1e-12));
    }

    #[test]
    fn volume_conserved_with_closed_ends() {
        // Zero inflow, short time: volume change only through the
        // Windkessel outlet, which sees ~zero flow.
        let net = vessel(2.0e5);
        let mut s = Solver1d::new(net, 4, 6, 1050.0, 0.0, Inflow::Velocity(Box::new(|_| 0.0)));
        let v0 = s.total_volume();
        let dt = s.cfl_dt(0.3);
        for _ in 0..50 {
            s.step(dt);
        }
        let v1 = s.total_volume();
        assert!((v1 - v0).abs() < 1e-9 * v0, "volume drift {}", v1 - v0);
    }

    #[test]
    fn cfl_dt_scales_with_stiffness() {
        let soft = Solver1d::new(
            vessel(1.0e5),
            4,
            4,
            1050.0,
            0.0,
            Inflow::Velocity(Box::new(|_| 0.0)),
        );
        let stiff = Solver1d::new(
            vessel(4.0e5),
            4,
            4,
            1050.0,
            0.0,
            Inflow::Velocity(Box::new(|_| 0.0)),
        );
        assert!(stiff.cfl_dt(0.5) < soft.cfl_dt(0.5));
    }
}
