//! Spectral element method solvers — the NεκTαr substrate.
//!
//! The paper's continuum component is NεκTαr: a spectral/hp element solver
//! family with (i) a 3D unsteady incompressible Navier–Stokes solver using
//! semi-implicit (stiffly-stable) time stepping and CG-based Helmholtz /
//! Poisson solves, and (ii) a 1D arterial solver for peripheral networks.
//! No SEM library exists in Rust; this crate implements one from scratch:
//!
//! * [`basis`] — Gauss–Lobatto–Legendre quadrature, differentiation and
//!   interpolation;
//! * [`cg`] — matrix-free preconditioned conjugate gradients;
//! * [`interp`] — precomputed point-interpolation tables: static query
//!   sets (interface DoFs, embedded-domain bin midpoints) resolve to one
//!   donor element plus tensor-Lagrange weights at assembly, so every
//!   coupled-step evaluation is a short dense dot product;
//! * [`space2d`] / [`space3d`] — continuous-Galerkin discretizations on
//!   quadrilateral / hexahedral meshes: global numbering (with optional
//!   streamwise periodicity), curvilinear geometric factors, Helmholtz
//!   operators, Jacobi preconditioning and Dirichlet lifting;
//! * [`ns2d`] / [`ns3d`] — unsteady incompressible Navier–Stokes via the
//!   stiffly-stable velocity-correction splitting (Karniadakis–Israeli–
//!   Orszag), order 1–2 in time;
//! * [`oned`] — the NεκTαr-1D analogue: a discontinuous-Galerkin solver for
//!   the nonlinear 1D blood-flow equations with characteristic upwinding,
//!   bifurcation coupling and RCR Windkessel outlets;
//! * [`analytic`] — Kovasznay, Poiseuille and Womersley reference solutions
//!   used by the validation tests and benches.
//!
//! Verified behaviours (see module tests): spectral p-convergence of the
//! elliptic solves in 2D and 3D, machine-precision steady Poiseuille flow,
//! Kovasznay flow accuracy, Womersley phase/amplitude, and 1D wave speeds
//! matching `c = sqrt(β √A / 2ρ)`.

pub mod analytic;
pub mod basis;
pub mod cg;
pub mod interp;
pub mod ns2d;
pub mod ns3d;
pub mod oned;
pub mod precon;
pub mod space2d;
pub mod space3d;

pub use basis::GllBasis;
pub use cg::{pcg, pcg_ws, CgResult, CgWorkspace};
pub use interp::InterpTable;
pub use ns2d::{NsConfig, NsSolver2d, StepSolveStats};
pub use precon::{
    ApplyScratch, DirichletMask, EllipticSolver, EllipticSpace, LowEnergyPrecon, PreconKind,
    Preconditioner, SolveStats,
};
pub use space2d::Space2d;
pub use space3d::Space3d;
