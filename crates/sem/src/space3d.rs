//! Continuous-Galerkin spectral elements on *structured* hexahedral meshes.
//!
//! The 3D counterpart of [`crate::space2d`]. Global numbering uses the
//! structured layout of [`nkg_mesh::HexMesh::box_mesh`] (elements in
//! `x`-fastest order), which sidesteps general face-orientation matching;
//! geometries may still be curvilinear through vertex mapping (trilinear
//! isoparametric elements, e.g. the mapped tube of Table 2).

use crate::basis::GllBasis;
use crate::cg::CgResult;
use crate::precon::{ApplyScratch, EllipticSolver, EllipticSpace, NodeRole, PreconKind};
use nkg_mesh::hex::HexMesh;
use nkg_mesh::quad::BoundaryTag;

/// Geometric factors of one hex element at its `(P+1)³` GLL nodes
/// (local index `k = (kz·n + ky)·n + kx`).
#[derive(Debug, Clone)]
pub struct ElemGeom3 {
    /// Symmetric stiffness metric `w|J| ∇ξ_a·∇ξ_b`, six unique entries:
    /// `[g11, g12, g13, g22, g23, g33]` each of length `nloc`.
    pub g: [Vec<f64>; 6],
    /// Diagonal mass `w_i w_j w_k |J|`.
    pub mass: Vec<f64>,
    /// `∂ξ_a/∂x_b` (row a, col b) per node, for collocation gradients.
    pub dref: [Vec<f64>; 9],
    /// Physical coordinates of nodes.
    pub xyz: Vec<[f64; 3]>,
}

/// A scalar CG-SEM space on a structured hex mesh.
pub struct Space3d {
    /// The mesh (must come from `box_mesh`-style structured construction,
    /// possibly vertex-mapped).
    pub mesh: HexMesh,
    /// Elements per direction.
    pub dims: [usize; 3],
    /// 1D GLL basis.
    pub basis: GllBasis,
    /// Per-element local→global map.
    pub gmap: Vec<Vec<usize>>,
    /// Global DoF count.
    pub nglobal: usize,
    /// Per-element geometry.
    pub geom: Vec<ElemGeom3>,
    /// DoF multiplicity.
    pub mult: Vec<f64>,
    /// DoF coordinates.
    pub coords: Vec<[f64; 3]>,
}

impl Space3d {
    /// Build the space over a structured `dims = [nx, ny, nz]` mesh of
    /// order `p`, optionally periodic in x.
    pub fn new(mesh: HexMesh, dims: [usize; 3], p: usize, periodic_x: bool) -> Self {
        let [nx, ny, nz] = dims;
        assert_eq!(mesh.num_elems(), nx * ny * nz, "dims mismatch mesh");
        let basis = GllBasis::new(p);
        let n = p + 1;
        // Global structured grid of nodes.
        let gx = if periodic_x { nx * p } else { nx * p + 1 };
        let gy = ny * p + 1;
        let gz = nz * p + 1;
        let nglobal = gx * gy * gz;
        let gid = |ix: usize, iy: usize, iz: usize| ((iz * gy) + iy) * gx + (ix % gx);
        let mut gmap = Vec::with_capacity(mesh.num_elems());
        for ez in 0..nz {
            for ey in 0..ny {
                for ex in 0..nx {
                    let mut map = vec![0usize; n * n * n];
                    for kz in 0..n {
                        for ky in 0..n {
                            for kx in 0..n {
                                let loc = (kz * n + ky) * n + kx;
                                map[loc] = gid(ex * p + kx, ey * p + ky, ez * p + kz);
                            }
                        }
                    }
                    gmap.push(map);
                }
            }
        }
        let mut geom = Vec::with_capacity(mesh.num_elems());
        for verts in &mesh.elems {
            geom.push(elem_geometry3(&mesh, *verts, &basis));
        }
        let mut mult = vec![0.0f64; nglobal];
        let mut coords = vec![[0.0f64; 3]; nglobal];
        for (e, map) in gmap.iter().enumerate() {
            for (k, &g) in map.iter().enumerate() {
                mult[g] += 1.0;
                coords[g] = geom[e].xyz[k];
            }
        }
        Self {
            mesh,
            dims,
            basis,
            gmap,
            nglobal,
            geom,
            mult,
            coords,
        }
    }

    /// Nodes per element.
    pub fn nloc(&self) -> usize {
        let n = self.basis.n();
        n * n * n
    }

    /// Nodal interpolation of a function.
    pub fn project(&self, f: impl Fn(f64, f64, f64) -> f64) -> Vec<f64> {
        self.coords.iter().map(|&[x, y, z]| f(x, y, z)).collect()
    }

    /// Weak right-hand side `(v, f)`.
    pub fn weak_rhs(&self, f: impl Fn(f64, f64, f64) -> f64) -> Vec<f64> {
        let mut out = vec![0.0; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gidx) in map.iter().enumerate() {
                let [x, y, z] = g.xyz[k];
                out[gidx] += g.mass[k] * f(x, y, z);
            }
        }
        out
    }

    /// Assembled diagonal-mass product `M u`.
    pub fn apply_mass(&self, u: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gidx) in map.iter().enumerate() {
                out[gidx] += g.mass[k] * u[gidx];
            }
        }
        out
    }

    /// Domain integral of a nodal field.
    pub fn integrate(&self, u: &[f64]) -> f64 {
        let mut s = 0.0;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gidx) in map.iter().enumerate() {
                s += g.mass[k] * u[gidx];
            }
        }
        s
    }

    /// L2 error of a nodal field against a function.
    pub fn l2_error(&self, u: &[f64], exact: impl Fn(f64, f64, f64) -> f64) -> f64 {
        let mut s = 0.0;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gidx) in map.iter().enumerate() {
                let [x, y, z] = g.xyz[k];
                let d = u[gidx] - exact(x, y, z);
                s += g.mass[k] * d * d;
            }
        }
        s.sqrt()
    }

    /// One element's local Helmholtz application `ol = D'GD ul + λ M ul`
    /// on a pre-gathered local vector (tensor derivatives → metric flux →
    /// divergence). Scratch buffers are caller-provided so every path can
    /// reuse them; the arithmetic is identical on every path.
    fn helmholtz_elem_local(
        &self,
        e: usize,
        lambda: f64,
        ul: &[f64],
        du: &mut [Vec<f64>; 3],
        fl: &mut [Vec<f64>; 3],
        ol: &mut [f64],
    ) {
        let n = self.basis.n();
        let nloc = self.nloc();
        let d = &self.basis.d;
        let g = &self.geom[e];
        // Reference derivatives along each axis.
        for kz in 0..n {
            for ky in 0..n {
                for kx in 0..n {
                    let loc = (kz * n + ky) * n + kx;
                    let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
                    for m in 0..n {
                        s0 += d[kx * n + m] * ul[(kz * n + ky) * n + m];
                        s1 += d[ky * n + m] * ul[(kz * n + m) * n + kx];
                        s2 += d[kz * n + m] * ul[(m * n + ky) * n + kx];
                    }
                    du[0][loc] = s0;
                    du[1][loc] = s1;
                    du[2][loc] = s2;
                }
            }
        }
        // Flux = G · du (symmetric 3x3 metric).
        for k in 0..nloc {
            let (a, b, c) = (du[0][k], du[1][k], du[2][k]);
            fl[0][k] = g.g[0][k] * a + g.g[1][k] * b + g.g[2][k] * c;
            fl[1][k] = g.g[1][k] * a + g.g[3][k] * b + g.g[4][k] * c;
            fl[2][k] = g.g[2][k] * a + g.g[4][k] * b + g.g[5][k] * c;
        }
        // ol = Σ_a D_aᵀ f_a + λ M u.
        for kz in 0..n {
            for ky in 0..n {
                for kx in 0..n {
                    let loc = (kz * n + ky) * n + kx;
                    let mut s = 0.0;
                    for m in 0..n {
                        s += d[m * n + kx] * fl[0][(kz * n + ky) * n + m];
                        s += d[m * n + ky] * fl[1][(kz * n + m) * n + kx];
                        s += d[m * n + kz] * fl[2][(m * n + ky) * n + kx];
                    }
                    ol[loc] = s + lambda * g.mass[loc] * ul[loc];
                }
            }
        }
    }

    /// Matrix-free Helmholtz operator `A u = ∫∇v·∇u + λ∫v u`.
    ///
    /// Allocates scratch; the hot loops use
    /// [`Space3d::apply_helmholtz_ws`].
    pub fn apply_helmholtz(&self, lambda: f64, u: &[f64], out: &mut [f64]) {
        self.apply_helmholtz_ws(lambda, u, out, &mut ApplyScratch::new());
    }

    /// [`Space3d::apply_helmholtz`] with caller-provided scratch.
    ///
    /// With more than one rayon thread the per-element applications run in
    /// parallel (each element is independent, writing its slice of the
    /// workspace's flat `locals` buffer) and the gather-scatter runs
    /// serially in element order afterward — the same scatter order as the
    /// serial path, so the result is bitwise identical to serial at every
    /// thread count. The serial path performs zero heap allocation.
    pub fn apply_helmholtz_ws(
        &self,
        lambda: f64,
        u: &[f64],
        out: &mut [f64],
        ws: &mut ApplyScratch,
    ) {
        out.iter_mut().for_each(|o| *o = 0.0);
        let nloc = self.nloc();
        let nelem = self.gmap.len();
        if rayon::current_num_threads() > 1 && nelem > 1 {
            use rayon::prelude::*;
            ws.ensure_locals(nelem * nloc);
            ws.locals[..nelem * nloc]
                .par_chunks_mut(nloc)
                .enumerate()
                .for_each(|(e, ol)| {
                    let mut ul = vec![0.0f64; nloc];
                    let mut du = [vec![0.0f64; nloc], vec![0.0f64; nloc], vec![0.0f64; nloc]];
                    let mut fl = [vec![0.0f64; nloc], vec![0.0f64; nloc], vec![0.0f64; nloc]];
                    for (k, &gidx) in self.gmap[e].iter().enumerate() {
                        ul[k] = u[gidx];
                    }
                    self.helmholtz_elem_local(e, lambda, &ul, &mut du, &mut fl, ol);
                });
            for e in 0..nelem {
                let ol = &ws.locals[e * nloc..(e + 1) * nloc];
                for (k, &gidx) in self.gmap[e].iter().enumerate() {
                    out[gidx] += ol[k];
                }
            }
        } else {
            ws.ensure(nloc);
            let ApplyScratch { ul, du, fl, ol, .. } = ws;
            for e in 0..nelem {
                for (k, &gidx) in self.gmap[e].iter().enumerate() {
                    ul[k] = u[gidx];
                }
                self.helmholtz_elem_local(e, lambda, &ul[..nloc], du, fl, &mut ol[..nloc]);
                for (k, &gidx) in self.gmap[e].iter().enumerate() {
                    out[gidx] += ol[k];
                }
            }
        }
    }

    /// Assembled operator diagonal for Jacobi preconditioning.
    pub fn helmholtz_diagonal(&self, lambda: f64) -> Vec<f64> {
        let n = self.basis.n();
        let d = &self.basis.d;
        let mut diag = vec![0.0f64; self.nglobal];
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for kz in 0..n {
                for ky in 0..n {
                    for kx in 0..n {
                        let loc = (kz * n + ky) * n + kx;
                        let mut v = lambda * g.mass[loc];
                        for m in 0..n {
                            v += g.g[0][(kz * n + ky) * n + m] * d[m * n + kx] * d[m * n + kx];
                            v += g.g[3][(kz * n + m) * n + kx] * d[m * n + ky] * d[m * n + ky];
                            v += g.g[5][(m * n + ky) * n + kx] * d[m * n + kz] * d[m * n + kz];
                        }
                        let dk = d[kx * n + kx];
                        let dj = d[ky * n + ky];
                        let di = d[kz * n + kz];
                        v += 2.0 * g.g[1][loc] * dk * dj;
                        v += 2.0 * g.g[2][loc] * dk * di;
                        v += 2.0 * g.g[4][loc] * dj * di;
                        diag[map[loc]] += v;
                    }
                }
            }
        }
        diag
    }

    /// Collocation gradient, averaged at shared DoFs: `(∂u/∂x, ∂u/∂y, ∂u/∂z)`.
    pub fn gradient(&self, u: &[f64]) -> [Vec<f64>; 3] {
        let mut out = [
            vec![0.0f64; self.nglobal],
            vec![0.0f64; self.nglobal],
            vec![0.0f64; self.nglobal],
        ];
        self.gradient_ws(u, &mut out, &mut ApplyScratch::new());
        out
    }

    /// [`Space3d::gradient`] into caller-provided outputs and scratch: no
    /// per-call allocation.
    pub fn gradient_ws(&self, u: &[f64], out: &mut [Vec<f64>; 3], ws: &mut ApplyScratch) {
        let n = self.basis.n();
        let nloc = self.nloc();
        let d = &self.basis.d;
        for b in out.iter_mut() {
            b.iter_mut().for_each(|v| *v = 0.0);
        }
        ws.ensure(nloc);
        let ul = &mut ws.ul;
        for (e, map) in self.gmap.iter().enumerate() {
            let g = &self.geom[e];
            for (k, &gidx) in map.iter().enumerate() {
                ul[k] = u[gidx];
            }
            for kz in 0..n {
                for ky in 0..n {
                    for kx in 0..n {
                        let loc = (kz * n + ky) * n + kx;
                        let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
                        for m in 0..n {
                            s0 += d[kx * n + m] * ul[(kz * n + ky) * n + m];
                            s1 += d[ky * n + m] * ul[(kz * n + m) * n + kx];
                            s2 += d[kz * n + m] * ul[(m * n + ky) * n + kx];
                        }
                        for b in 0..3 {
                            out[b][map[loc]] += g.dref[b][loc] * s0
                                + g.dref[3 + b][loc] * s1
                                + g.dref[6 + b][loc] * s2;
                        }
                    }
                }
            }
        }
        for b in 0..3 {
            for gi in 0..self.nglobal {
                out[b][gi] /= self.mult[gi];
            }
        }
    }

    /// Global DoFs on boundary faces selected by `pred`.
    pub fn boundary_dofs(&self, pred: impl Fn(BoundaryTag) -> bool) -> Vec<usize> {
        let n = self.basis.n();
        let p = self.basis.p;
        let mut out = std::collections::BTreeSet::new();
        for &(e, face, tag) in &self.mesh.boundary {
            if !pred(tag) {
                continue;
            }
            for a in 0..n {
                for b in 0..n {
                    let (kx, ky, kz) = match face {
                        0 => (a, b, 0),
                        1 => (a, b, p),
                        2 => (a, 0, b),
                        3 => (p, a, b),
                        4 => (a, p, b),
                        5 => (0, a, b),
                        _ => unreachable!(),
                    };
                    out.insert(self.gmap[e][(kz * n + ky) * n + kx]);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Helmholtz solve with Dirichlet lifting and Jacobi-preconditioned CG,
    /// mirroring [`crate::space2d::Space2d::solve_helmholtz`].
    pub fn solve_helmholtz(
        &self,
        lambda: f64,
        rhs_weak: &[f64],
        dirichlet: &[usize],
        bc_value: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> (Vec<f64>, CgResult) {
        // One-shot engine, Jacobi rung: same arithmetic as the historical
        // inline solver without its per-iteration `p.to_vec()` clone.
        let mut eng = EllipticSolver::new(
            self,
            lambda,
            dirichlet,
            PreconKind::Jacobi,
            tol,
            max_iter,
            0,
            0,
        );
        let mut x = vec![0.0f64; self.nglobal];
        let stats = eng.solve_into(self, rhs_weak, bc_value, &mut x, usize::MAX);
        (x, stats.cg)
    }
}

impl EllipticSpace for Space3d {
    fn nglobal(&self) -> usize {
        self.nglobal
    }

    fn num_elems(&self) -> usize {
        self.gmap.len()
    }

    fn nloc(&self) -> usize {
        self.nloc()
    }

    fn elem_gids(&self, e: usize) -> &[usize] {
        &self.gmap[e]
    }

    fn apply_helmholtz_ws(&self, lambda: f64, u: &[f64], out: &mut [f64], ws: &mut ApplyScratch) {
        Space3d::apply_helmholtz_ws(self, lambda, u, out, ws);
    }

    fn helmholtz_diag(&self, lambda: f64) -> Vec<f64> {
        self.helmholtz_diagonal(lambda)
    }

    fn elem_matrix(&self, e: usize, lambda: f64, out: &mut [f64], ws: &mut ApplyScratch) {
        let nloc = self.nloc();
        assert!(out.len() >= nloc * nloc);
        ws.ensure(nloc);
        let ApplyScratch { ul, du, fl, ol, .. } = ws;
        for l in 0..nloc {
            ul[..nloc].iter_mut().for_each(|v| *v = 0.0);
            ul[l] = 1.0;
            self.helmholtz_elem_local(e, lambda, &ul[..nloc], du, fl, &mut ol[..nloc]);
            for k in 0..nloc {
                out[k * nloc + l] = ol[k];
            }
        }
    }

    fn node_roles(&self) -> Vec<NodeRole> {
        let n = self.basis.n();
        let p = self.basis.p;
        let ext = |i: usize| i == 0 || i == p;
        let mut roles = Vec::with_capacity(n * n * n);
        for kz in 0..n {
            for ky in 0..n {
                for kx in 0..n {
                    let (bx, by, bz) = (ext(kx), ext(ky), ext(kz));
                    let pinned = bx as u8 + by as u8 + bz as u8;
                    roles.push(match pinned {
                        3 => NodeRole::Vertex,
                        2 => {
                            // Edge id: free axis × which corner of the two
                            // pinned axes (ascending axis order).
                            let (free, hi_a, hi_b) = if !bx {
                                (0u8, (ky == p) as u8, (kz == p) as u8)
                            } else if !by {
                                (1, (kx == p) as u8, (kz == p) as u8)
                            } else {
                                (2, (kx == p) as u8, (ky == p) as u8)
                            };
                            NodeRole::Edge(free * 4 + hi_a * 2 + hi_b)
                        }
                        1 => {
                            let (axis, hi) = if bx {
                                (0u8, (kx == p) as u8)
                            } else if by {
                                (1, (ky == p) as u8)
                            } else {
                                (2, (kz == p) as u8)
                            };
                            NodeRole::Face(axis * 2 + hi)
                        }
                        _ => NodeRole::Interior,
                    });
                }
            }
        }
        roles
    }

    fn corner_hats(&self) -> (Vec<usize>, Vec<Vec<f64>>) {
        let n = self.basis.n();
        let p = self.basis.p;
        let nloc = n * n * n;
        // Same corner order (and trilinear shape signs) as the geometry.
        let signs: [[f64; 3]; 8] = [
            [-1.0, -1.0, -1.0],
            [1.0, -1.0, -1.0],
            [1.0, 1.0, -1.0],
            [-1.0, 1.0, -1.0],
            [-1.0, -1.0, 1.0],
            [1.0, -1.0, 1.0],
            [1.0, 1.0, 1.0],
            [-1.0, 1.0, 1.0],
        ];
        let at = |s: f64| if s > 0.0 { p } else { 0 };
        let locs: Vec<usize> = signs
            .iter()
            .map(|s| (at(s[2]) * n + at(s[1])) * n + at(s[0]))
            .collect();
        let pts = &self.basis.points;
        let mut hats = vec![vec![0.0; nloc]; 8];
        for kz in 0..n {
            for ky in 0..n {
                for kx in 0..n {
                    let loc = (kz * n + ky) * n + kx;
                    let r = [pts[kx], pts[ky], pts[kz]];
                    for (c, s) in signs.iter().enumerate() {
                        hats[c][loc] =
                            0.125 * (1.0 + s[0] * r[0]) * (1.0 + s[1] * r[1]) * (1.0 + s[2] * r[2]);
                    }
                }
            }
        }
        (locs, hats)
    }
}

fn elem_geometry3(mesh: &HexMesh, verts: [usize; 8], basis: &GllBasis) -> ElemGeom3 {
    let n = basis.n();
    let nloc = n * n * n;
    let vc: Vec<[f64; 3]> = verts.iter().map(|&v| mesh.coords[v]).collect();
    let mut g = ElemGeom3 {
        g: std::array::from_fn(|_| vec![0.0; nloc]),
        mass: vec![0.0; nloc],
        dref: std::array::from_fn(|_| vec![0.0; nloc]),
        xyz: vec![[0.0; 3]; nloc],
    };
    // Trilinear shape functions; vertex order per HexMesh convention.
    let signs: [[f64; 3]; 8] = [
        [-1.0, -1.0, -1.0],
        [1.0, -1.0, -1.0],
        [1.0, 1.0, -1.0],
        [-1.0, 1.0, -1.0],
        [-1.0, -1.0, 1.0],
        [1.0, -1.0, 1.0],
        [1.0, 1.0, 1.0],
        [-1.0, 1.0, 1.0],
    ];
    for kz in 0..n {
        for ky in 0..n {
            for kx in 0..n {
                let loc = (kz * n + ky) * n + kx;
                let r = [basis.points[kx], basis.points[ky], basis.points[kz]];
                let mut x = [0.0f64; 3];
                // jac[a][b] = ∂x_a/∂ξ_b
                let mut jac = [[0.0f64; 3]; 3];
                for (a, s) in signs.iter().enumerate() {
                    let f = [
                        0.5 * (1.0 + s[0] * r[0]),
                        0.5 * (1.0 + s[1] * r[1]),
                        0.5 * (1.0 + s[2] * r[2]),
                    ];
                    let df = [0.5 * s[0], 0.5 * s[1], 0.5 * s[2]];
                    let shape = f[0] * f[1] * f[2];
                    let dshape = [
                        df[0] * f[1] * f[2],
                        f[0] * df[1] * f[2],
                        f[0] * f[1] * df[2],
                    ];
                    for c in 0..3 {
                        x[c] += shape * vc[a][c];
                        for b in 0..3 {
                            jac[c][b] += dshape[b] * vc[a][c];
                        }
                    }
                }
                let det = jac[0][0] * (jac[1][1] * jac[2][2] - jac[1][2] * jac[2][1])
                    - jac[0][1] * (jac[1][0] * jac[2][2] - jac[1][2] * jac[2][0])
                    + jac[0][2] * (jac[1][0] * jac[2][1] - jac[1][1] * jac[2][0]);
                assert!(det > 1e-14, "inverted/degenerate hex (|J| = {det})");
                // inv[a][b] = ∂ξ_a/∂x_b = adj(jac)ᵀ / det.
                let mut inv = [[0.0f64; 3]; 3];
                inv[0][0] = (jac[1][1] * jac[2][2] - jac[1][2] * jac[2][1]) / det;
                inv[0][1] = (jac[0][2] * jac[2][1] - jac[0][1] * jac[2][2]) / det;
                inv[0][2] = (jac[0][1] * jac[1][2] - jac[0][2] * jac[1][1]) / det;
                inv[1][0] = (jac[1][2] * jac[2][0] - jac[1][0] * jac[2][2]) / det;
                inv[1][1] = (jac[0][0] * jac[2][2] - jac[0][2] * jac[2][0]) / det;
                inv[1][2] = (jac[0][2] * jac[1][0] - jac[0][0] * jac[1][2]) / det;
                inv[2][0] = (jac[1][0] * jac[2][1] - jac[1][1] * jac[2][0]) / det;
                inv[2][1] = (jac[0][1] * jac[2][0] - jac[0][0] * jac[2][1]) / det;
                inv[2][2] = (jac[0][0] * jac[1][1] - jac[0][1] * jac[1][0]) / det;
                let w = basis.weights[kx] * basis.weights[ky] * basis.weights[kz] * det;
                g.xyz[loc] = x;
                g.mass[loc] = w;
                for a in 0..3 {
                    for b in 0..3 {
                        g.dref[a * 3 + b][loc] = inv[a][b];
                    }
                }
                let metric = |a: usize, b: usize| -> f64 {
                    w * (inv[a][0] * inv[b][0] + inv[a][1] * inv[b][1] + inv[a][2] * inv[b][2])
                };
                g.g[0][loc] = metric(0, 0);
                g.g[1][loc] = metric(0, 1);
                g.g[2][loc] = metric(0, 2);
                g.g[3][loc] = metric(1, 1);
                g.g[4][loc] = metric(1, 2);
                g.g[5][loc] = metric(2, 2);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_space(nx: usize, ny: usize, nz: usize, p: usize) -> Space3d {
        let mesh = HexMesh::box_mesh(nx, ny, nz, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        Space3d::new(mesh, [nx, ny, nz], p, false)
    }

    #[test]
    fn dof_count_structured() {
        let s = box_space(2, 2, 1, 3);
        assert_eq!(s.nglobal, 7 * 7 * 4);
    }

    #[test]
    fn volume_integration() {
        let s = box_space(2, 1, 1, 4);
        let one = vec![1.0; s.nglobal];
        assert!((s.integrate(&one) - 1.0).abs() < 1e-12);
        // ∫ xyz over unit cube = 1/8.
        let u = s.project(|x, y, z| x * y * z);
        assert!((s.integrate(&u) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn gradient_exact_for_polynomials() {
        let s = box_space(2, 2, 2, 4);
        let u = s.project(|x, y, z| x * x + y * z);
        let g = s.gradient(&u);
        for (i, &[x, y, z]) in s.coords.iter().enumerate() {
            assert!((g[0][i] - 2.0 * x).abs() < 1e-9);
            assert!((g[1][i] - z).abs() < 1e-9);
            assert!((g[2][i] - y).abs() < 1e-9);
        }
    }

    #[test]
    fn operator_symmetric_and_kills_constants() {
        let s = box_space(2, 1, 1, 3);
        let n = s.nglobal;
        let one = vec![1.0; n];
        let mut a1 = vec![0.0; n];
        s.apply_helmholtz(0.0, &one, &mut a1);
        assert!(a1.iter().all(|x| x.abs() < 1e-10));
        let u: Vec<f64> = (0..n).map(|i| ((i * 3 + 1) % 7) as f64).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 5 + 2) % 9) as f64).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        s.apply_helmholtz(1.0, &u, &mut au);
        s.apply_helmholtz(1.0, &v, &mut av);
        let vau: f64 = v.iter().zip(&au).map(|(a, b)| a * b).sum();
        let uav: f64 = u.iter().zip(&av).map(|(a, b)| a * b).sum();
        assert!((vau - uav).abs() < 1e-8 * vau.abs().max(1.0));
    }

    #[test]
    fn diagonal_matches_probe() {
        let s = box_space(1, 1, 2, 2);
        let diag = s.helmholtz_diagonal(0.7);
        for gid in [0usize, 5, s.nglobal / 2, s.nglobal - 1] {
            let mut e = vec![0.0; s.nglobal];
            e[gid] = 1.0;
            let mut ae = vec![0.0; s.nglobal];
            s.apply_helmholtz(0.7, &e, &mut ae);
            assert!(
                (ae[gid] - diag[gid]).abs() < 1e-10 * diag[gid].abs().max(1.0),
                "dof {gid}"
            );
        }
    }

    #[test]
    fn poisson_3d_manufactured() {
        let pi = std::f64::consts::PI;
        let exact = move |x: f64, y: f64, z: f64| (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        let s = box_space(2, 2, 2, 5);
        let rhs = s.weak_rhs(|x, y, z| 3.0 * pi * pi * exact(x, y, z));
        let bnd = s.boundary_dofs(|_| true);
        let zeros = vec![0.0; bnd.len()];
        let (u, res) = s.solve_helmholtz(0.0, &rhs, &bnd, &zeros, 1e-11, 4000);
        assert!(res.converged);
        let err = s.l2_error(&u, exact);
        assert!(err < 5e-4, "L2 error {err}");
    }

    #[test]
    fn poisson_3d_p_convergence() {
        let pi = std::f64::consts::PI;
        let exact = move |x: f64, y: f64, z: f64| (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        let mut errs = Vec::new();
        for p in [2usize, 4, 6] {
            let s = box_space(1, 1, 1, p);
            let rhs = s.weak_rhs(|x, y, z| 3.0 * pi * pi * exact(x, y, z));
            let bnd = s.boundary_dofs(|_| true);
            let zeros = vec![0.0; bnd.len()];
            let (u, res) = s.solve_helmholtz(0.0, &rhs, &bnd, &zeros, 1e-12, 4000);
            assert!(res.converged);
            errs.push(s.l2_error(&u, exact));
        }
        for w in errs.windows(2) {
            assert!(w[1] < w[0] / 5.0, "not spectral: {errs:?}");
        }
    }

    /// The element-parallel operator application must be bitwise identical
    /// to the serial path for any rayon thread count (same per-element
    /// arithmetic, same element-order scatter).
    #[test]
    fn apply_helmholtz_bitwise_thread_invariant() {
        let s = box_space(3, 2, 2, 4);
        let u: Vec<f64> = (0..s.nglobal)
            .map(|i| ((i * 7 + 3) % 23) as f64 * 0.17 - 1.5)
            .collect();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut out = vec![0.0; s.nglobal];
                    s.apply_helmholtz(0.9, &u, &mut out);
                    out
                })
        };
        let serial = run(1);
        for threads in [2usize, 8] {
            let par = run(threads);
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} dof {i}");
            }
        }
    }

    /// Full solve reproducibility: the CG iteration history (and thus the
    /// solution bits) must not depend on the thread count when the
    /// reductions use fixed chunking.
    #[test]
    fn solve_reproducible_across_thread_counts() {
        let pi = std::f64::consts::PI;
        let exact = move |x: f64, y: f64, z: f64| (pi * x).sin() * (pi * y).sin() * (pi * z).sin();
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let s = box_space(2, 2, 2, 4);
                    let rhs = s.weak_rhs(|x, y, z| 3.0 * pi * pi * exact(x, y, z));
                    let bnd = s.boundary_dofs(|_| true);
                    let zeros = vec![0.0; bnd.len()];
                    s.solve_helmholtz(0.0, &rhs, &bnd, &zeros, 1e-10, 2000)
                })
        };
        let (u2, r2) = run(2);
        let (u8, r8) = run(8);
        assert!(r2.converged && r8.converged);
        assert_eq!(r2.iterations, r8.iterations);
        assert!(u2.iter().zip(&u8).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn periodic_x_merges() {
        let mesh = HexMesh::box_mesh(2, 1, 1, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let plain = Space3d::new(mesh.clone(), [2, 1, 1], 2, false);
        let per = Space3d::new(mesh, [2, 1, 1], 2, true);
        assert_eq!(plain.nglobal - per.nglobal, 3 * 3);
    }

    #[test]
    fn mapped_tube_volume_positive() {
        let mesh = HexMesh::tube(3, 3, 1.0, 5.0);
        let s = Space3d::new(mesh, [3, 3, 3], 3, false);
        let vol = s.integrate(&vec![1.0; s.nglobal]);
        // The square-to-disc map covers most of the π r² l = 15.7 cylinder.
        assert!(vol > 10.0 && vol < 16.0, "tube volume {vol}");
    }
}
