//! 3D incompressible Navier–Stokes via the same stiffly-stable
//! velocity-correction splitting as [`crate::ns2d`], on structured hex
//! SEM spaces.

use crate::precon::EllipticSolver;
use crate::space3d::Space3d;
use nkg_mesh::quad::BoundaryTag;
use std::collections::HashMap;

pub use crate::ns2d::{NsConfig, StepSolveStats};

type VelBcFn3 = Box<dyn Fn(f64, f64, f64, f64) -> [f64; 3] + Send>;
type ForceFn3 = Box<dyn Fn(f64, f64, f64, f64) -> [f64; 3] + Send>;

/// 3D incompressible Navier–Stokes solver.
pub struct NsSolver3d {
    /// Shared function space.
    pub space: Space3d,
    cfg: NsConfig,
    vel_dofs: Vec<usize>,
    vel_bc: VelBcFn3,
    p_dofs: Vec<usize>,
    force: ForceFn3,
    overrides: HashMap<usize, [f64; 3]>,
    /// Velocity components.
    pub vel: [Vec<f64>; 3],
    /// Pressure.
    pub p: Vec<f64>,
    vel_prev: [Vec<f64>; 3],
    adv_prev: [Vec<f64>; 3],
    /// Simulated time.
    pub time: f64,
    steps: usize,
    /// Cumulative CG iterations.
    pub cg_iterations: usize,
    /// Persistent pressure-Poisson engine (λ = 0, one projection slot).
    p_engine: EllipticSolver,
    /// Persistent viscous engine (3 slots); rebuilt when λ changes.
    v_engine: Option<EllipticSolver>,
    last_stats: StepSolveStats,
}

impl NsSolver3d {
    /// Create a solver; `vel_tags` get Dirichlet velocity from `vel_bc`,
    /// `p_tags` get homogeneous Dirichlet pressure (outflows). If `p_tags`
    /// matches nothing the pressure nullspace is pinned.
    pub fn new(
        space: Space3d,
        cfg: NsConfig,
        vel_tags: impl Fn(BoundaryTag) -> bool,
        vel_bc: impl Fn(f64, f64, f64, f64) -> [f64; 3] + Send + 'static,
        p_tags: impl Fn(BoundaryTag) -> bool,
        force: impl Fn(f64, f64, f64, f64) -> [f64; 3] + Send + 'static,
    ) -> Self {
        assert!(matches!(cfg.time_order, 1 | 2));
        let vel_dofs = space.boundary_dofs(&vel_tags);
        let p_dofs = space.boundary_dofs(&p_tags);
        let n = space.nglobal;
        let p_pin = if p_dofs.is_empty() {
            vec![0]
        } else {
            p_dofs.clone()
        };
        let p_engine = EllipticSolver::new(
            &space,
            0.0,
            &p_pin,
            cfg.precon,
            cfg.tol,
            cfg.max_iter,
            1,
            cfg.proj_depth,
        );
        Self {
            space,
            cfg,
            vel_dofs,
            vel_bc: Box::new(vel_bc),
            p_dofs,
            force: Box::new(force),
            overrides: HashMap::new(),
            vel: std::array::from_fn(|_| vec![0.0; n]),
            p: vec![0.0; n],
            vel_prev: std::array::from_fn(|_| vec![0.0; n]),
            adv_prev: std::array::from_fn(|_| vec![0.0; n]),
            time: 0.0,
            steps: 0,
            cg_iterations: 0,
            p_engine,
            v_engine: None,
            last_stats: StepSolveStats::default(),
        }
    }

    /// Elliptic-solve telemetry of the most recent [`NsSolver3d::step`].
    pub fn last_step_stats(&self) -> StepSolveStats {
        self.last_stats
    }

    /// Set the initial velocity field.
    pub fn set_initial(&mut self, f: impl Fn(f64, f64, f64) -> [f64; 3]) {
        for i in 0..self.space.nglobal {
            let [x, y, z] = self.space.coords[i];
            let v = f(x, y, z);
            for c in 0..3 {
                self.vel[c][i] = v[c];
                self.vel_prev[c][i] = v[c];
            }
        }
    }

    /// Override velocity Dirichlet values at specific DoFs (coupling hook,
    /// the continuum side of the NS→DPD interface in reverse and the
    /// patch-interface condition).
    pub fn set_velocity_override(&mut self, values: HashMap<usize, [f64; 3]>) {
        self.overrides = values;
    }

    /// Velocity Dirichlet DoF ids.
    pub fn velocity_bc_dofs(&self) -> &[usize] {
        &self.vel_dofs
    }

    fn advection(&self) -> [Vec<f64>; 3] {
        let n = self.space.nglobal;
        let grads: Vec<[Vec<f64>; 3]> = (0..3).map(|c| self.space.gradient(&self.vel[c])).collect();
        std::array::from_fn(|c| {
            let mut out = vec![0.0; n];
            for i in 0..n {
                out[i] = self.vel[0][i] * grads[c][0][i]
                    + self.vel[1][i] * grads[c][1][i]
                    + self.vel[2][i] * grads[c][2][i];
            }
            out
        })
    }

    /// Advance one time step.
    pub fn step(&mut self) {
        let n = self.space.nglobal;
        let dt = self.cfg.dt;
        let t_new = self.time + dt;
        let order = self.cfg.time_order.min(self.steps + 1);
        let (gamma0, alpha, beta): (f64, [f64; 2], [f64; 2]) = match order {
            1 => (1.0, [1.0, 0.0], [1.0, 0.0]),
            _ => (1.5, [2.0, -0.5], [2.0, -1.0]),
        };
        let adv = self.advection();
        let mut star: [Vec<f64>; 3] = std::array::from_fn(|_| vec![0.0; n]);
        for i in 0..n {
            let [x, y, z] = self.space.coords[i];
            let f = (self.force)(x, y, z, t_new);
            for c in 0..3 {
                star[c][i] = alpha[0] * self.vel[c][i]
                    + alpha[1] * self.vel_prev[c][i]
                    + dt * (-(beta[0] * adv[c][i] + beta[1] * self.adv_prev[c][i]) + f[c]);
            }
        }
        // Pressure Poisson.
        let gx = self.space.gradient(&star[0]);
        let gy = self.space.gradient(&star[1]);
        let gz = self.space.gradient(&star[2]);
        let mut div = vec![0.0; n];
        for i in 0..n {
            div[i] = (gx[0][i] + gy[1][i] + gz[2][i]) / dt;
        }
        let mdiv = self.space.apply_mass(&div);
        let b: Vec<f64> = mdiv.iter().map(|&x| -x).collect();
        let p_vals: Vec<f64> = if self.p_dofs.is_empty() {
            vec![0.0]
        } else {
            vec![0.0; self.p_dofs.len()]
        };
        let pres = self
            .p_engine
            .solve_into(&self.space, &b, &p_vals, &mut self.p, 0);
        self.cg_iterations += pres.cg.iterations;
        let pg = self.space.gradient(&self.p);
        for c in 0..3 {
            for i in 0..n {
                star[c][i] -= dt * pg[c][i];
            }
        }
        // Viscous solves.
        let lambda = gamma0 / (self.cfg.nu * dt);
        let scale = 1.0 / (self.cfg.nu * dt);
        let bc_vals: Vec<[f64; 3]> = self
            .vel_dofs
            .iter()
            .map(|&g| {
                if let Some(&v) = self.overrides.get(&g) {
                    v
                } else {
                    let [x, y, z] = self.space.coords[g];
                    (self.vel_bc)(x, y, z, t_new)
                }
            })
            .collect();
        let rebuild = match &self.v_engine {
            None => true,
            Some(e) => e.lambda().to_bits() != lambda.to_bits(),
        };
        if rebuild {
            self.v_engine = Some(EllipticSolver::new(
                &self.space,
                lambda,
                &self.vel_dofs,
                self.cfg.precon,
                self.cfg.tol,
                self.cfg.max_iter,
                3,
                self.cfg.proj_depth,
            ));
        }
        let mut visc_iters = 0;
        let mut visc_res = 0.0f64;
        let mut visc_proj = 0;
        let mut breakdown = pres.cg.breakdown;
        for c in 0..3 {
            let bw: Vec<f64> = self
                .space
                .apply_mass(&star[c])
                .iter()
                .map(|&x| x * scale)
                .collect();
            let vals: Vec<f64> = bc_vals.iter().map(|v| v[c]).collect();
            self.vel_prev[c].copy_from_slice(&self.vel[c]);
            let ve = self.v_engine.as_mut().expect("viscous engine just built");
            let res = ve.solve_into(&self.space, &bw, &vals, &mut self.vel[c], c);
            self.cg_iterations += res.cg.iterations;
            visc_iters += res.cg.iterations;
            visc_res = visc_res.max(res.cg.residual);
            visc_proj = visc_proj.max(res.proj_dim);
            breakdown |= res.cg.breakdown;
        }
        self.last_stats = StepSolveStats {
            pressure_iterations: pres.cg.iterations,
            pressure_residual: pres.cg.residual,
            pressure_proj_dim: pres.proj_dim,
            viscous_iterations: visc_iters,
            viscous_residual: visc_res,
            viscous_proj_dim: visc_proj,
            breakdown,
        };
        self.adv_prev = adv;
        self.time = t_new;
        self.steps += 1;
    }

    /// Kinetic energy `½∫|u|²`.
    pub fn kinetic_energy(&self) -> f64 {
        let n = self.space.nglobal;
        let ke: Vec<f64> = (0..n)
            .map(|i| {
                0.5 * (self.vel[0][i] * self.vel[0][i]
                    + self.vel[1][i] * self.vel[1][i]
                    + self.vel[2][i] * self.vel[2][i])
            })
            .collect();
        self.space.integrate(&ke)
    }

    /// Evaluate the velocity at an arbitrary point by locating the
    /// structured cell (reference-box geometry only) — used by the
    /// continuum→atomistic interface interpolation for box channels.
    /// Returns `None` outside the mesh bounding box.
    ///
    /// For mapped geometries prefer nodal lookups via `space.coords`.
    pub fn sample_velocity_nearest(&self, x: f64, y: f64, z: f64) -> Option<[f64; 3]> {
        // Nearest-DoF sampling: adequate for interface conditions when the
        // DoF spacing is fine relative to the interface triangle size.
        let mut best = None;
        let mut best_d = f64::MAX;
        for (i, &[px, py, pz]) in self.space.coords.iter().enumerate() {
            let d = (px - x).powi(2) + (py - y).powi(2) + (pz - z).powi(2);
            if d < best_d {
                best_d = d;
                best = Some(i);
            }
        }
        best.map(|i| [self.vel[0][i], self.vel[1][i], self.vel[2][i]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::poiseuille_u;
    use nkg_mesh::hex::HexMesh;

    #[test]
    fn poiseuille_3d_between_plates() {
        // Flow between plates at y=0 and y=1 (walls), periodic in x via
        // Dirichlet... use body force with inflow/outflow natural: here we
        // use periodic_x spaces.
        let mesh = HexMesh::box_mesh(2, 2, 1, [0.0, 2.0], [0.0, 1.0], [0.0, 0.4]);
        let space = Space3d::new(mesh, [2, 2, 1], 3, true);
        let (nu, f0) = (0.5, 0.3);
        let cfg = NsConfig {
            nu,
            dt: 5e-3,
            time_order: 2,
            tol: 1e-11,
            max_iter: 3000,
            ..NsConfig::default()
        };
        // Walls: y faces only; z faces free-slip approximated by Dirichlet
        // of the analytic profile (keeps the problem 1D in y).
        let mut ns = NsSolver3d::new(
            space,
            cfg,
            |t| t == BoundaryTag::Wall,
            move |_x, y, _z, _t| [poiseuille_u(y, f0, nu, 1.0) * 0.0, 0.0, 0.0],
            |_| false,
            move |_, _, _, _| [f0, 0.0, 0.0],
        );
        // walls include z faces; the parabola is zero only at y walls. To
        // keep the test clean, use the channel-with-z-walls steady solution
        // computed on the fly? Instead: verify momentum balance statistics.
        for _ in 0..200 {
            ns.step();
        }
        // Fully-developed: u positive in the interior, v,w negligible.
        let ke = ns.kinetic_energy();
        assert!(ke > 0.0 && ke.is_finite());
        let vmax = ns.vel[1].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let wmax = ns.vel[2].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let umax = ns.vel[0].iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(umax > 0.005, "flow should develop: umax={umax}");
        assert!(vmax < 1e-3 * umax, "vmax={vmax}");
        assert!(wmax < 1e-3 * umax, "wmax={wmax}");
    }

    #[test]
    fn duct_flow_matches_series_midline() {
        // Square duct [0,1]² in (y,z), periodic x, body force f.
        // Exact solution is the classic double series; at the centroid the
        // ratio u_max/(f h²/ν) ≈ 0.0737 for a square duct (h = side).
        let mesh = HexMesh::box_mesh(1, 3, 3, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let space = Space3d::new(mesh, [1, 3, 3], 4, true);
        let (nu, f0) = (1.0, 1.0);
        let cfg = NsConfig {
            nu,
            dt: 2e-2,
            time_order: 2,
            tol: 1e-11,
            max_iter: 3000,
            ..NsConfig::default()
        };
        let mut ns = NsSolver3d::new(
            space,
            cfg,
            |t| t == BoundaryTag::Wall,
            |_, _, _, _| [0.0, 0.0, 0.0],
            |_| false,
            move |_, _, _, _| [f0, 0.0, 0.0],
        );
        for _ in 0..150 {
            ns.step();
        }
        let center = ns.sample_velocity_nearest(0.5, 0.5, 0.5).unwrap();
        let expect = 0.0737 * f0 / nu; // u_max coefficient for square duct
        assert!(
            (center[0] - expect).abs() < 0.05 * expect,
            "duct centerline {} vs {expect}",
            center[0]
        );
    }

    #[test]
    fn zero_stays_zero_3d() {
        let mesh = HexMesh::box_mesh(1, 1, 1, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let space = Space3d::new(mesh, [1, 1, 1], 3, false);
        let mut ns = NsSolver3d::new(
            space,
            NsConfig::default(),
            |_| true,
            |_, _, _, _| [0.0; 3],
            |_| false,
            |_, _, _, _| [0.0; 3],
        );
        for _ in 0..3 {
            ns.step();
        }
        assert!(ns.kinetic_energy() < 1e-20);
    }
}
