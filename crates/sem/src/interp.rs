//! Precomputed point-interpolation tables for static query sets.
//!
//! [`Space2d::eval_at`] locates the containing element with an O(elements)
//! scan and a Newton inversion of the bilinear map, then allocates two
//! Lagrange-coefficient vectors — fine for one-off probes, ruinous when
//! the same static points (interface DoFs, embedded-domain bin midpoints)
//! are evaluated every coupled step. An [`InterpTable`] performs the
//! location and weight computation once; each subsequent evaluation is a
//! dense dot product of `(P+1)²` precomputed tensor-Lagrange weights with
//! the field values of one donor element.
//!
//! Bitwise contract: [`InterpTable::eval`] reproduces
//! [`Space2d::eval_at`] exactly. `eval_at` accumulates
//! `(lj[j] * li[i]) * u[g]` in local-node order `k = j·(P+1) + i`; the
//! table stores `w[k] = lj[j] * li[i]` (the same left-associated product)
//! and accumulates `w[k] * u[g]` in the same order, so every partial sum
//! is identical to the scanning path.

use crate::space2d::Space2d;
use nkg_ckpt::{Dec, Enc};

/// Precomputed interpolation rows: one donor element id plus `(P+1)²`
/// tensor-product Lagrange weights per query point.
///
/// Rows may be appended against *different* spaces (e.g. per-point donor
/// patches) as long as all spaces share the polynomial order; the caller
/// must pass the same space used at [`push`](InterpTable::push) time back
/// to [`eval`](InterpTable::eval) for that row.
#[derive(Debug, Clone)]
pub struct InterpTable {
    /// Local nodes per element, `(P+1)²` — the weight stride.
    nloc: usize,
    /// Donor element per point (`None`: the point was outside the space).
    elems: Vec<Option<u32>>,
    /// Flat weights, `nloc` per point (zeros for unlocated points).
    weights: Vec<f64>,
}

impl InterpTable {
    /// Empty table for elements of `nloc` local nodes, preallocated for
    /// `cap` query points.
    pub fn with_capacity(nloc: usize, cap: usize) -> Self {
        Self {
            nloc,
            elems: Vec::with_capacity(cap),
            weights: Vec::with_capacity(cap * nloc),
        }
    }

    /// Locate `(x, y)` in `space` and append its interpolation row.
    /// Returns whether the point was found; an unlocated point appends a
    /// `None` row so indices stay aligned with the caller's point list.
    pub fn push(&mut self, space: &Space2d, x: f64, y: f64) -> bool {
        debug_assert_eq!(space.nloc(), self.nloc, "donor space order mismatch");
        match space.locate(x, y) {
            Some((e, xi, eta)) => {
                self.elems.push(Some(e as u32));
                space.interp_weights_into(xi, eta, &mut self.weights);
                true
            }
            None => {
                self.elems.push(None);
                self.weights.extend(std::iter::repeat_n(0.0, self.nloc));
                false
            }
        }
    }

    /// Build a table over `points` against a single space.
    pub fn build(space: &Space2d, points: &[[f64; 2]]) -> Self {
        let mut t = Self::with_capacity(space.nloc(), points.len());
        for &[x, y] in points {
            t.push(space, x, y);
        }
        t
    }

    /// Number of query points.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the table holds no points.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Whether point `q` was located at build time.
    pub fn found(&self, q: usize) -> bool {
        self.elems[q].is_some()
    }

    /// Evaluate the global field `u` of `space` at query point `q`:
    /// bitwise identical to `space.eval_at(u, x_q, y_q)`. `space` must be
    /// the space point `q` was pushed against.
    pub fn eval(&self, space: &Space2d, u: &[f64], q: usize) -> Option<f64> {
        let e = self.elems[q]? as usize;
        let w = &self.weights[q * self.nloc..(q + 1) * self.nloc];
        let gids = &space.gmap[e];
        let mut val = 0.0;
        for (wk, &g) in w.iter().zip(gids) {
            val += wk * u[g];
        }
        Some(val)
    }
}

/// Tables opt into the artifact disk tier: pure data (donor element ids
/// plus weight rows), independent of which space the rows point at, with
/// every weight round-tripping through its exact bit pattern. Locating a
/// point is an O(elements) Newton scan per row, so an ensemble sharing one
/// cache skips the entire scan on a hit.
impl nkg_artifact::Artifact for InterpTable {
    fn approx_bytes(&self) -> usize {
        self.elems.len() * 8 + self.weights.len() * 8
    }

    fn encode(&self) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        e.put(self.nloc as u64);
        // `u64::MAX` marks an unlocated point (donor ids are u32-sized).
        let elems: Vec<u64> = self
            .elems
            .iter()
            .map(|o| o.map_or(u64::MAX, |e| e as u64))
            .collect();
        e.put_slice(&elems);
        e.put_slice(&self.weights);
        Some(e.into_bytes())
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = Dec::new(bytes);
        let nloc = d.take::<u64>().ok()? as usize;
        let elems: Vec<Option<u32>> = d
            .take_vec::<u64>()
            .ok()?
            .into_iter()
            .map(|v| if v == u64::MAX { None } else { Some(v as u32) })
            .collect();
        let weights = d.take_vec::<f64>().ok()?;
        d.finish().ok()?;
        if weights.len() != elems.len() * nloc {
            return None;
        }
        Some(Self {
            nloc,
            elems,
            weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nkg_mesh::quad::QuadMesh;

    fn space(nx: usize, ny: usize, p: usize) -> Space2d {
        let mesh = QuadMesh::rectangle(nx, ny, 0.0, 2.0, 0.0, 1.0);
        Space2d::new(mesh, p, false)
    }

    #[test]
    fn table_matches_eval_at_bitwise() {
        let s = space(5, 3, 4);
        let u: Vec<f64> = s
            .coords
            .iter()
            .map(|&[x, y]| (1.3 * x).sin() * (0.7 + y * y) + 0.1 * x * y)
            .collect();
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let t = i as f64 / 39.0;
                [2.0 * t, (0.3 + 0.6 * t * t).min(1.0)]
            })
            .collect();
        let table = InterpTable::build(&s, &pts);
        for (q, &[x, y]) in pts.iter().enumerate() {
            let direct = s.eval_at(&u, x, y).unwrap();
            let tabled = table.eval(&s, &u, q).unwrap();
            assert_eq!(
                direct.to_bits(),
                tabled.to_bits(),
                "table diverged from eval_at at point {q} ({x}, {y})"
            );
        }
    }

    #[test]
    fn outside_points_stay_aligned() {
        let s = space(2, 2, 3);
        let pts = [[0.5, 0.5], [5.0, 0.5], [1.5, 0.25]];
        let table = InterpTable::build(&s, &pts);
        let u = vec![1.0; s.nglobal];
        assert_eq!(table.len(), 3);
        assert!(table.found(0) && !table.found(1) && table.found(2));
        assert!(table.eval(&s, &u, 1).is_none());
        // Interpolating the constant-1 field returns 1 (partition of unity).
        assert!((table.eval(&s, &u, 2).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_node_hits_reproduce_nodal_values() {
        let s = space(3, 2, 5);
        let u: Vec<f64> = (0..s.nglobal).map(|i| i as f64 * 0.37).collect();
        // Query the DoF coordinates themselves: the Lagrange row collapses
        // to a Kronecker delta and the table must return the nodal value.
        let pts: Vec<[f64; 2]> = s.coords.iter().copied().take(25).collect();
        let table = InterpTable::build(&s, &pts);
        for (q, _) in pts.iter().enumerate() {
            let direct = s.eval_at(&u, pts[q][0], pts[q][1]).unwrap();
            let tabled = table.eval(&s, &u, q).unwrap();
            assert_eq!(direct.to_bits(), tabled.to_bits());
        }
    }
}
