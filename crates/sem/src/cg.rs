//! Preconditioned conjugate-gradient solver for the matrix-free SEM
//! operators (the paper's "Helmholtz and Poisson iterative solvers ... based
//! on conjugate gradient method").
//!
//! Vector primitives route through [`nkg_simd::par`]: with one rayon
//! thread (`RAYON_NUM_THREADS=1`) they are bitwise identical to the serial
//! kernels; with more threads, reductions use fixed-size chunks so the
//! iteration history is reproducible for any thread count.

use nkg_simd::par::{par_axpy, par_dot, par_xpby};

/// Outcome of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// True when the iteration stopped because `pᵀAp ≤ 0`: the operator
    /// (or preconditioner) is not SPD on the Krylov subspace, or round-off
    /// destroyed the search direction. The residual reported alongside is
    /// the last *valid* one, so `converged: false, breakdown: true` must
    /// never be read as "ran out of iterations".
    pub breakdown: bool,
}

/// Reusable buffers for [`pcg_ws`]: four length-`n` vectors that would
/// otherwise be reallocated on every solve. A persistent solver object
/// (see [`crate::precon::EllipticSolver`]) keeps one of these alive so the
/// time-stepping hot loop performs zero heap allocation.
#[derive(Debug, Default, Clone)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow (never shrink) the buffers to length `n`.
    fn ensure(&mut self, n: usize) {
        if self.r.len() < n {
            self.r.resize(n, 0.0);
            self.z.resize(n, 0.0);
            self.p.resize(n, 0.0);
            self.ap.resize(n, 0.0);
        }
    }
}

/// Solve `A x = b` by preconditioned CG.
///
/// * `apply` — the SPD operator: `apply(p, out)` writes `A p` into `out`;
/// * `precond` — application of `M⁻¹` (pass a copy for no preconditioning);
/// * `x` — initial guess on entry, solution on exit;
/// * convergence when `‖r‖₂ ≤ tol · max(‖b‖₂, 1e-300)`.
///
/// The caller is responsible for masking Dirichlet DoFs inside `apply` and
/// `precond` (residual components at masked DoFs must come out zero).
pub fn pcg(
    apply: impl FnMut(&[f64], &mut [f64]),
    precond: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> CgResult {
    pcg_ws(apply, precond, b, x, tol, max_iter, &mut CgWorkspace::new())
}

/// [`pcg`] with caller-provided workspace: no heap allocation when the
/// workspace buffers are already at least `b.len()` long.
#[allow(clippy::too_many_arguments)]
pub fn pcg_ws(
    mut apply: impl FnMut(&[f64], &mut [f64]),
    mut precond: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
    ws: &mut CgWorkspace,
) -> CgResult {
    let n = b.len();
    assert_eq!(x.len(), n);
    ws.ensure(n);
    let (r, z, p, ap) = (
        &mut ws.r[..n],
        &mut ws.z[..n],
        &mut ws.p[..n],
        &mut ws.ap[..n],
    );

    // r = b - A x
    apply(x, ap);
    for i in 0..n {
        r[i] = b[i] - ap[i];
    }
    let bnorm = par_dot(b, b).sqrt().max(1e-300);
    let mut rnorm = par_dot(r, r).sqrt();
    if rnorm <= tol * bnorm {
        return CgResult {
            iterations: 0,
            residual: rnorm,
            converged: true,
            breakdown: false,
        };
    }
    precond(r, z);
    p.copy_from_slice(z);
    let mut rz = par_dot(r, z);
    for it in 1..=max_iter {
        apply(p, ap);
        let pap = par_dot(p, ap);
        if pap <= 0.0 {
            // Operator not SPD on this subspace (or round-off breakdown).
            return CgResult {
                iterations: it,
                residual: rnorm,
                converged: false,
                breakdown: true,
            };
        }
        let alpha = rz / pap;
        par_axpy(alpha, p, x);
        par_axpy(-alpha, ap, r);
        rnorm = par_dot(r, r).sqrt();
        if rnorm <= tol * bnorm {
            return CgResult {
                iterations: it,
                residual: rnorm,
                converged: true,
                breakdown: false,
            };
        }
        precond(r, z);
        let rz_new = par_dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        par_xpby(z, beta, p);
    }
    CgResult {
        iterations: max_iter,
        residual: rnorm,
        converged: false,
        breakdown: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense SPD test operator.
    fn dense_apply(a: &[Vec<f64>]) -> impl FnMut(&[f64], &mut [f64]) + '_ {
        move |x, out| {
            for (i, row) in a.iter().enumerate() {
                out[i] = row.iter().zip(x).map(|(aij, xj)| aij * xj).sum();
            }
        }
    }

    fn identity_precond(x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(x);
    }

    #[test]
    fn solves_diagonal_system() {
        let a = vec![
            vec![4.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let b = vec![8.0, 4.0, 3.0];
        let mut x = vec![0.0; 3];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-12, 50);
        assert!(res.converged);
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!((x[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solves_laplacian_tridiag() {
        let n = 50;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 2.0;
            if i > 0 {
                a[i][i - 1] = -1.0;
            }
            if i + 1 < n {
                a[i][i + 1] = -1.0;
            }
        }
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-10, 500);
        assert!(res.converged, "residual {}", res.residual);
        // Check A x ≈ b.
        let mut ax = vec![0.0; n];
        dense_apply(&a)(&x, &mut ax);
        for i in 0..n {
            assert!((ax[i] - 1.0).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_precond_reduces_iterations() {
        let n = 60;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            // Wildly varying diagonal: Jacobi shines here.
            a[i][i] = 1.0 + (i as f64) * 10.0;
            if i > 0 {
                a[i][i - 1] = -0.5;
                a[i - 1][i] = -0.5;
            }
        }
        let b = vec![1.0; n];
        let diag: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
        let mut x0 = vec![0.0; n];
        let plain = pcg(dense_apply(&a), identity_precond, &b, &mut x0, 1e-10, 1000);
        let mut x1 = vec![0.0; n];
        let jac = pcg(
            dense_apply(&a),
            |r, z| {
                for i in 0..n {
                    z[i] = r[i] / diag[i];
                }
            },
            &b,
            &mut x1,
            1e-10,
            1000,
        );
        assert!(plain.converged && jac.converged);
        assert!(
            jac.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            jac.iterations,
            plain.iterations
        );
    }

    #[test]
    fn zero_rhs_immediate() {
        let a = vec![vec![1.0]];
        let b = vec![0.0];
        let mut x = vec![0.0];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-10, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn warm_start_respected() {
        let a = vec![vec![3.0, 1.0], vec![1.0, 2.0]];
        let b = vec![5.0, 5.0];
        // Exact solution is (1, 2).
        let mut x = vec![1.0, 2.0];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-12, 10);
        assert_eq!(res.iterations, 0);
        assert!(res.converged);
    }

    #[test]
    fn breakdown_flagged_on_indefinite_operator() {
        // diag(1, -1) is indefinite: the first search direction along e₂
        // gives pᵀAp = -1 ≤ 0, which must be reported as a breakdown, not
        // as a mere iteration-budget failure.
        let a = vec![vec![1.0, 0.0], vec![0.0, -1.0]];
        let b = vec![0.0, 1.0];
        let mut x = vec![0.0; 2];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-12, 50);
        assert!(!res.converged);
        assert!(res.breakdown);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn workspace_reuse_is_bitwise() {
        let n = 40;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 2.0;
            if i > 0 {
                a[i][i - 1] = -1.0;
                a[i - 1][i] = -1.0;
            }
        }
        let b = vec![1.0; n];
        let mut ws = CgWorkspace::new();
        let mut x0 = vec![0.0; n];
        let r0 = pcg_ws(
            dense_apply(&a),
            identity_precond,
            &b,
            &mut x0,
            1e-10,
            500,
            &mut ws,
        );
        // Second solve reuses the (now dirty) workspace: results must be
        // bitwise identical to a fresh run.
        let mut x1 = vec![0.0; n];
        let r1 = pcg_ws(
            dense_apply(&a),
            identity_precond,
            &b,
            &mut x1,
            1e-10,
            500,
            &mut ws,
        );
        assert_eq!(r0, r1);
        assert_eq!(x0, x1);
    }

    #[test]
    fn max_iter_reports_failure() {
        let n = 40;
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            a[i][i] = 2.0;
            if i > 0 {
                a[i][i - 1] = -1.0;
                a[i - 1][i] = -1.0;
            }
        }
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let res = pcg(dense_apply(&a), identity_precond, &b, &mut x, 1e-14, 2);
        assert!(!res.converged);
        assert_eq!(res.iterations, 2);
    }
}
