//! Property and error-surface tests for the frame protocol on *real*
//! sockets: arbitrary envelopes must round-trip a Unix socketpair byte-
//! for-byte (including 0-byte and >64 KiB payloads, which cross the
//! BufWriter boundary), truncated frames must fail with counted typed
//! errors, and a handshake against a live hub must reject version and
//! world-size skew with the right [`NetError`] variants.

use nkg_net::frame::{read_frame, write_frame, Frame, NetError, PROTO_VERSION};
use nkg_net::hub::{Hub, HubConfig};
use nkg_net::port::RemotePort;
use nkg_net::Envelope;
use proptest::prelude::*;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Write `frames` through one half of a socketpair on a writer thread,
/// read them back on the other half. Exercises the real syscall path —
/// partial reads, buffered writes, kernel socket buffers — not a Vec.
fn socket_round_trip(frames: Vec<Frame>) -> Vec<Frame> {
    let (a, b) = UnixStream::pair().expect("socketpair");
    let n = frames.len();
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(a);
        for f in &frames {
            write_frame(&mut w, f).expect("write frame");
        }
        // Drop closes the stream: the reader sees clean EOF after frame n.
    });
    let mut r = BufReader::new(b);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_frame(&mut r).expect("read frame"));
    }
    assert!(
        matches!(read_frame(&mut r), Err(NetError::Closed)),
        "stream must end cleanly after the last frame"
    );
    writer.join().expect("writer thread");
    out
}

fn envelope(ctx: u64, src: usize, tag: u32, seq: u64, data: Vec<u8>) -> Envelope {
    Envelope {
        ctx,
        src,
        tag,
        data,
        seq,
    }
}

/// Expand one u64 seed into a full `Data` frame: every field (context,
/// source, tag, sequence, destination, payload length and bytes) comes
/// from an independent splitmix64 draw, so the whole value space is
/// exercised even though the vendored proptest only offers ranges.
fn frame_from_seed(seed: u64, max_payload: usize) -> Frame {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let ctx = next();
    let src = (next() % 1024) as usize;
    let tag = next() as u32;
    let seq = next();
    let dst = next() as u32;
    let len = (next() as usize) % (max_payload + 1);
    let data = (0..len).map(|_| next() as u8).collect();
    Frame::Data {
        dst,
        env: envelope(ctx, src, tag, seq, data),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Batches of Data frames with seed-derived coordinates and payloads
    /// round-trip a real socket bitwise, in order — always including the
    /// two boundary payloads: empty and >64 KiB (beyond one BufWriter
    /// buffer).
    #[test]
    fn framed_envelopes_round_trip_socketpair(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..8),
        big_len in (64usize << 10) + 1..(100 << 10),
        big_seed in 0u64..u64::MAX,
    ) {
        let mut frames: Vec<Frame> = seeds
            .iter()
            .map(|&s| frame_from_seed(s, 4096))
            .collect();
        frames.push(Frame::Data { dst: 0, env: envelope(1, 2, 3, 4, Vec::new()) });
        let big = (0..big_len)
            .map(|i| (big_seed.wrapping_mul(i as u64 | 1) >> 32) as u8)
            .collect();
        frames.push(Frame::Data { dst: 1, env: envelope(5, 6, 7, 8, big) });
        let got = socket_round_trip(frames.clone());
        prop_assert_eq!(got, frames);
    }

    /// Every truncation point of a valid frame yields a loud typed error —
    /// never a silent success, a hang, or a garbled envelope.
    #[test]
    fn truncated_frames_fail_loudly(
        seed in 0u64..u64::MAX,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = frame_from_seed(seed, 255);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        // Cut strictly inside the frame (losing at least the last byte).
        let cut = 1 + ((bytes.len() - 2) as f64 * cut_frac) as usize;
        let mut r = &bytes[..cut];
        match read_frame(&mut r) {
            Err(NetError::Truncated { need, got, .. }) => prop_assert!(got < need),
            other => prop_assert!(false, "expected Truncated, got {other:?}"),
        }
    }
}

/// Version skew is refused by the hub and surfaces as a typed
/// `VersionSkew` naming both versions, through a real handshake.
#[test]
fn handshake_rejects_version_skew() {
    let hub = Hub::new(HubConfig {
        world: 1,
        plan: None,
        deliver_grace: Duration::from_secs(1),
    });
    let (ours, theirs) = UnixStream::pair().unwrap();
    let hr = Box::new(BufReader::new(theirs.try_clone().unwrap()));
    let hw = Box::new(BufWriter::new(theirs));
    hub.adopt(hr, hw);
    // Speak a future protocol version by hand.
    let mut w = BufWriter::new(ours.try_clone().unwrap());
    write_frame(
        &mut w,
        &Frame::Hello {
            version: PROTO_VERSION + 1,
            world: 1,
            rank: 0,
            incarnation: 0,
        },
    )
    .unwrap();
    w.flush().unwrap();
    let mut r = BufReader::new(ours);
    match read_frame(&mut r).unwrap() {
        Frame::Reject { reason } => match reason.into_error() {
            NetError::VersionSkew { ours, theirs } => {
                assert_eq!(ours, PROTO_VERSION + 1);
                assert_eq!(theirs, PROTO_VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        },
        other => panic!("expected Reject, got {other:?}"),
    }
    drop(r);
    let report = hub.shutdown();
    assert!(report.panics.is_empty());
}

/// World-size disagreement is caught in the handshake as `ConfigSkew`
/// naming the field, using the full `RemotePort::connect` path.
#[test]
fn handshake_rejects_world_size_skew() {
    let hub = Hub::new(HubConfig {
        world: 4,
        plan: None,
        deliver_grace: Duration::from_secs(1),
    });
    let (ours, theirs) = UnixStream::pair().unwrap();
    let hr = Box::new(BufReader::new(theirs.try_clone().unwrap()));
    let hw = Box::new(BufWriter::new(theirs));
    hub.adopt(hr, hw);
    let reader = Box::new(BufReader::new(ours.try_clone().unwrap()));
    let writer = Box::new(BufWriter::new(ours));
    // The connector believes the world has 3 ranks; the hub says 4.
    let err = match RemotePort::connect(reader, writer, 0, 3, 0, Duration::from_secs(1)) {
        Err(e) => e,
        Ok(_) => panic!("handshake must fail"),
    };
    match err {
        NetError::ConfigSkew {
            field,
            ours,
            theirs,
        } => {
            assert_eq!(field, "world_size");
            assert_eq!(ours, 3);
            assert_eq!(theirs, 4);
        }
        other => panic!("expected ConfigSkew, got {other:?}"),
    }
    let report = hub.shutdown();
    assert!(report.panics.is_empty());
}

/// A second Hello claiming an already-taken rank is rejected with the
/// rank named — duplicate launches fail loudly instead of cross-wiring.
#[test]
fn handshake_rejects_taken_rank() {
    let hub = Hub::new(HubConfig {
        world: 1,
        plan: None,
        deliver_grace: Duration::from_secs(1),
    });
    let mut ports = Vec::new();
    let mut first = None;
    for attempt in 0..2 {
        let (ours, theirs) = UnixStream::pair().unwrap();
        hub.adopt(
            Box::new(BufReader::new(theirs.try_clone().unwrap())),
            Box::new(BufWriter::new(theirs)),
        );
        let res = RemotePort::connect(
            Box::new(BufReader::new(ours.try_clone().unwrap())),
            Box::new(BufWriter::new(ours)),
            0,
            1,
            0,
            Duration::from_secs(1),
        );
        match (attempt, res) {
            (0, Ok(p)) => first = Some(p),
            (1, Err(NetError::Rejected { rank, .. })) => assert_eq!(rank, 0),
            (a, other) => panic!("attempt {a}: unexpected {:?}", other.err()),
        }
    }
    if let Some((port, _rx)) = first.take() {
        port.goodbye();
        ports.push(port);
    }
    drop(ports);
    let report = hub.shutdown();
    assert!(report.panics.is_empty());
}
