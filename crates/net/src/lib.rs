//! # nkg-net — pluggable transport layer for the MCI runtime
//!
//! The MCI virtual machine in `nkg-mci` judges every message at a single
//! chokepoint: sequence stamping, heartbeats, fault-plan injection and
//! delivery all happen where a rank *posts*. This crate extracts that
//! chokepoint ([`router::RouterCore`]) together with the primitives it is
//! built on (wire encoding, envelopes, liveness, fault plans) and puts a
//! pluggable transport underneath it, so one `Universe` can span OS
//! threads, processes, or machines while the PR 3 fault-tolerance
//! semantics stay byte-for-byte identical:
//!
//! * **in-proc** — the historical backend: ranks are threads, delivery is
//!   a channel send ([`router::Sink`] implemented directly on the sender);
//! * **uds / tcp** — ranks talk to a [`hub::Hub`] over length-prefixed
//!   framed streams ([`frame`]) with a version/config handshake; the hub
//!   owns the router, so fault judging, liveness and statistics live in
//!   exactly one place regardless of where ranks run;
//! * **shm** — a same-address-space shared-memory byte ring ([`ring`])
//!   carrying the identical frame protocol without kernel round-trips.
//!
//! Process-mode bootstrap (endpoints, worker environment, exit codes)
//! lives in [`endpoint`]; the rank-side connection state machine in
//! [`port`].

pub mod endpoint;
pub mod envelope;
pub mod fault;
pub mod frame;
pub mod hub;
pub mod liveness;
pub mod port;
pub mod ring;
pub mod router;
pub mod wire;

pub use envelope::Envelope;
pub use frame::{Frame, NetError, RejectReason, PROTO_VERSION};
pub use liveness::{Liveness, LivenessView};

/// Message tag type (user tags must stay below [`RESERVED_TAG_BASE`]).
pub type Tag = u32;

/// Tags at or above this value are reserved for internal collectives.
pub const RESERVED_TAG_BASE: Tag = 0xFFFF_0000;

/// Environment variable selecting the transport backend for a run.
pub const TRANSPORT_ENV: &str = "NKG_TRANSPORT";

/// Which transport carries MCI traffic for one universe run.
///
/// Every backend runs the same router, so fault plans, liveness, dedup and
/// message statistics behave identically; they differ only in how bytes
/// move between a rank and the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Ranks are threads; delivery is an in-process channel send. The
    /// default, and the only backend with zero per-message encoding cost.
    InProc,
    /// Unix-domain socket streams to a hub (socketpairs for thread ranks,
    /// a named listener for process ranks).
    Uds,
    /// Loopback TCP streams to a hub. The only backend that can cross
    /// machines; also usable same-host.
    Tcp,
    /// Same-address-space shared-memory byte rings carrying the frame
    /// protocol. Thread ranks only: cross-process shared memory needs
    /// `mmap`, which this workspace's no-external-deps rule rules out.
    Shm,
}

impl Backend {
    /// All backends, in documentation/bench order.
    pub const ALL: [Backend; 4] = [Backend::InProc, Backend::Uds, Backend::Tcp, Backend::Shm];

    /// Lower-case name, as accepted by [`TRANSPORT_ENV`].
    pub fn name(self) -> &'static str {
        match self {
            Backend::InProc => "inproc",
            Backend::Uds => "uds",
            Backend::Tcp => "tcp",
            Backend::Shm => "shm",
        }
    }

    /// Parse a backend name (the [`TRANSPORT_ENV`] value format).
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Backend selected by the `NKG_TRANSPORT` environment variable,
    /// defaulting to [`Backend::InProc`] when unset or empty.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo silently falling back to
    /// the default would invalidate whatever the caller was measuring.
    pub fn from_env() -> Backend {
        match std::env::var(TRANSPORT_ENV) {
            Ok(v) if !v.is_empty() => Backend::parse(&v).unwrap_or_else(|| {
                panic!(
                    "{TRANSPORT_ENV}={v:?} is not a known transport; \
                     expected one of inproc|uds|tcp|shm"
                )
            }),
            _ => Backend::InProc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("carrier-pigeon"), None);
    }
}
