//! Length-prefixed frame protocol carried by the socket and shared-memory
//! backends.
//!
//! Every frame is `[4-byte magic "NKGF"][1-byte kind][4-byte body length,
//! u32 LE][body]`. Bodies reuse the little-endian scalar encoding of
//! [`crate::wire`]; an [`Envelope`] payload travels as raw bytes after its
//! fixed header fields, so the physics data a rank posted crosses the
//! socket bit-for-bit.
//!
//! The first frame on every connection must be [`Frame::Hello`]; the hub
//! answers [`Frame::Welcome`] (run configuration the rank must adopt) or
//! [`Frame::Reject`] (version/config skew, duplicate rank), after which
//! only post-handshake frames are legal. Every decoding failure is a loud
//! typed [`NetError`] — a truncated frame names how many bytes were
//! expected and seen, version skew names both versions — because a
//! transport that guesses is a transport that corrupts physics.

use crate::envelope::Envelope;
use std::io::{Read, Write};

/// Frame magic: ASCII `NKGF`.
pub const MAGIC: [u8; 4] = *b"NKGF";

/// Protocol version carried in [`Frame::Hello`]; bumped on any change to
/// the frame grammar or body encodings. v2 added incarnation-numbered
/// identities (`Hello`/`Dead` carry an incarnation, plus the `Rejoined`
/// broadcast) for supervised rank restart.
pub const PROTO_VERSION: u32 = 2;

/// Upper bound on one frame body (256 MiB). Far above any real exchange;
/// a length beyond it means a corrupt or hostile stream, not a message.
pub const MAX_FRAME_BODY: usize = 1 << 28;

const K_HELLO: u8 = 1;
const K_WELCOME: u8 = 2;
const K_REJECT: u8 = 3;
const K_DATA: u8 = 4;
const K_POST_ACK: u8 = 5;
const K_HEARTBEAT: u8 = 6;
const K_CTX_REQ: u8 = 7;
const K_CTX_REP: u8 = 8;
const K_DEAD: u8 = 9;
const K_DYING: u8 = 10;
const K_GOODBYE: u8 = 11;
const K_RESULT: u8 = 12;
const K_REJOINED: u8 = 13;

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// First frame on every connection: who is connecting, speaking what.
    Hello {
        /// Sender's [`PROTO_VERSION`].
        version: u32,
        /// World size the sender believes it is joining.
        world: u32,
        /// World rank the sender claims.
        rank: u32,
        /// Incarnation of the claim: 0 for a first launch, `k` for the
        /// `k`-th supervised respawn of this rank. A higher incarnation
        /// than the hub's current one is a rejoin; a lower one is fenced.
        incarnation: u32,
    },
    /// Hub's handshake acceptance, carrying run configuration.
    Welcome {
        /// Authoritative world size.
        world: u32,
        /// Whether mailboxes must deduplicate by sequence number.
        dedup: bool,
        /// Whether every `Data` post is answered with a [`Frame::PostAck`]
        /// (enabled when the fault plan scripts kills, so a rank dies
        /// synchronously at its k-th post exactly like the in-proc path).
        ack_posts: bool,
    },
    /// Hub's handshake refusal; the connection closes after this frame.
    Reject {
        /// Why the hub refused.
        reason: RejectReason,
    },
    /// One routed envelope. Rank→hub: a post, `dst` names the target.
    /// Hub→rank: a delivery, `dst` echoes the receiving rank.
    Data {
        /// Destination world rank.
        dst: u32,
        /// The message.
        env: Envelope,
    },
    /// Synchronous answer to a post when `ack_posts` is on.
    PostAck {
        /// True when the fault plan killed the posting rank at this post.
        killed: bool,
    },
    /// Explicit liveness beat for `rank` (compute phases with no traffic).
    Heartbeat {
        /// World rank that is alive.
        rank: u32,
    },
    /// Request `n` fresh communicator contexts from the hub allocator.
    CtxReq {
        /// How many consecutive contexts to allocate.
        n: u64,
    },
    /// Answer to [`Frame::CtxReq`]: first context of the allocated block.
    CtxRep {
        /// First allocated context id.
        base: u64,
    },
    /// Hub→rank broadcast: `rank` has been declared dead.
    Dead {
        /// The dead world rank.
        rank: u32,
        /// The incarnation that died. Receivers ignore the announcement
        /// when they have already observed a newer incarnation rejoin.
        incarnation: u32,
    },
    /// Rank→hub: this rank is dying (panic unwinding); declare it dead.
    Dying {
        /// The dying world rank.
        rank: u32,
    },
    /// Rank→hub: clean completion. An EOF *without* a preceding Goodbye is
    /// death detection's trigger: the rank crashed without a word.
    Goodbye {
        /// The finishing world rank.
        rank: u32,
    },
    /// Rank→hub: the program's encoded result payload (process mode).
    Result {
        /// Encoded result bytes.
        data: Vec<u8>,
    },
    /// Hub→rank broadcast: `rank` completed a rejoin handshake under a new
    /// incarnation — flip it back to alive and fence its older incarnations.
    Rejoined {
        /// The resurrected world rank.
        rank: u32,
        /// Its new (strictly higher) incarnation.
        incarnation: u32,
    },
}

impl Frame {
    /// Frame kind name, for protocol-error diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Welcome { .. } => "Welcome",
            Frame::Reject { .. } => "Reject",
            Frame::Data { .. } => "Data",
            Frame::PostAck { .. } => "PostAck",
            Frame::Heartbeat { .. } => "Heartbeat",
            Frame::CtxReq { .. } => "CtxReq",
            Frame::CtxRep { .. } => "CtxRep",
            Frame::Dead { .. } => "Dead",
            Frame::Dying { .. } => "Dying",
            Frame::Goodbye { .. } => "Goodbye",
            Frame::Result { .. } => "Result",
            Frame::Rejoined { .. } => "Rejoined",
        }
    }
}

/// Why a hub refused a handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Protocol version mismatch.
    Version {
        /// Hub's [`PROTO_VERSION`].
        ours: u32,
        /// Connecting side's version.
        theirs: u32,
    },
    /// The rank joined a differently-sized world than the hub runs.
    WorldSize {
        /// Hub's world size.
        ours: u32,
        /// Connecting side's world size.
        theirs: u32,
    },
    /// Another connection already claimed this rank.
    RankTaken {
        /// The contested rank.
        rank: u32,
    },
    /// The claimed rank is outside `0..world`.
    RankRange {
        /// The claimed rank.
        rank: u32,
        /// Hub's world size.
        world: u32,
    },
    /// A reconnect claimed an incarnation the hub has already superseded
    /// (a zombie of an earlier respawn attempt); the rank must be fenced.
    StaleIncarnation {
        /// The contested rank.
        rank: u32,
        /// The hub's current incarnation for that rank.
        ours: u32,
        /// The stale incarnation the connector claimed.
        theirs: u32,
    },
}

impl RejectReason {
    /// The typed error a rejected connector should surface.
    pub fn into_error(self) -> NetError {
        match self {
            RejectReason::Version { ours, theirs } => NetError::VersionSkew {
                // From the connector's point of view the hub's version is
                // "theirs"; swap so the error reads correctly at the rank.
                ours: theirs,
                theirs: ours,
            },
            RejectReason::WorldSize { ours, theirs } => NetError::ConfigSkew {
                field: "world_size",
                ours: theirs as u64,
                theirs: ours as u64,
            },
            RejectReason::RankTaken { rank }
            | RejectReason::RankRange { rank, .. }
            | RejectReason::StaleIncarnation { rank, .. } => {
                NetError::Rejected { reason: self, rank }
            }
        }
    }
}

/// Loud, typed transport failure.
#[derive(Debug)]
pub enum NetError {
    /// Underlying stream error.
    Io(std::io::Error),
    /// The stream ended inside a frame: `got` of `need` bytes arrived.
    Truncated {
        /// What was being read ("frame header" / "frame body").
        context: &'static str,
        /// Bytes the frame required.
        need: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The stream did not start a frame with [`MAGIC`].
    BadMagic {
        /// The four bytes seen instead.
        got: [u8; 4],
    },
    /// Unknown frame kind byte.
    UnknownKind(u8),
    /// A frame body failed to parse.
    Garbled {
        /// Which frame kind was being decoded.
        context: &'static str,
        /// What was wrong.
        detail: &'static str,
    },
    /// Declared body length exceeds [`MAX_FRAME_BODY`].
    Oversized {
        /// Declared length.
        len: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// Handshake failed: protocol versions differ.
    VersionSkew {
        /// This side's version.
        ours: u32,
        /// Peer's version.
        theirs: u32,
    },
    /// Handshake failed: run configuration differs.
    ConfigSkew {
        /// Which configuration field disagrees.
        field: &'static str,
        /// This side's value.
        ours: u64,
        /// Peer's value.
        theirs: u64,
    },
    /// Handshake refused for a non-skew reason (duplicate/out-of-range rank).
    Rejected {
        /// The hub's refusal.
        reason: RejectReason,
        /// The rank that was refused.
        rank: u32,
    },
    /// An unexpected frame kind arrived for the current protocol state.
    Protocol {
        /// Protocol state ("handshake", "rank pump", ...).
        context: &'static str,
        /// The frame kind that arrived.
        frame: &'static str,
    },
    /// Clean EOF between frames: the peer closed the stream.
    Closed,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport i/o error: {e}"),
            NetError::Truncated { context, need, got } => write!(
                f,
                "truncated {context}: stream ended after {got} of {need} bytes"
            ),
            NetError::BadMagic { got } => write!(
                f,
                "bad frame magic {got:02x?} (expected {:02x?}); stream is not NKGF",
                MAGIC
            ),
            NetError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            NetError::Garbled { context, detail } => {
                write!(f, "garbled {context} frame: {detail}")
            }
            NetError::Oversized { len, max } => write!(
                f,
                "frame body of {len} bytes exceeds the {max}-byte protocol maximum"
            ),
            NetError::VersionSkew { ours, theirs } => write!(
                f,
                "protocol version skew: we speak v{ours}, peer speaks v{theirs}"
            ),
            NetError::ConfigSkew {
                field,
                ours,
                theirs,
            } => write!(
                f,
                "run configuration skew on {field}: ours {ours}, peer's {theirs}"
            ),
            NetError::Rejected { reason, rank } => {
                write!(f, "hub rejected rank {rank}: {reason:?}")
            }
            NetError::Protocol { context, frame } => {
                write!(
                    f,
                    "protocol error: unexpected {frame} frame during {context}"
                )
            }
            NetError::Closed => write!(f, "peer closed the stream"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Body encoding helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Checked reader over one frame body.
struct Body<'a> {
    buf: &'a [u8],
    off: usize,
    context: &'static str,
}

impl<'a> Body<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            off: 0,
            context,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.off + n > self.buf.len() {
            return Err(NetError::Truncated {
                context: self.context,
                need: self.off + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.off..self.off + n];
        self.off += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.off..];
        self.off = self.buf.len();
        s
    }

    fn finish(self) -> Result<(), NetError> {
        if self.off != self.buf.len() {
            return Err(NetError::Garbled {
                context: self.context,
                detail: "trailing bytes after a complete body",
            });
        }
        Ok(())
    }
}

fn encode_body(frame: &Frame) -> (u8, Vec<u8>) {
    let mut b = Vec::new();
    let kind = match frame {
        Frame::Hello {
            version,
            world,
            rank,
            incarnation,
        } => {
            put_u32(&mut b, *version);
            put_u32(&mut b, *world);
            put_u32(&mut b, *rank);
            put_u32(&mut b, *incarnation);
            K_HELLO
        }
        Frame::Welcome {
            world,
            dedup,
            ack_posts,
        } => {
            put_u32(&mut b, *world);
            b.push(u8::from(*dedup));
            b.push(u8::from(*ack_posts));
            K_WELCOME
        }
        Frame::Reject { reason } => {
            // StaleIncarnation carries three u32s after the code byte;
            // every other reason keeps the original two-u32 body.
            match *reason {
                RejectReason::Version { ours, theirs } => {
                    b.push(0u8);
                    put_u32(&mut b, ours);
                    put_u32(&mut b, theirs);
                }
                RejectReason::WorldSize { ours, theirs } => {
                    b.push(1);
                    put_u32(&mut b, ours);
                    put_u32(&mut b, theirs);
                }
                RejectReason::RankTaken { rank } => {
                    b.push(2);
                    put_u32(&mut b, rank);
                    put_u32(&mut b, 0);
                }
                RejectReason::RankRange { rank, world } => {
                    b.push(3);
                    put_u32(&mut b, rank);
                    put_u32(&mut b, world);
                }
                RejectReason::StaleIncarnation { rank, ours, theirs } => {
                    b.push(4);
                    put_u32(&mut b, rank);
                    put_u32(&mut b, ours);
                    put_u32(&mut b, theirs);
                }
            }
            K_REJECT
        }
        Frame::Data { dst, env } => {
            put_u32(&mut b, *dst);
            put_u64(&mut b, env.ctx);
            put_u32(&mut b, env.src as u32);
            put_u32(&mut b, env.tag);
            put_u64(&mut b, env.seq);
            b.extend_from_slice(&env.data);
            K_DATA
        }
        Frame::PostAck { killed } => {
            b.push(u8::from(*killed));
            K_POST_ACK
        }
        Frame::Heartbeat { rank } => {
            put_u32(&mut b, *rank);
            K_HEARTBEAT
        }
        Frame::CtxReq { n } => {
            put_u64(&mut b, *n);
            K_CTX_REQ
        }
        Frame::CtxRep { base } => {
            put_u64(&mut b, *base);
            K_CTX_REP
        }
        Frame::Dead { rank, incarnation } => {
            put_u32(&mut b, *rank);
            put_u32(&mut b, *incarnation);
            K_DEAD
        }
        Frame::Dying { rank } => {
            put_u32(&mut b, *rank);
            K_DYING
        }
        Frame::Goodbye { rank } => {
            put_u32(&mut b, *rank);
            K_GOODBYE
        }
        Frame::Result { data } => {
            b.extend_from_slice(data);
            K_RESULT
        }
        Frame::Rejoined { rank, incarnation } => {
            put_u32(&mut b, *rank);
            put_u32(&mut b, *incarnation);
            K_REJOINED
        }
    };
    (kind, b)
}

fn decode_body(kind: u8, buf: &[u8]) -> Result<Frame, NetError> {
    let frame = match kind {
        K_HELLO => {
            let mut b = Body::new(buf, "Hello");
            let f = Frame::Hello {
                version: b.u32()?,
                world: b.u32()?,
                rank: b.u32()?,
                incarnation: b.u32()?,
            };
            b.finish()?;
            f
        }
        K_WELCOME => {
            let mut b = Body::new(buf, "Welcome");
            let f = Frame::Welcome {
                world: b.u32()?,
                dedup: b.u8()? != 0,
                ack_posts: b.u8()? != 0,
            };
            b.finish()?;
            f
        }
        K_REJECT => {
            let mut b = Body::new(buf, "Reject");
            let code = b.u8()?;
            let a = b.u32()?;
            let c = b.u32()?;
            let reason = match code {
                0 => RejectReason::Version { ours: a, theirs: c },
                1 => RejectReason::WorldSize { ours: a, theirs: c },
                2 => RejectReason::RankTaken { rank: a },
                3 => RejectReason::RankRange { rank: a, world: c },
                4 => RejectReason::StaleIncarnation {
                    rank: a,
                    ours: c,
                    theirs: b.u32()?,
                },
                _ => {
                    return Err(NetError::Garbled {
                        context: "Reject",
                        detail: "unknown reject reason code",
                    })
                }
            };
            b.finish()?;
            Frame::Reject { reason }
        }
        K_DATA => {
            let mut b = Body::new(buf, "Data");
            let dst = b.u32()?;
            let ctx = b.u64()?;
            let src = b.u32()? as usize;
            let tag = b.u32()?;
            let seq = b.u64()?;
            let data = b.rest().to_vec();
            Frame::Data {
                dst,
                env: Envelope {
                    ctx,
                    src,
                    tag,
                    data,
                    seq,
                },
            }
        }
        K_POST_ACK => {
            let mut b = Body::new(buf, "PostAck");
            let f = Frame::PostAck {
                killed: b.u8()? != 0,
            };
            b.finish()?;
            f
        }
        K_HEARTBEAT => {
            let mut b = Body::new(buf, "Heartbeat");
            let f = Frame::Heartbeat { rank: b.u32()? };
            b.finish()?;
            f
        }
        K_CTX_REQ => {
            let mut b = Body::new(buf, "CtxReq");
            let f = Frame::CtxReq { n: b.u64()? };
            b.finish()?;
            f
        }
        K_CTX_REP => {
            let mut b = Body::new(buf, "CtxRep");
            let f = Frame::CtxRep { base: b.u64()? };
            b.finish()?;
            f
        }
        K_DEAD => {
            let mut b = Body::new(buf, "Dead");
            let f = Frame::Dead {
                rank: b.u32()?,
                incarnation: b.u32()?,
            };
            b.finish()?;
            f
        }
        K_DYING => {
            let mut b = Body::new(buf, "Dying");
            let f = Frame::Dying { rank: b.u32()? };
            b.finish()?;
            f
        }
        K_GOODBYE => {
            let mut b = Body::new(buf, "Goodbye");
            let f = Frame::Goodbye { rank: b.u32()? };
            b.finish()?;
            f
        }
        K_RESULT => Frame::Result { data: buf.to_vec() },
        K_REJOINED => {
            let mut b = Body::new(buf, "Rejoined");
            let f = Frame::Rejoined {
                rank: b.u32()?,
                incarnation: b.u32()?,
            };
            b.finish()?;
            f
        }
        k => return Err(NetError::UnknownKind(k)),
    };
    Ok(frame)
}

// ---------------------------------------------------------------------
// Stream i/o
// ---------------------------------------------------------------------

/// Write one frame (header + body) and flush the stream.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, frame: &Frame) -> Result<(), NetError> {
    let (kind, body) = encode_body(frame);
    if body.len() > MAX_FRAME_BODY {
        return Err(NetError::Oversized {
            len: body.len(),
            max: MAX_FRAME_BODY,
        });
    }
    let mut head = [0u8; 9];
    head[..4].copy_from_slice(&MAGIC);
    head[4] = kind;
    head[5..9].copy_from_slice(&(body.len() as u32).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. A clean EOF *between* frames is [`NetError::Closed`];
/// EOF *inside* a frame is [`NetError::Truncated`] with byte counts.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Frame, NetError> {
    let mut head = [0u8; 9];
    read_full(r, &mut head, "frame header", true)?;
    if head[..4] != MAGIC {
        return Err(NetError::BadMagic {
            got: [head[0], head[1], head[2], head[3]],
        });
    }
    let kind = head[4];
    let len = u32::from_le_bytes(head[5..9].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BODY {
        return Err(NetError::Oversized {
            len,
            max: MAX_FRAME_BODY,
        });
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, "frame body", false)?;
    decode_body(kind, &body)
}

/// Fill `buf` completely. With `eof_is_close`, an EOF before the first
/// byte reports [`NetError::Closed`] (a clean shutdown); any other short
/// read is [`NetError::Truncated`].
fn read_full<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    context: &'static str,
    eof_is_close: bool,
) -> Result<(), NetError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && eof_is_close {
                    return Err(NetError::Closed);
                }
                return Err(NetError::Truncated {
                    context,
                    need: buf.len(),
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        assert!(cursor.is_empty(), "frame must consume exactly its bytes");
    }

    #[test]
    fn all_kinds_round_trip() {
        round_trip(Frame::Hello {
            version: PROTO_VERSION,
            world: 4,
            rank: 2,
            incarnation: 3,
        });
        round_trip(Frame::Welcome {
            world: 4,
            dedup: true,
            ack_posts: false,
        });
        round_trip(Frame::Reject {
            reason: RejectReason::Version { ours: 1, theirs: 9 },
        });
        round_trip(Frame::Reject {
            reason: RejectReason::RankRange { rank: 9, world: 4 },
        });
        round_trip(Frame::Reject {
            reason: RejectReason::StaleIncarnation {
                rank: 1,
                ours: 5,
                theirs: 2,
            },
        });
        round_trip(Frame::Data {
            dst: 3,
            env: Envelope {
                ctx: 7,
                src: 1,
                tag: 0xABCD,
                data: vec![1, 2, 3, 4, 5],
                seq: 99,
            },
        });
        round_trip(Frame::PostAck { killed: true });
        round_trip(Frame::Heartbeat { rank: 0 });
        round_trip(Frame::CtxReq { n: 3 });
        round_trip(Frame::CtxRep { base: 17 });
        round_trip(Frame::Dead {
            rank: 1,
            incarnation: 0,
        });
        round_trip(Frame::Dying { rank: 2 });
        round_trip(Frame::Goodbye { rank: 3 });
        round_trip(Frame::Result {
            data: vec![0; 1024],
        });
        round_trip(Frame::Rejoined {
            rank: 1,
            incarnation: 2,
        });
    }

    #[test]
    fn zero_byte_payload_round_trips() {
        round_trip(Frame::Data {
            dst: 0,
            env: Envelope {
                ctx: 0,
                src: 0,
                tag: 0,
                data: Vec::new(),
                seq: 0,
            },
        });
    }

    #[test]
    fn clean_eof_is_closed() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut { empty }), Err(NetError::Closed)));
    }

    #[test]
    fn truncated_header_reports_counts() {
        let mut partial: &[u8] = &MAGIC[..3];
        match read_frame(&mut partial) {
            Err(NetError::Truncated { context, need, got }) => {
                assert_eq!(context, "frame header");
                assert_eq!((need, got), (9, 3));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_reports_counts() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::CtxReq { n: 5 }).unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = &buf[..];
        match read_frame(&mut cursor) {
            Err(NetError::Truncated { context, need, got }) => {
                assert_eq!(context, "frame body");
                assert_eq!((need, got), (8, 5));
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Heartbeat { rank: 0 }).unwrap();
        buf[0] = b'X';
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::BadMagic { got }) if got[0] == b'X'
        ));
    }

    #[test]
    fn unknown_kind_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Heartbeat { rank: 0 }).unwrap();
        buf[4] = 0xEE;
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::UnknownKind(0xEE))
        ));
    }

    #[test]
    fn trailing_bytes_are_garbled() {
        // A Heartbeat body padded with an extra byte must not parse.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(6); // K_HEARTBEAT
        buf.extend_from_slice(&5u32.to_le_bytes());
        buf.extend_from_slice(&[0, 0, 0, 0, 7]);
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Garbled {
                context: "Heartbeat",
                ..
            })
        ));
    }

    #[test]
    fn oversized_length_refused() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(12); // K_RESULT
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &buf[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::Oversized { .. })
        ));
    }

    #[test]
    fn reject_reasons_map_to_typed_errors() {
        assert!(matches!(
            RejectReason::Version { ours: 1, theirs: 2 }.into_error(),
            NetError::VersionSkew { ours: 2, theirs: 1 }
        ));
        assert!(matches!(
            RejectReason::WorldSize { ours: 4, theirs: 3 }.into_error(),
            NetError::ConfigSkew {
                field: "world_size",
                ours: 3,
                theirs: 4
            }
        ));
        assert!(matches!(
            RejectReason::RankTaken { rank: 2 }.into_error(),
            NetError::Rejected { rank: 2, .. }
        ));
        assert!(matches!(
            RejectReason::StaleIncarnation {
                rank: 1,
                ours: 3,
                theirs: 1
            }
            .into_error(),
            NetError::Rejected { rank: 1, .. }
        ));
    }
}
