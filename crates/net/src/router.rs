//! The routing core: the single chokepoint every posted message passes
//! through, extracted from the MCI universe so every backend judges
//! traffic identically.
//!
//! [`RouterCore::route`] stamps the transport sequence number, beats the
//! sender's liveness, counts traffic, consults the fault plan and hands
//! the envelope to a destination [`Sink`]. In-proc, the sink *is* the
//! rank's channel sender (zero extra hops — the historical behavior);
//! under the socket and shared-memory backends it is the hub's framed
//! writer for the destination rank. The core never panics a scripted kill
//! itself: it marks the rank dead and returns [`Verdict::Killed`], and
//! the caller decides how death reaches the rank (an unwinding panic
//! in-proc, a synchronous post-ack over sockets).

use crate::envelope::Envelope;
use crate::fault::{Decision, FaultPlan, FaultState, FaultStats, MsgAction};
use crate::liveness::Liveness;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Delivery failed because the destination can no longer accept traffic.
pub struct SinkClosed;

/// One rank's delivery endpoint.
pub trait Sink: Send + Sync {
    /// Hand one envelope to the destination rank.
    fn deliver(&self, env: Envelope) -> Result<(), SinkClosed>;
}

/// The in-proc backend: delivery is a channel send.
impl Sink for crossbeam_channel::Sender<Envelope> {
    fn deliver(&self, env: Envelope) -> Result<(), SinkClosed> {
        self.send(env).map_err(|_| SinkClosed)
    }
}

/// What [`RouterCore::route`] did with a post.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The message was handled (delivered, dropped, duplicated or parked —
    /// the sender does not distinguish).
    Posted,
    /// The fault plan killed the sending rank at this post; it has been
    /// marked dead and the message was discarded.
    Killed,
}

/// A fault-delayed message parked at the transport until enough later
/// traffic on the same `src → dst` flow has been delivered.
struct Delayed {
    dst: usize,
    remaining: u64,
    env: Envelope,
}

/// Shared routing state of one universe run.
pub struct RouterCore<S: Sink> {
    sinks: Vec<S>,
    ctx_counter: AtomicU64,
    msg_count: AtomicU64,
    byte_count: AtomicU64,
    seq_counter: AtomicU64,
    stale_count: AtomicU64,
    liveness: Arc<Liveness>,
    fault: Option<FaultState>,
    delayed: Mutex<Vec<Delayed>>,
}

impl<S: Sink> RouterCore<S> {
    /// Build the router for one run: one sink per world rank, the shared
    /// liveness table, and an optional fault plan instantiated against
    /// this world size.
    pub fn new(sinks: Vec<S>, liveness: Arc<Liveness>, plan: Option<FaultPlan>) -> Self {
        let n = sinks.len();
        Self {
            sinks,
            // ctx 0 is the world communicator of this run.
            ctx_counter: AtomicU64::new(1),
            msg_count: AtomicU64::new(0),
            byte_count: AtomicU64::new(0),
            seq_counter: AtomicU64::new(0),
            stale_count: AtomicU64::new(0),
            liveness,
            fault: plan.map(|p| FaultState::new(p, n)),
            delayed: Mutex::new(Vec::new()),
        }
    }

    /// Route one posted message. This is the single chokepoint all traffic
    /// passes through, so it is where the fault plan judges every message,
    /// where stale incarnations are fenced, and where heartbeats and
    /// sequence numbers are stamped.
    ///
    /// `src_incarnation` is the incarnation the *sender's connection*
    /// handshook under (always the current one for in-proc ranks, which
    /// cannot be respawned mid-run). A post from a superseded incarnation
    /// — a zombie of a rank that has already been respawned — is silently
    /// discarded before it can beat the heartbeat table or consume a
    /// sequence number, identically on every transport.
    pub fn route(&self, dst: usize, mut env: Envelope, src_incarnation: u64) -> Verdict {
        if src_incarnation < self.liveness.incarnation(env.src) {
            self.stale_count.fetch_add(1, Ordering::Relaxed);
            return Verdict::Posted;
        }
        self.liveness.beat(env.src);
        env.seq = self.seq_counter.fetch_add(1, Ordering::Relaxed);
        self.msg_count.fetch_add(1, Ordering::Relaxed);
        self.byte_count
            .fetch_add(env.data.len() as u64, Ordering::Relaxed);
        match self
            .fault
            .as_ref()
            .map_or(Decision::Deliver, |f| f.on_post(&env, dst))
        {
            Decision::Kill => {
                self.liveness.mark_dead(env.src);
                return Verdict::Killed;
            }
            Decision::Act(MsgAction::Drop) => {}
            Decision::Act(MsgAction::Duplicate) => {
                let src = env.src;
                self.deliver(dst, env.clone());
                // The extra copy is a transport artifact: a real network may
                // deliver a duplicate after the receiver has finalized, so a
                // closed mailbox just swallows it.
                self.deliver_one(dst, env, true);
                if self.fault.is_some() {
                    self.tick_delayed(src, dst);
                }
            }
            Decision::Act(MsgAction::Delay { after_flow_msgs }) => {
                if after_flow_msgs == 0 {
                    self.deliver(dst, env);
                } else {
                    self.delayed.lock().unwrap().push(Delayed {
                        dst,
                        remaining: after_flow_msgs,
                        env,
                    });
                }
            }
            Decision::Deliver => self.deliver(dst, env),
        }
        Verdict::Posted
    }

    /// Hand one envelope to the destination sink, releasing any parked
    /// delayed messages on the same flow whose counters reach zero.
    fn deliver(&self, dst: usize, env: Envelope) {
        let src = env.src;
        self.deliver_one(dst, env, false);
        if self.fault.is_some() {
            self.tick_delayed(src, dst);
        }
    }

    /// `best_effort` marks transport-generated extras (duplicate copies,
    /// delayed releases): a real network may deliver those after the
    /// receiver has finalized, so a closed sink swallows them silently
    /// instead of flagging a protocol error.
    fn deliver_one(&self, dst: usize, env: Envelope, best_effort: bool) {
        if self.sinks[dst].deliver(env).is_err() {
            if best_effort {
                return;
            }
            // The destination's sink is closed: its rank has exited.
            // If it died by scripted kill the flag may lag the disconnect
            // by an instant, so give it a moment before concluding this is
            // a genuine protocol error.
            if self.liveness.is_dead(dst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            if self.liveness.is_dead(dst) {
                return;
            }
            panic!("virtual network: destination rank has exited");
        }
    }

    /// A message on `src → dst` was just delivered: decrement parked
    /// delayed messages on that flow and flush the ones that come due.
    /// Flushed messages do not re-enter the countdown (no cascades).
    fn tick_delayed(&self, src: usize, dst: usize) {
        let due: Vec<Delayed> = {
            let mut parked = self.delayed.lock().unwrap();
            let mut due = Vec::new();
            let mut i = 0;
            while i < parked.len() {
                if parked[i].env.src == src && parked[i].dst == dst {
                    parked[i].remaining -= 1;
                    if parked[i].remaining == 0 {
                        due.push(parked.swap_remove(i));
                        continue;
                    }
                }
                i += 1;
            }
            due
        };
        for d in due {
            self.deliver_one(d.dst, d.env, true);
        }
    }

    /// Allocate `n` consecutive communicator contexts.
    pub fn alloc_ctx(&self, n: u64) -> u64 {
        self.ctx_counter.fetch_add(n, Ordering::Relaxed)
    }

    /// The run's shared liveness table.
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.liveness
    }

    /// Total messages routed so far.
    pub fn messages(&self) -> u64 {
        self.msg_count.load(Ordering::Relaxed)
    }

    /// Total payload bytes routed so far.
    pub fn bytes(&self) -> u64 {
        self.byte_count.load(Ordering::Relaxed)
    }

    /// Posts fenced because they arrived from a superseded incarnation.
    pub fn stale_drops(&self) -> u64 {
        self.stale_count.load(Ordering::Relaxed)
    }

    /// Fault-plan counters (all-zero defaults when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| f.stats()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{MsgMatcher, Pick};
    use crossbeam_channel::unbounded;

    fn env(src: usize, tag: u32, data: Vec<u8>) -> Envelope {
        Envelope {
            ctx: 0,
            src,
            tag,
            data,
            seq: 0,
        }
    }

    #[test]
    fn routes_and_counts() {
        let (tx, rx) = unbounded();
        let core = RouterCore::new(vec![tx], Arc::new(Liveness::new(1)), None);
        assert_eq!(core.route(0, env(0, 1, vec![0; 16]), 0), Verdict::Posted);
        let got = rx.try_recv().unwrap();
        assert_eq!(got.seq, 0);
        assert_eq!((core.messages(), core.bytes()), (1, 16));
        assert_eq!(core.liveness().beats(0), 1);
    }

    #[test]
    fn kill_marks_dead_and_discards() {
        let (tx, rx) = unbounded();
        let plan = FaultPlan::new().kill_rank(0, 1);
        let core = RouterCore::new(vec![tx], Arc::new(Liveness::new(1)), Some(plan));
        assert_eq!(core.route(0, env(0, 1, vec![1]), 0), Verdict::Killed);
        assert!(core.liveness().is_dead(0));
        assert!(rx.try_recv().is_err(), "killed post must not deliver");
        assert_eq!(core.fault_stats().sends_per_rank, vec![1]);
    }

    #[test]
    fn duplicate_copies_share_the_sequence_number() {
        let (tx, rx) = unbounded();
        let plan =
            FaultPlan::new().with_rule(MsgMatcher::any(), Pick::Always, MsgAction::Duplicate);
        let core = RouterCore::new(vec![tx], Arc::new(Liveness::new(1)), Some(plan));
        core.route(0, env(0, 7, vec![9]), 0);
        let a = rx.try_recv().unwrap();
        let b = rx.try_recv().unwrap();
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.data, b.data);
    }

    #[test]
    fn stale_incarnation_posts_are_fenced() {
        let (tx, rx) = unbounded();
        let core = RouterCore::new(vec![tx], Arc::new(Liveness::new(1)), None);
        core.liveness().mark_dead(0);
        assert!(core.liveness().resurrect(0, 1));
        // A zombie of incarnation 0 posts after the respawn: discarded
        // without beating the heartbeat or consuming a sequence number.
        assert_eq!(core.route(0, env(0, 1, vec![7]), 0), Verdict::Posted);
        assert!(rx.try_recv().is_err(), "stale post must not deliver");
        assert_eq!(core.stale_drops(), 1);
        assert_eq!(core.liveness().beats(0), 0);
        // The new incarnation's traffic flows normally.
        assert_eq!(core.route(0, env(0, 1, vec![8]), 1), Verdict::Posted);
        assert_eq!(rx.try_recv().unwrap().seq, 0);
    }
}
