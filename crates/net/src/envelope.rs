//! The message envelope: the unit of traffic every backend carries.

use crate::Tag;

/// One message in flight on the virtual network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Communicator context the message belongs to.
    pub ctx: u64,
    /// World rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Encoded payload bytes.
    pub data: Vec<u8>,
    /// Universe-unique transport sequence number. A duplicated message
    /// (fault-injected or retried at the transport) carries the *same*
    /// number as the original, so receivers can discard the copy.
    pub seq: u64,
}
