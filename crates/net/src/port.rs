//! The rank side of a framed connection: handshake, demultiplexing pump,
//! and the post/ack/liveness state machine.
//!
//! A [`RemotePort`] is one rank's view of the hub. Its pump thread reads
//! frames off the stream and demultiplexes them — `Data` into the
//! mailbox channel, `Dead` into the rank's local liveness replica,
//! `PostAck`/`CtxRep` into RPC reply channels — so the rank's program
//! thread never blocks on protocol traffic it is not waiting for.
//! Everything the in-proc backend did through shared memory (the
//! liveness table, context allocation, synchronous kill panics) has an
//! explicit protocol message here, which is exactly what lets the same
//! semantics hold across a process boundary.

use crate::envelope::Envelope;
use crate::fault::ScriptedKill;
use crate::frame::{read_frame, write_frame, Frame, NetError, PROTO_VERSION};
use crate::liveness::Liveness;
use crossbeam_channel::{unbounded, Receiver, Sender};
use std::cell::RefCell;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// One rank's connection to the hub.
pub struct RemotePort {
    rank: usize,
    writer: RefCell<Box<dyn Write + Send>>,
    liveness: Arc<Liveness>,
    dedup: bool,
    ack_posts: bool,
    ack_rx: Receiver<bool>,
    ctx_rx: Receiver<u64>,
    /// Bound on waiting for a hub reply (acks, context allocation); a hub
    /// that stops answering within it is a dead run, reported loudly.
    reply_timeout: Duration,
}

impl RemotePort {
    /// Run the handshake on a fresh connection and start the pump.
    ///
    /// Sends `Hello`, awaits `Welcome` (or a typed rejection), then spawns
    /// the demultiplexing pump. Returns the port plus the channel the pump
    /// feeds delivered envelopes into — the rank's mailbox intake.
    ///
    /// `incarnation` is 0 for a first launch; a supervised respawn
    /// connects with the attempt number, turning the handshake into a
    /// rejoin at the hub.
    pub fn connect(
        mut reader: Box<dyn Read + Send>,
        mut writer: Box<dyn Write + Send>,
        rank: usize,
        world: usize,
        incarnation: u64,
        reply_timeout: Duration,
    ) -> Result<(RemotePort, Receiver<Envelope>), NetError> {
        write_frame(
            &mut *writer,
            &Frame::Hello {
                version: PROTO_VERSION,
                world: world as u32,
                rank: rank as u32,
                incarnation: incarnation as u32,
            },
        )?;
        let (dedup, ack_posts) = match read_frame(&mut *reader)? {
            Frame::Welcome {
                world: their_world,
                dedup,
                ack_posts,
            } => {
                if their_world as usize != world {
                    return Err(NetError::ConfigSkew {
                        field: "world_size",
                        ours: world as u64,
                        theirs: their_world as u64,
                    });
                }
                (dedup, ack_posts)
            }
            Frame::Reject { reason } => return Err(reason.into_error()),
            other => {
                return Err(NetError::Protocol {
                    context: "handshake",
                    frame: other.kind_name(),
                })
            }
        };
        let liveness = Arc::new(Liveness::new(world));
        if incarnation > 0 {
            // Our own slot in the local replica must reflect the rejoin
            // incarnation, so replayed `Dead` frames for our *previous*
            // incarnation are fenced instead of killing us locally.
            liveness.resurrect(rank, incarnation);
        }
        let (env_tx, env_rx) = unbounded();
        let (ack_tx, ack_rx) = unbounded();
        let (ctx_tx, ctx_rx) = unbounded();
        {
            let liveness = Arc::clone(&liveness);
            std::thread::Builder::new()
                .name(format!("nkg-port-{rank}"))
                .spawn(move || pump(reader, liveness, env_tx, ack_tx, ctx_tx))
                .expect("failed to spawn port pump thread");
        }
        Ok((
            RemotePort {
                rank,
                writer: RefCell::new(writer),
                liveness,
                dedup,
                ack_posts,
                ack_rx,
                ctx_rx,
                reply_timeout,
            },
            env_rx,
        ))
    }

    /// This rank's local liveness replica (fed by `Dead` broadcasts).
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.liveness
    }

    /// Whether the mailbox must deduplicate by sequence number this run.
    pub fn dedup(&self) -> bool {
        self.dedup
    }

    /// Post one envelope to world rank `dst` through the hub.
    ///
    /// # Panics
    /// Panics with [`ScriptedKill`] when the hub's fault plan kills this
    /// rank at this post (ack mode) — the same unwinding death the
    /// in-proc backend delivers. Panics loudly if the hub connection is
    /// gone: without the hub there is no run left to continue.
    pub fn post(&self, dst: usize, env: Envelope) {
        let frame = Frame::Data {
            dst: dst as u32,
            env,
        };
        if let Err(e) = write_frame(&mut **self.writer.borrow_mut(), &frame) {
            panic!("rank {}: hub connection lost on post: {e}", self.rank);
        }
        if self.ack_posts {
            match self.ack_rx.recv_timeout(self.reply_timeout) {
                Ok(false) => {}
                Ok(true) => {
                    self.liveness.mark_dead(self.rank);
                    std::panic::panic_any(ScriptedKill { rank: self.rank });
                }
                Err(_) => panic!(
                    "rank {}: hub stopped acknowledging posts (waited {:?})",
                    self.rank, self.reply_timeout
                ),
            }
        }
    }

    /// Allocate `n` consecutive communicator contexts from the hub.
    pub fn alloc_ctx(&self, n: u64) -> u64 {
        if let Err(e) = write_frame(&mut **self.writer.borrow_mut(), &Frame::CtxReq { n }) {
            panic!(
                "rank {}: hub connection lost on context allocation: {e}",
                self.rank
            );
        }
        match self.ctx_rx.recv_timeout(self.reply_timeout) {
            Ok(base) => base,
            Err(_) => panic!(
                "rank {}: hub did not answer context allocation (waited {:?})",
                self.rank, self.reply_timeout
            ),
        }
    }

    /// Record a heartbeat locally and forward it to the hub (best effort —
    /// a rank that cannot reach the hub is about to find out anyway).
    pub fn beat(&self) {
        self.liveness.beat(self.rank);
        let _ = write_frame(
            &mut **self.writer.borrow_mut(),
            &Frame::Heartbeat {
                rank: self.rank as u32,
            },
        );
    }

    /// Announce this rank's death (panic unwinding). Best effort: if the
    /// stream is already gone, EOF detection at the hub covers it.
    pub fn report_death(&self) {
        self.liveness.mark_dead(self.rank);
        let _ = write_frame(
            &mut **self.writer.borrow_mut(),
            &Frame::Dying {
                rank: self.rank as u32,
            },
        );
    }

    /// Announce clean completion. Must precede dropping the port, so the
    /// hub can tell a finish from a crash.
    pub fn goodbye(&self) {
        let _ = write_frame(
            &mut **self.writer.borrow_mut(),
            &Frame::Goodbye {
                rank: self.rank as u32,
            },
        );
    }

    /// Report the program's encoded result payload (process mode).
    pub fn send_result(&self, data: &[u8]) {
        let _ = write_frame(
            &mut **self.writer.borrow_mut(),
            &Frame::Result {
                data: data.to_vec(),
            },
        );
    }
}

/// The demultiplexing pump: one per port, exits at stream EOF.
fn pump(
    mut reader: Box<dyn Read + Send>,
    liveness: Arc<Liveness>,
    env_tx: Sender<Envelope>,
    ack_tx: Sender<bool>,
    ctx_tx: Sender<u64>,
) {
    loop {
        match read_frame(&mut *reader) {
            // Send errors mean the rank-side receiver is gone (the program
            // returned); keep draining so the hub never blocks on us.
            Ok(Frame::Data { env, .. }) => {
                let _ = env_tx.send(env);
            }
            Ok(Frame::PostAck { killed }) => {
                let _ = ack_tx.send(killed);
            }
            Ok(Frame::CtxRep { base }) => {
                let _ = ctx_tx.send(base);
            }
            Ok(Frame::Dead { rank, incarnation }) => {
                // Conditional: a death announcement for an incarnation we
                // have already seen rejoin must not kill the new one.
                liveness.mark_dead_if(rank as usize, incarnation as u64);
            }
            Ok(Frame::Rejoined { rank, incarnation }) => {
                liveness.resurrect(rank as usize, incarnation as u64);
            }
            Ok(Frame::Heartbeat { rank }) => liveness.beat(rank as usize),
            // Anything else is protocol confusion or the end of the
            // stream; either way this connection is done.
            Ok(_) | Err(_) => break,
        }
    }
}
