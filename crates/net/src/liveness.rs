//! Rank liveness: heartbeat counters and death flags shared by one run.
//!
//! The paper's metasolver spans thousands of ranks for days; a coupling
//! layer that cannot *observe* a lost peer can only hang. This module is
//! the observation side of the MCI fault model: every rank owns one
//! heartbeat counter (bumped on every message it posts or receives, plus
//! explicit `Comm::heartbeat` calls) and one death flag (set by the
//! transport when a scripted fault kills the rank, or by death detection
//! when a socket peer vanishes). Receives consult the flags so a blocked
//! receive on a dead peer resolves to `RecvError::PeerDead`
//! instead of a timeout, and failover
//! logic consults the [`LivenessView`] to pick the lowest live replica.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shared liveness state of one universe run, indexed by world rank.
pub struct Liveness {
    beats: Vec<AtomicU64>,
    dead: Vec<AtomicBool>,
}

impl Liveness {
    /// Fresh all-alive table for `n` ranks. Constructed by the transport
    /// (one per universe run); ranks receive shared references.
    pub fn new(n: usize) -> Self {
        Self {
            beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of ranks tracked.
    pub fn size(&self) -> usize {
        self.dead.len()
    }

    /// Record one heartbeat for `rank`.
    pub fn beat(&self, rank: usize) {
        self.beats[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Mark `rank` dead (scripted kill or observed loss).
    pub fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::SeqCst);
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Whether `rank` is (still) alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        !self.is_dead(rank)
    }

    /// Heartbeats observed from `rank` so far.
    pub fn beats(&self, rank: usize) -> u64 {
        self.beats[rank].load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of the whole machine's liveness.
    pub fn view(&self) -> LivenessView {
        LivenessView {
            alive: (0..self.size()).map(|r| self.is_alive(r)).collect(),
            beats: (0..self.size()).map(|r| self.beats(r)).collect(),
        }
    }
}

/// A point-in-time copy of the machine's liveness, indexed by world rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessView {
    /// `alive[r]` is false once world rank `r` has been declared dead.
    pub alive: Vec<bool>,
    /// Heartbeat count observed from each world rank.
    pub beats: Vec<u64>,
}

impl LivenessView {
    /// World ranks still alive, in rank order.
    pub fn live_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    /// World ranks declared dead, in rank order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| !self.alive[r]).collect()
    }

    /// True when no rank has died.
    pub fn all_alive(&self) -> bool {
        self.alive.iter().all(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_and_death_flags() {
        let lv = Liveness::new(3);
        assert!(lv.view().all_alive());
        lv.beat(1);
        lv.beat(1);
        assert_eq!(lv.beats(1), 2);
        lv.mark_dead(2);
        assert!(lv.is_dead(2));
        assert!(lv.is_alive(0));
        let v = lv.view();
        assert_eq!(v.live_ranks(), vec![0, 1]);
        assert_eq!(v.dead_ranks(), vec![2]);
        assert!(!v.all_alive());
        assert_eq!(v.beats[1], 2);
    }
}
