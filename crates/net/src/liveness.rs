//! Rank liveness: heartbeat counters and death flags shared by one run.
//!
//! The paper's metasolver spans thousands of ranks for days; a coupling
//! layer that cannot *observe* a lost peer can only hang. This module is
//! the observation side of the MCI fault model: every rank owns one
//! heartbeat counter (bumped on every message it posts or receives, plus
//! explicit `Comm::heartbeat` calls) and one death flag (set by the
//! transport when a scripted fault kills the rank, or by death detection
//! when a socket peer vanishes). Receives consult the flags so a blocked
//! receive on a dead peer resolves to `RecvError::PeerDead`
//! instead of a timeout, and failover
//! logic consults the [`LivenessView`] to pick the lowest live replica.
//!
//! Since supervised restart landed, death is no longer final: each rank
//! also carries an *incarnation* number. A respawned rank rejoins at a
//! strictly higher incarnation via [`Liveness::resurrect`], which clears
//! the death flag, and late death announcements for an already-superseded
//! incarnation are ignored by [`Liveness::mark_dead_if`] — the table can
//! only ever move forward in incarnation order.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Shared liveness state of one universe run, indexed by world rank.
pub struct Liveness {
    beats: Vec<AtomicU64>,
    dead: Vec<AtomicBool>,
    incarnations: Vec<AtomicU64>,
    /// Serializes incarnation transitions (resurrect / conditional death)
    /// so a stale `mark_dead_if` cannot interleave with a resurrection.
    /// Beats and plain death reads stay lock-free.
    gate: Mutex<()>,
}

impl Liveness {
    /// Fresh all-alive table for `n` ranks. Constructed by the transport
    /// (one per universe run); ranks receive shared references.
    pub fn new(n: usize) -> Self {
        Self {
            beats: (0..n).map(|_| AtomicU64::new(0)).collect(),
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            incarnations: (0..n).map(|_| AtomicU64::new(0)).collect(),
            gate: Mutex::new(()),
        }
    }

    /// Number of ranks tracked.
    pub fn size(&self) -> usize {
        self.dead.len()
    }

    /// Record one heartbeat for `rank`.
    pub fn beat(&self, rank: usize) {
        self.beats[rank].fetch_add(1, Ordering::Relaxed);
    }

    /// Mark `rank` dead (scripted kill or observed loss), unconditionally.
    pub fn mark_dead(&self, rank: usize) {
        self.dead[rank].store(true, Ordering::SeqCst);
    }

    /// Current incarnation of `rank` (0 until its first resurrection).
    pub fn incarnation(&self, rank: usize) -> u64 {
        self.incarnations[rank].load(Ordering::SeqCst)
    }

    /// Resurrect `rank` at `incarnation`. Succeeds (clears the death flag
    /// and advances the incarnation) only when `incarnation` is strictly
    /// newer than the current one; a replayed or out-of-order rejoin
    /// announcement is a no-op.
    pub fn resurrect(&self, rank: usize, incarnation: u64) -> bool {
        let _g = self.gate.lock().unwrap();
        if incarnation <= self.incarnations[rank].load(Ordering::SeqCst) {
            return false;
        }
        self.incarnations[rank].store(incarnation, Ordering::SeqCst);
        self.dead[rank].store(false, Ordering::SeqCst);
        true
    }

    /// Mark `rank` dead only if the death belongs to `incarnation` (or a
    /// newer one): a `Dead{rank, k}` that arrives after the rank already
    /// rejoined at `k+1` must not kill the new incarnation. Returns
    /// whether the flag was set.
    pub fn mark_dead_if(&self, rank: usize, incarnation: u64) -> bool {
        let _g = self.gate.lock().unwrap();
        if incarnation < self.incarnations[rank].load(Ordering::SeqCst) {
            return false;
        }
        self.dead[rank].store(true, Ordering::SeqCst);
        true
    }

    /// Whether `rank` has been declared dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::SeqCst)
    }

    /// Whether `rank` is (still) alive.
    pub fn is_alive(&self, rank: usize) -> bool {
        !self.is_dead(rank)
    }

    /// Heartbeats observed from `rank` so far.
    pub fn beats(&self, rank: usize) -> u64 {
        self.beats[rank].load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot of the whole machine's liveness.
    pub fn view(&self) -> LivenessView {
        LivenessView {
            alive: (0..self.size()).map(|r| self.is_alive(r)).collect(),
            beats: (0..self.size()).map(|r| self.beats(r)).collect(),
            incarnations: (0..self.size()).map(|r| self.incarnation(r)).collect(),
        }
    }
}

/// A point-in-time copy of the machine's liveness, indexed by world rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessView {
    /// `alive[r]` is false once world rank `r` has been declared dead.
    pub alive: Vec<bool>,
    /// Heartbeat count observed from each world rank.
    pub beats: Vec<u64>,
    /// Incarnation of each world rank (0 = original launch).
    pub incarnations: Vec<u64>,
}

impl LivenessView {
    /// World ranks still alive, in rank order.
    pub fn live_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    /// World ranks declared dead, in rank order.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| !self.alive[r]).collect()
    }

    /// True when no rank has died.
    pub fn all_alive(&self) -> bool {
        self.alive.iter().all(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_and_death_flags() {
        let lv = Liveness::new(3);
        assert!(lv.view().all_alive());
        lv.beat(1);
        lv.beat(1);
        assert_eq!(lv.beats(1), 2);
        lv.mark_dead(2);
        assert!(lv.is_dead(2));
        assert!(lv.is_alive(0));
        let v = lv.view();
        assert_eq!(v.live_ranks(), vec![0, 1]);
        assert_eq!(v.dead_ranks(), vec![2]);
        assert!(!v.all_alive());
        assert_eq!(v.beats[1], 2);
    }

    #[test]
    fn resurrection_moves_forward_only() {
        let lv = Liveness::new(2);
        lv.mark_dead(1);
        assert!(lv.is_dead(1));
        // Rejoin at incarnation 1 revives the rank.
        assert!(lv.resurrect(1, 1));
        assert!(lv.is_alive(1));
        assert_eq!(lv.incarnation(1), 1);
        // A replay of the same rejoin is a no-op.
        assert!(!lv.resurrect(1, 1));
        // A late death announcement for the superseded incarnation 0 is
        // fenced: the new incarnation stays alive.
        assert!(!lv.mark_dead_if(1, 0));
        assert!(lv.is_alive(1));
        // Death of the *current* incarnation lands.
        assert!(lv.mark_dead_if(1, 1));
        assert!(lv.is_dead(1));
        // And the view reports incarnations.
        assert_eq!(lv.view().incarnations, vec![0, 1]);
    }
}
