//! Deterministic, seedable fault injection for the virtual network.
//!
//! Production coupling layers lose ranks and messages as a matter of
//! course; the recovery paths (typed receive errors, retrying exchanges,
//! replica failover) must therefore be exercised by *reproducible*
//! disasters. A [`FaultPlan`] scripts them ahead of a run:
//!
//! * **rank kills** — rank `r` dies when it attempts its `k`-th message
//!   post, standing in for a node loss mid-exchange;
//! * **message rules** — messages matching a `(ctx, src, dst, tag)`
//!   pattern are dropped, duplicated (same transport sequence number, so
//!   receiver-side dedup catches them) or delayed (re-delivered after a
//!   fixed number of later messages on the same `src→dst` flow).
//!
//! Rule firing is deterministic: occurrence-counted ([`Pick::Nth`],
//! [`Pick::Every`]) or derived from a seeded counter hash
//! ([`Pick::Seeded`]), never from wall-clock or thread scheduling. On a
//! single `src→dst` flow the match indices are the sender's program
//! order, so a fixed seed replays the same disasters exactly.

use crate::envelope::Envelope;
use crate::Tag;
use std::sync::atomic::{AtomicU64, Ordering};

/// Kill one rank at a scripted point in its own message stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKill {
    /// World rank to kill.
    pub rank: usize,
    /// The rank dies when it attempts its `at_send`-th post (1-based);
    /// that message is never delivered — a loss mid-exchange.
    pub at_send: u64,
}

/// Pattern over message coordinates; `None` fields are wildcards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MsgMatcher {
    /// Communicator context, if constrained.
    pub ctx: Option<u64>,
    /// Sender world rank, if constrained.
    pub src: Option<usize>,
    /// Destination world rank, if constrained.
    pub dst: Option<usize>,
    /// Message tag, if constrained.
    pub tag: Option<Tag>,
}

impl MsgMatcher {
    /// Match every message.
    pub fn any() -> Self {
        Self::default()
    }

    /// Match one directed flow `src → dst` (world ranks).
    pub fn flow(src: usize, dst: usize) -> Self {
        Self {
            src: Some(src),
            dst: Some(dst),
            ..Self::default()
        }
    }

    /// Additionally constrain the tag.
    pub fn with_tag(mut self, tag: Tag) -> Self {
        self.tag = Some(tag);
        self
    }

    /// Additionally constrain the communicator context.
    pub fn with_ctx(mut self, ctx: u64) -> Self {
        self.ctx = Some(ctx);
        self
    }

    fn matches(&self, env: &Envelope, dst: usize) -> bool {
        self.ctx.is_none_or(|c| c == env.ctx)
            && self.src.is_none_or(|s| s == env.src)
            && self.dst.is_none_or(|d| d == dst)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// What happens to a message a rule fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgAction {
    /// The message is silently discarded.
    Drop,
    /// The message is delivered twice with the same transport sequence
    /// number; mailbox dedup must make the copy invisible.
    Duplicate,
    /// Delivery is deferred until `after_flow_msgs` later messages on the
    /// same `src → dst` flow have been delivered (a re-ordering delay).
    /// If the flow falls silent the message stays parked — exactly the
    /// situation the retry layer's re-sends un-stick.
    Delay {
        /// How many subsequent same-flow deliveries precede this one.
        after_flow_msgs: u64,
    },
}

/// Which occurrences (1-based match indices) of a matching message the
/// rule fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Every occurrence.
    Always,
    /// Exactly the `k`-th occurrence (one-shot).
    Nth(u64),
    /// Every `n`-th occurrence (`n`, `2n`, ...).
    Every(u64),
    /// Occurrence `i` fires when `splitmix64(seed, i) mod den < num` —
    /// a deterministic, seed-replayable Bernoulli(`num/den`) stream.
    Seeded {
        /// Stream seed.
        seed: u64,
        /// Numerator of the firing probability.
        num: u32,
        /// Denominator of the firing probability.
        den: u32,
    },
}

impl Pick {
    fn fires(&self, occurrence: u64) -> bool {
        match *self {
            Pick::Always => true,
            Pick::Nth(k) => occurrence == k,
            Pick::Every(n) => n > 0 && occurrence.is_multiple_of(n),
            Pick::Seeded { seed, num, den } => {
                assert!(den > 0, "seeded pick needs a positive denominator");
                splitmix64(seed ^ splitmix64(occurrence)) % (den as u64) < num as u64
            }
        }
    }
}

/// One scripted message disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRule {
    /// Which messages the rule considers.
    pub matcher: MsgMatcher,
    /// Which of those occurrences it fires on.
    pub pick: Pick,
    /// What it does when it fires.
    pub action: MsgAction,
}

/// A scripted set of disasters for one universe run. The first rule that
/// matches *and* fires decides a message's fate; later rules are not
/// consulted for it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scripted rank deaths.
    pub kills: Vec<RankKill>,
    /// Scripted message disturbances.
    pub rules: Vec<MsgRule>,
}

impl FaultPlan {
    /// An empty plan (installs the fault layer — sequence-number dedup on
    /// every mailbox — without scripting any disaster).
    pub fn new() -> Self {
        Self::default()
    }

    /// Kill `rank` when it attempts its `at_send`-th post (1-based).
    pub fn kill_rank(mut self, rank: usize, at_send: u64) -> Self {
        assert!(at_send >= 1, "sends are counted from 1");
        self.kills.push(RankKill { rank, at_send });
        self
    }

    /// Add a message rule.
    pub fn with_rule(mut self, matcher: MsgMatcher, pick: Pick, action: MsgAction) -> Self {
        self.rules.push(MsgRule {
            matcher,
            pick,
            action,
        });
        self
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.rules.is_empty()
    }
}

/// Per-run fired/match counters, reported back by the universe runner so
/// tests can assert that a plan replayed identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages each rule matched (fired or not), in rule order.
    pub rule_matches: Vec<u64>,
    /// Messages each rule fired on, in rule order.
    pub rule_fired: Vec<u64>,
    /// Messages each rank posted (attempted), indexed by world rank.
    pub sends_per_rank: Vec<u64>,
}

/// The panic payload of a scripted kill. The universe runner recognizes it
/// and records the rank as dead instead of propagating a test failure; the
/// process worker maps it to a dedicated exit code.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedKill {
    /// The rank the plan killed.
    pub rank: usize,
}

/// What the transport should do with one posted message.
pub enum Decision {
    /// The sending rank dies now; the message is lost.
    Kill,
    /// Apply a rule's action.
    Act(MsgAction),
    /// Deliver normally.
    Deliver,
}

/// Live counters instantiated from a [`FaultPlan`] for one run.
pub struct FaultState {
    plan: FaultPlan,
    send_counts: Vec<AtomicU64>,
    rule_matches: Vec<AtomicU64>,
    rule_fired: Vec<AtomicU64>,
}

impl FaultState {
    /// Instantiate live counters for one run over `n_ranks` world ranks.
    pub fn new(plan: FaultPlan, n_ranks: usize) -> Self {
        let n_rules = plan.rules.len();
        Self {
            plan,
            send_counts: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            rule_matches: (0..n_rules).map(|_| AtomicU64::new(0)).collect(),
            rule_fired: (0..n_rules).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Judge one posted message. Counts the sender's post, checks scripted
    /// kills, then runs the message rules in order.
    pub fn on_post(&self, env: &Envelope, dst: usize) -> Decision {
        let nth_send = self.send_counts[env.src].fetch_add(1, Ordering::Relaxed) + 1;
        for k in &self.plan.kills {
            if k.rank == env.src && k.at_send == nth_send {
                return Decision::Kill;
            }
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.matcher.matches(env, dst) {
                let occurrence = self.rule_matches[i].fetch_add(1, Ordering::Relaxed) + 1;
                if rule.pick.fires(occurrence) {
                    self.rule_fired[i].fetch_add(1, Ordering::Relaxed);
                    return Decision::Act(rule.action);
                }
            }
        }
        Decision::Deliver
    }

    /// Snapshot of the per-rule and per-rank counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            rule_matches: self
                .rule_matches
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            rule_fired: self
                .rule_fired
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sends_per_rank: self
                .send_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// SplitMix64 mixing step — the same counter-based generator family the
/// DPD stochastic streams use, so seeded picks are cheap and replayable.
/// Public because the supervisor's restart backoff derives its
/// deterministic jitter from the same stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ctx: u64, src: usize, tag: Tag) -> Envelope {
        Envelope {
            ctx,
            src,
            tag,
            data: Vec::new(),
            seq: 0,
        }
    }

    #[test]
    fn matcher_wildcards_and_constraints() {
        let m = MsgMatcher::flow(1, 2).with_tag(7);
        assert!(m.matches(&env(0, 1, 7), 2));
        assert!(!m.matches(&env(0, 1, 8), 2));
        assert!(!m.matches(&env(0, 0, 7), 2));
        assert!(!m.matches(&env(0, 1, 7), 3));
        assert!(MsgMatcher::any().matches(&env(9, 5, 1), 0));
    }

    #[test]
    fn picks_are_occurrence_counted() {
        assert!(Pick::Always.fires(1) && Pick::Always.fires(100));
        assert!(Pick::Nth(3).fires(3));
        assert!(!Pick::Nth(3).fires(2) && !Pick::Nth(3).fires(4));
        assert!(Pick::Every(2).fires(2) && Pick::Every(2).fires(4));
        assert!(!Pick::Every(2).fires(3));
    }

    #[test]
    fn seeded_pick_replays_and_tracks_rate() {
        let p = Pick::Seeded {
            seed: 42,
            num: 1,
            den: 4,
        };
        let a: Vec<bool> = (1..=1000).map(|i| p.fires(i)).collect();
        let b: Vec<bool> = (1..=1000).map(|i| p.fires(i)).collect();
        assert_eq!(a, b, "same seed must replay identically");
        let hits = a.iter().filter(|&&h| h).count();
        assert!(
            (150..=350).contains(&hits),
            "Bernoulli(1/4) stream wildly off: {hits}/1000"
        );
        let q = Pick::Seeded {
            seed: 43,
            num: 1,
            den: 4,
        };
        let c: Vec<bool> = (1..=1000).map(|i| q.fires(i)).collect();
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn state_counts_kills_and_rule_fires() {
        let plan = FaultPlan::new().kill_rank(0, 2).with_rule(
            MsgMatcher::flow(1, 0),
            Pick::Nth(1),
            MsgAction::Drop,
        );
        let fs = FaultState::new(plan, 2);
        assert!(matches!(fs.on_post(&env(0, 0, 1), 1), Decision::Deliver));
        assert!(matches!(fs.on_post(&env(0, 0, 1), 1), Decision::Kill));
        assert!(matches!(
            fs.on_post(&env(0, 1, 1), 0),
            Decision::Act(MsgAction::Drop)
        ));
        assert!(matches!(fs.on_post(&env(0, 1, 1), 0), Decision::Deliver));
        let st = fs.stats();
        assert_eq!(st.sends_per_rank, vec![2, 2]);
        assert_eq!(st.rule_matches, vec![2]);
        assert_eq!(st.rule_fired, vec![1]);
    }
}
