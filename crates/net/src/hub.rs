//! The hub: server side of the framed backends.
//!
//! One hub per universe run owns the [`RouterCore`] — so fault judging,
//! sequence stamping, liveness and statistics live in exactly one place,
//! just like the in-proc path — plus one *pump thread* per connected rank
//! that reads frames off that rank's stream and dispatches them. Delivery
//! to a rank is a framed write through that rank's registered writer; the
//! per-destination writer mutex makes interleaving frame-atomic, and
//! because each rank's posts are judged by its own pump thread in arrival
//! order, per-flow FIFO is preserved exactly as the in-proc channel gave
//! it.
//!
//! ## Liveness over sockets
//!
//! A rank announces clean completion with `Goodbye` and an unwinding
//! panic with `Dying`. The third case — the rank vanished without a word
//! (process crash, `abort`, kill -9) — is detected at EOF: a pump whose
//! stream ends without a preceding `Goodbye` declares the rank dead. Any
//! death is broadcast to every other rank as a `Dead` frame, which the
//! rank-side pump folds into its local liveness replica, so blocked
//! receives resolve to `PeerDead` with the same promptness the shared
//! in-proc table gave.
//!
//! ## Scripted kills
//!
//! In-proc, a scripted kill panics the sender inside `post`, *before* the
//! next program statement runs. To preserve that synchronous semantics
//! across a socket, the hub enables post-acks (`Welcome { ack_posts }`)
//! whenever the fault plan contains kills: every `Data` post is answered
//! with `PostAck { killed }`, and the rank-side port panics `ScriptedKill`
//! on a killed ack. Clean runs (no kill scripted) stay fire-and-forget,
//! so the ack round-trip never taxes the configurations benchmarks
//! measure.

use crate::envelope::Envelope;
use crate::fault::FaultPlan;
use crate::frame::{read_frame, write_frame, Frame, NetError, RejectReason, PROTO_VERSION};
use crate::liveness::Liveness;
use crate::router::{RouterCore, Sink, SinkClosed, Verdict};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one hub (one universe run).
pub struct HubConfig {
    /// World size: the number of ranks that will connect.
    pub world: usize,
    /// Fault plan judged at the hub's router.
    pub plan: Option<FaultPlan>,
    /// How long a delivery waits for its destination rank to finish the
    /// handshake before treating the destination as gone. Covers startup
    /// skew; after it, the router's dead-destination grace logic applies.
    pub deliver_grace: Duration,
}

/// Per-rank connection state at the hub.
struct Peer {
    /// The rank's framed writer, installed after a successful handshake
    /// and cleared on write failure. Guarded so concurrent deliveries from
    /// different pump threads interleave at frame granularity.
    writer: Mutex<Option<Box<dyn Write + Send>>>,
    /// Signaled when the writer is installed.
    ready: Condvar,
    /// `Goodbye` seen: the rank completed cleanly.
    finished: AtomicBool,
    /// `incarnation + 1` of the newest death announced for this rank
    /// (0 = none), so racing detectors (Dying frame, EOF, process exit)
    /// broadcast once per incarnation — and a later incarnation's death
    /// is announced even though an earlier one already was.
    death_announced: AtomicU64,
    /// A `Hello` already claimed this rank.
    hello_seen: AtomicBool,
    /// `incarnation + 1` of the most recent completed handshake, 0 while
    /// no handshake has finished. Once nonzero, that incarnation's pump
    /// owns the rank's death detection (every exit path of its
    /// steady-state loop announces death or records `finished`).
    connected: AtomicU64,
    /// Result payload reported by a process-mode worker.
    result: Mutex<Option<Vec<u8>>>,
}

struct HubInner {
    peers: Vec<Peer>,
    liveness: Arc<Liveness>,
    deliver_grace: Duration,
}

impl HubInner {
    /// Frame-level best-effort write to one rank (acks, death broadcasts).
    /// A missing or failing writer is ignored: the rank is gone, and gone
    /// ranks don't need protocol frames.
    fn write_to(&self, rank: usize, frame: &Frame) {
        let mut slot = self.peers[rank].writer.lock().unwrap();
        if let Some(w) = slot.as_mut() {
            if write_frame(w, frame).is_err() {
                *slot = None;
            }
        }
    }
}

/// The router's delivery endpoint for one destination rank: a framed
/// write through the rank's registered writer, waiting out startup skew.
pub struct HubSink {
    inner: Arc<HubInner>,
    dst: usize,
}

impl Sink for HubSink {
    fn deliver(&self, env: Envelope) -> Result<(), SinkClosed> {
        let peer = &self.inner.peers[self.dst];
        let deadline = Instant::now() + self.inner.deliver_grace;
        let mut slot = peer.writer.lock().unwrap();
        while slot.is_none() {
            // A finished, dead, or never-arriving rank behaves like the
            // in-proc closed channel: SinkClosed, and the router's grace
            // logic decides whether that is expected (dead rank) or a
            // protocol error. Live liveness (not a sticky announcement
            // flag) is consulted so a delivery racing a resurrection keeps
            // waiting for the rejoining rank's writer instead of bailing.
            if peer.finished.load(Ordering::Acquire) || self.inner.liveness.is_dead(self.dst) {
                return Err(SinkClosed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(SinkClosed);
            }
            let (s, _timeout) = peer.ready.wait_timeout(slot, deadline - now).unwrap();
            slot = s;
        }
        let w = slot.as_mut().expect("writer present by loop invariant");
        match write_frame(
            w,
            &Frame::Data {
                dst: self.dst as u32,
                env,
            },
        ) {
            Ok(()) => Ok(()),
            Err(_) => {
                *slot = None;
                Err(SinkClosed)
            }
        }
    }
}

/// Aggregate outcome of one hub run, collected at shutdown.
pub struct HubReport {
    /// Total messages routed.
    pub messages: u64,
    /// Total payload bytes routed.
    pub bytes: u64,
    /// Posts fenced at the router because they came from a superseded
    /// incarnation (zombies of respawned ranks).
    pub stale_drops: u64,
    /// Fault-plan counters.
    pub fault_stats: crate::fault::FaultStats,
    /// Per-rank result payloads (process-mode `Result` frames).
    pub results: Vec<Option<Vec<u8>>>,
    /// Panic messages from pump threads (protocol errors, exited
    /// destinations). Empty on every healthy run; the universe surfaces
    /// them as one combined panic.
    pub panics: Vec<String>,
}

/// Server side of one framed-transport universe run.
pub struct Hub {
    inner: Arc<HubInner>,
    core: Arc<RouterCore<HubSink>>,
    dedup: bool,
    ack_posts: bool,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

impl Hub {
    /// Start a hub for `cfg.world` ranks. Connections are attached with
    /// [`Hub::adopt`]; the hub is passive until then.
    pub fn new(cfg: HubConfig) -> Self {
        let n = cfg.world;
        let dedup = cfg.plan.is_some();
        let ack_posts = cfg.plan.as_ref().is_some_and(|p| !p.kills.is_empty());
        let liveness = Arc::new(Liveness::new(n));
        let inner = Arc::new(HubInner {
            peers: (0..n)
                .map(|_| Peer {
                    writer: Mutex::new(None),
                    ready: Condvar::new(),
                    finished: AtomicBool::new(false),
                    death_announced: AtomicU64::new(0),
                    hello_seen: AtomicBool::new(false),
                    connected: AtomicU64::new(0),
                    result: Mutex::new(None),
                })
                .collect(),
            liveness: Arc::clone(&liveness),
            deliver_grace: cfg.deliver_grace,
        });
        let sinks = (0..n)
            .map(|dst| HubSink {
                inner: Arc::clone(&inner),
                dst,
            })
            .collect();
        let core = Arc::new(RouterCore::new(sinks, liveness, cfg.plan));
        Self {
            inner,
            core,
            dedup,
            ack_posts,
            pumps: Mutex::new(Vec::new()),
        }
    }

    /// The run's liveness table (hub-side authority).
    pub fn liveness(&self) -> Arc<Liveness> {
        Arc::clone(self.core.liveness())
    }

    /// Whether mailboxes must deduplicate by sequence number this run.
    pub fn dedup(&self) -> bool {
        self.dedup
    }

    /// Adopt one incoming connection: spawn its pump thread. The
    /// connection self-identifies with `Hello`; the hub does not need to
    /// know which rank a stream belongs to in advance.
    pub fn adopt(&self, reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) {
        let inner = Arc::clone(&self.inner);
        let core = Arc::clone(&self.core);
        let ack_posts = self.ack_posts;
        let dedup = self.dedup;
        let pump = std::thread::Builder::new()
            .name("nkg-hub-pump".into())
            .spawn(move || pump(inner, core, dedup, ack_posts, reader, writer))
            .expect("failed to spawn hub pump thread");
        self.pumps.lock().unwrap().push(pump);
    }

    /// Whether `rank` said `Goodbye`.
    pub fn finished(&self, rank: usize) -> bool {
        self.inner.peers[rank].finished.load(Ordering::Acquire)
    }

    /// Whether `rank` ever completed a handshake. Once true, that
    /// connection's pump owns death detection: it drains in-flight frames
    /// *in order* and announces death at EOF/`Dying` — an external
    /// [`Hub::force_dead`] would race ahead of messages the rank sent
    /// before dying.
    pub fn connected(&self, rank: usize) -> bool {
        self.inner.peers[rank].connected.load(Ordering::Acquire) != 0
    }

    /// Whether `rank` completed a handshake at `incarnation` (or newer).
    /// The supervisor's per-attempt exit watcher uses this instead of
    /// [`Hub::connected`], which stays sticky-true across respawns.
    pub fn handshaken(&self, rank: usize, incarnation: u64) -> bool {
        self.inner.peers[rank].connected.load(Ordering::Acquire) > incarnation
    }

    /// Declare `rank`'s `incarnation` dead from outside the protocol —
    /// the process launcher calls this when a worker exits without a
    /// `Goodbye` (covering death *before* the rank ever said `Hello`,
    /// which no pump can observe). Fenced if a newer incarnation has
    /// already rejoined.
    pub fn force_dead(&self, rank: usize, incarnation: u64) {
        announce_death(&self.inner, &self.core, rank, incarnation);
    }

    /// Wait for all pump threads (they exit at stream EOF) and report.
    pub fn shutdown(self) -> HubReport {
        let pumps = std::mem::take(&mut *self.pumps.lock().unwrap());
        let mut panics = Vec::new();
        for h in pumps {
            if let Err(e) = h.join() {
                panics.push(payload_string(e.as_ref()));
            }
        }
        let results = self
            .inner
            .peers
            .iter()
            .map(|p| p.result.lock().unwrap().take())
            .collect();
        HubReport {
            messages: self.core.messages(),
            bytes: self.core.bytes(),
            stale_drops: self.core.stale_drops(),
            fault_stats: self.core.fault_stats(),
            results,
            panics,
        }
    }
}

/// Mark `rank`'s `incarnation` dead and broadcast `Dead` to every other
/// connected rank, exactly once per incarnation no matter how many
/// detectors fire. A death announcement for an incarnation that has
/// already been superseded by a rejoin is fenced entirely.
fn announce_death(
    inner: &Arc<HubInner>,
    core: &Arc<RouterCore<HubSink>>,
    rank: usize,
    incarnation: u64,
) {
    if !core.liveness().mark_dead_if(rank, incarnation) {
        return;
    }
    let prev = inner.peers[rank]
        .death_announced
        .fetch_max(incarnation + 1, Ordering::AcqRel);
    if prev > incarnation {
        return;
    }
    // Wake deliveries parked on the dead rank's writer slot: the flag is
    // checked under the same mutex the waiters hold, so this cannot race.
    {
        let peer = &inner.peers[rank];
        let _slot = peer.writer.lock().unwrap();
        peer.ready.notify_all();
    }
    let frame = Frame::Dead {
        rank: rank as u32,
        incarnation: incarnation as u32,
    };
    for r in 0..inner.peers.len() {
        if r != rank {
            inner.write_to(r, &frame);
        }
    }
}

/// One connection's pump: handshake, then dispatch frames until EOF.
fn pump(
    inner: Arc<HubInner>,
    core: Arc<RouterCore<HubSink>>,
    dedup: bool,
    ack_posts: bool,
    mut reader: Box<dyn Read + Send>,
    mut writer: Box<dyn Write + Send>,
) {
    // ---- Handshake: the first frame must be Hello. ----
    let world = inner.peers.len() as u32;
    let (rank, incarnation) = match read_frame(&mut *reader) {
        Ok(Frame::Hello {
            version,
            world: their_world,
            rank,
            incarnation,
        }) => {
            let inc = incarnation as u64;
            let reject = if version != PROTO_VERSION {
                Some(RejectReason::Version {
                    ours: PROTO_VERSION,
                    theirs: version,
                })
            } else if their_world != world {
                Some(RejectReason::WorldSize {
                    ours: world,
                    theirs: their_world,
                })
            } else if rank >= world {
                Some(RejectReason::RankRange { rank, world })
            } else if inner.peers[rank as usize]
                .hello_seen
                .swap(true, Ordering::AcqRel)
            {
                // A reclaim of an already-seen rank is legal only as a
                // *rejoin*: a strictly newer incarnation. An equal
                // incarnation is a duplicate claim (the original
                // semantics); an older one is a zombie to fence.
                let cur = core.liveness().incarnation(rank as usize);
                if inc < cur {
                    Some(RejectReason::StaleIncarnation {
                        rank,
                        ours: cur as u32,
                        theirs: incarnation,
                    })
                } else if inc == cur {
                    Some(RejectReason::RankTaken { rank })
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(reason) = reject {
                let _ = write_frame(&mut *writer, &Frame::Reject { reason });
                return;
            }
            (rank as usize, inc)
        }
        // A connection that never says Hello (or dies mid-handshake) is
        // dropped: it claimed no rank, so there is nothing to declare dead
        // here — the process launcher's exit watcher covers worker death
        // before Hello.
        _ => return,
    };

    // Accept: Welcome first (the connector reads it synchronously before
    // any Data can arrive), then publish the writer for deliveries.
    if write_frame(
        &mut *writer,
        &Frame::Welcome {
            world,
            dedup,
            ack_posts,
        },
    )
    .is_err()
    {
        return;
    }
    {
        let peer = &inner.peers[rank];
        let mut slot = peer.writer.lock().unwrap();
        if incarnation > 0 {
            // A rejoin: revive the rank *before* publishing the writer so
            // nothing can replay its own stale death to it. The death-
            // announcement dedup is incarnation-scoped and needs no reset.
            core.liveness().resurrect(rank, incarnation);
            peer.finished.store(false, Ordering::Release);
        }
        *slot = Some(writer);
        // Replay liveness state that predates this connection: the live
        // `Dead`/`Rejoined` broadcasts only reach ranks whose writer was
        // installed at the time. Scanning under our own writer lock closes
        // the race — a concurrent announcement either updated liveness
        // before this scan (we replay it) or will block on this lock in
        // its broadcast and find the writer installed (it delivers).
        // Duplicates are idempotent at the port.
        for r in 0..inner.peers.len() {
            if r == rank {
                continue;
            }
            let r_inc = core.liveness().incarnation(r) as u32;
            let replay = if core.liveness().is_dead(r) {
                Some(Frame::Dead {
                    rank: r as u32,
                    incarnation: r_inc,
                })
            } else if r_inc > 0 {
                // The peer died and rejoined while we were away: without
                // this replay our local incarnation table would lag and
                // we would fence its current-incarnation announcements.
                Some(Frame::Rejoined {
                    rank: r as u32,
                    incarnation: r_inc,
                })
            } else {
                None
            };
            if let Some(frame) = replay {
                let w = slot.as_mut().expect("writer just installed");
                if write_frame(w, &frame).is_err() {
                    *slot = None;
                    break;
                }
            }
        }
        peer.ready.notify_all();
        peer.connected.store(incarnation + 1, Ordering::Release);
    }
    if incarnation > 0 {
        // Tell everyone else the rank is back. Outside our own writer
        // lock: write_to takes each peer's writer mutex, and holding ours
        // while taking theirs invites an ABBA deadlock with their own
        // broadcasts (same discipline as announce_death).
        let frame = Frame::Rejoined {
            rank: rank as u32,
            incarnation: incarnation as u32,
        };
        for r in 0..inner.peers.len() {
            if r != rank {
                inner.write_to(r, &frame);
            }
        }
    }

    // ---- Steady state: dispatch frames until the stream ends. ----
    loop {
        match read_frame(&mut *reader) {
            Ok(Frame::Data { dst, mut env }) => {
                // The connection is the identity authority: a rank cannot
                // post on another rank's behalf, nor smuggle traffic from
                // an incarnation this connection did not handshake as.
                env.src = rank;
                let verdict = core.route(dst as usize, env, incarnation);
                let killed = matches!(verdict, Verdict::Killed);
                if ack_posts {
                    inner.write_to(rank, &Frame::PostAck { killed });
                }
                if killed {
                    // The rank is unwinding with `ScriptedKill`; nothing
                    // meaningful follows on this stream.
                    announce_death(&inner, &core, rank, incarnation);
                    break;
                }
            }
            Ok(Frame::Heartbeat { .. }) => core.liveness().beat(rank),
            Ok(Frame::CtxReq { n }) => {
                let base = core.alloc_ctx(n);
                inner.write_to(rank, &Frame::CtxRep { base });
            }
            // Dying/Goodbye are each the last word a rank speaks; exiting
            // here (rather than waiting for EOF) lets the hub shut down
            // even while the rank side's pump still holds its stream half
            // open blocked on reads.
            Ok(Frame::Dying { .. }) => {
                announce_death(&inner, &core, rank, incarnation);
                break;
            }
            Ok(Frame::Goodbye { .. }) => {
                inner.peers[rank].finished.store(true, Ordering::Release);
                break;
            }
            Ok(Frame::Result { data }) => {
                *inner.peers[rank].result.lock().unwrap() = Some(data);
            }
            Ok(other) => panic!(
                "hub: protocol error: unexpected {} frame from rank {rank}",
                other.kind_name()
            ),
            Err(NetError::Closed) => break,
            Err(_) => break,
        }
    }

    // EOF. A clean finish said Goodbye first; anything else is a crash —
    // the rank vanished without a word, so declare it dead (this is what
    // lets peers blocked on a rank that panicked before its first post
    // resolve to PeerDead).
    if !inner.peers[rank].finished.load(Ordering::Acquire) {
        announce_death(&inner, &core, rank, incarnation);
    }
}

/// Best-effort rendering of a pump panic payload.
fn payload_string(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
