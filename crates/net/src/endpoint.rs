//! Process-mode bootstrap: connect endpoints, worker environment
//! variables, stream splitting, and worker exit codes.
//!
//! A launcher (the universe's `spawn_processes`) binds a listener, then
//! starts one `nkg-rank` worker per rank with the environment below; each
//! worker parses [`WorkerEnv::from_env`], connects, and runs its program.
//! Exit codes are part of the protocol: the launcher maps them back to
//! the same outcomes the thread backends report (clean result, scripted
//! kill, genuine panic).

use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

/// Worker env var: this rank's world rank.
pub const ENV_RANK: &str = "NKG_RANK";
/// Worker env var: world size.
pub const ENV_WORLD: &str = "NKG_WORLD";
/// Worker env var: hub endpoint, in [`Endpoint`] string form.
pub const ENV_CONNECT: &str = "NKG_CONNECT";
/// Worker env var: registered program name to run.
pub const ENV_PROGRAM: &str = "NKG_PROGRAM";
/// Worker env var: receive timeout in milliseconds.
pub const ENV_TIMEOUT_MS: &str = "NKG_TIMEOUT_MS";
/// Worker env var: this rank's incarnation (0 or unset for a first
/// launch; the supervisor sets the attempt number on respawn).
pub const ENV_INCARNATION: &str = "NKG_INCARNATION";
/// Worker env var (optional): compute-pool width for this rank, from the
/// launcher's topology placement (host cores ÷ co-located ranks). The
/// worker honors it as its rayon thread count unless `RAYON_NUM_THREADS`
/// is already set explicitly.
pub const ENV_POOL_WIDTH: &str = "NKG_POOL_WIDTH";

/// Worker exit: clean completion, result reported.
pub const EXIT_OK: i32 = 0;
/// Worker exit: the fault plan killed this rank (scripted, not a bug).
pub const EXIT_SCRIPTED_KILL: i32 = 86;
/// Worker exit: the program panicked.
pub const EXIT_PANIC: i32 = 101;
/// Worker exit: required environment missing or malformed.
pub const EXIT_BAD_ENV: i32 = 64;
/// Worker exit: the requested program is not in the registry.
pub const EXIT_UNKNOWN_PROGRAM: i32 = 65;
/// Worker exit: could not connect or complete the handshake.
pub const EXIT_CONNECT_FAILED: i32 = 66;

/// Where a worker finds the hub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A named Unix-domain socket.
    Uds(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Endpoint {
    /// Parse the [`ENV_CONNECT`] string form: `uds:<path>` or `tcp:<addr>`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("uds:") {
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "endpoint {s:?} must start with \"uds:\" or \"tcp:\""
            ))
        }
    }

    /// Connect and split into buffered reader/writer halves.
    pub fn connect(&self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Endpoint::Uds(path) => split_unix(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => {
                let s = std::net::TcpStream::connect(addr.as_str())?;
                split_tcp(s)
            }
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Uds(p) => write!(f, "uds:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Split a Unix stream into independently-owned buffered halves. The
/// writer half is flushed per frame by the protocol, so buffering only
/// coalesces one frame's header and body into one syscall.
pub fn split_unix(s: UnixStream) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    let r = s.try_clone()?;
    Ok((Box::new(BufReader::new(r)), Box::new(BufWriter::new(s))))
}

/// Split a TCP stream into buffered halves, with Nagle disabled so a
/// flushed frame departs immediately (exchange latency, not throughput,
/// is what couplers feel).
pub fn split_tcp(
    s: std::net::TcpStream,
) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    s.set_nodelay(true)?;
    let r = s.try_clone()?;
    Ok((Box::new(BufReader::new(r)), Box::new(BufWriter::new(s))))
}

/// Everything a worker process needs, parsed from its environment.
#[derive(Debug, Clone)]
pub struct WorkerEnv {
    /// This worker's world rank.
    pub rank: usize,
    /// World size.
    pub world: usize,
    /// Hub endpoint to connect to.
    pub endpoint: Endpoint,
    /// Registered program name to run.
    pub program: String,
    /// Receive timeout for the rank's mailbox and hub replies.
    pub recv_timeout: std::time::Duration,
    /// Incarnation this worker connects as (0 = first launch).
    pub incarnation: u64,
    /// Compute-pool width assigned by the launcher's placement (`None`
    /// when the launcher predates the knob or placement is disabled).
    pub pool_width: Option<usize>,
}

impl WorkerEnv {
    /// Parse the worker environment, with a message naming the first
    /// missing or malformed variable.
    pub fn from_env() -> Result<WorkerEnv, String> {
        fn var(name: &str) -> Result<String, String> {
            std::env::var(name).map_err(|_| format!("missing required env var {name}"))
        }
        fn parse_num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
            v.parse()
                .map_err(|_| format!("env var {name}={v:?} is not a valid number"))
        }
        let rank = parse_num(ENV_RANK, &var(ENV_RANK)?)?;
        let world: usize = parse_num(ENV_WORLD, &var(ENV_WORLD)?)?;
        if world == 0 || rank >= world {
            return Err(format!("rank {rank} out of range for world size {world}"));
        }
        let endpoint = Endpoint::parse(&var(ENV_CONNECT)?)?;
        let program = var(ENV_PROGRAM)?;
        let timeout_ms: u64 = parse_num(ENV_TIMEOUT_MS, &var(ENV_TIMEOUT_MS)?)?;
        let incarnation = match std::env::var(ENV_INCARNATION) {
            Ok(v) => parse_num(ENV_INCARNATION, &v)?,
            Err(_) => 0,
        };
        let pool_width = match std::env::var(ENV_POOL_WIDTH) {
            Ok(v) => Some(parse_num::<usize>(ENV_POOL_WIDTH, &v)?).filter(|&w| w > 0),
            Err(_) => None,
        };
        Ok(WorkerEnv {
            rank,
            world,
            endpoint,
            program,
            recv_timeout: std::time::Duration::from_millis(timeout_ms),
            incarnation,
            pool_width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_string_round_trip() {
        for s in ["uds:/tmp/hub.sock", "tcp:127.0.0.1:4567"] {
            let e = Endpoint::parse(s).unwrap();
            assert_eq!(e.to_string(), s);
        }
        assert!(Endpoint::parse("carrier:pigeon").is_err());
    }
}
