//! Same-host shared-memory fast path: a lock-free SPSC byte ring speaking
//! `Read`/`Write`, so the frame protocol runs over it unchanged.
//!
//! One [`RingTx`]/[`RingRx`] pair shares a power-of-two byte buffer with
//! monotonically increasing head/tail counters (masked on access), the
//! classic single-producer single-consumer design: the producer publishes
//! bytes with a `Release` store of `tail`, the consumer acknowledges with
//! a `Release` store of `head`, and each side reads the other's counter
//! with `Acquire`. Frames larger than the capacity stream through in
//! chunks — `write` blocks for *space*, not for the whole message.
//!
//! Scope: same address space only. A cross-process variant needs `mmap`d
//! shared memory, which the workspace's no-external-deps rule puts out of
//! reach; process ranks use the socket backends instead (see the backend
//! matrix in DESIGN.md §15).

use std::cell::UnsafeCell;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default ring capacity (64 KiB): comfortably above the typical exchange
/// frame, small enough that a universe of rings stays cache-friendly.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

struct ByteRing {
    buf: Box<[UnsafeCell<u8>]>,
    mask: usize,
    /// Consumer position; only [`RingRx`] advances it.
    head: AtomicUsize,
    /// Producer position; only [`RingTx`] advances it.
    tail: AtomicUsize,
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
}

// SAFETY: SPSC discipline. The producer only writes buffer slots in
// [tail, tail+free) before publishing them with a Release store of tail;
// the consumer only reads slots in [head, tail) after an Acquire load of
// tail, and releases them with a Release store of head. A slot is never
// accessed by both sides at once, so sharing the UnsafeCells is sound.
unsafe impl Sync for ByteRing {}

/// Producer half of one ring.
pub struct RingTx {
    ring: Arc<ByteRing>,
}

/// Consumer half of one ring.
pub struct RingRx {
    ring: Arc<ByteRing>,
}

/// Both halves of a bidirectional shared-memory connection.
pub struct RingDuplex {
    /// Outgoing bytes.
    pub tx: RingTx,
    /// Incoming bytes.
    pub rx: RingRx,
}

/// One unidirectional ring of at least `capacity` bytes (rounded up to a
/// power of two, minimum 8).
pub fn ring(capacity: usize) -> (RingTx, RingRx) {
    let cap = capacity.max(8).next_power_of_two();
    let ring = Arc::new(ByteRing {
        buf: (0..cap).map(|_| UnsafeCell::new(0)).collect(),
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        tx_closed: AtomicBool::new(false),
        rx_closed: AtomicBool::new(false),
    });
    (
        RingTx {
            ring: Arc::clone(&ring),
        },
        RingRx { ring },
    )
}

/// A bidirectional connection: two rings, crossed. The returned ends are
/// symmetric — hand one to each side.
pub fn duplex(capacity: usize) -> (RingDuplex, RingDuplex) {
    let (a_tx, a_rx) = ring(capacity);
    let (b_tx, b_rx) = ring(capacity);
    (
        RingDuplex { tx: a_tx, rx: b_rx },
        RingDuplex { tx: b_tx, rx: a_rx },
    )
}

/// Progressive backoff for a full/empty ring: spin briefly, then yield,
/// then sleep. On a loaded single-core host the yield tier is what lets
/// the peer run at all.
fn backoff(spins: &mut u32) {
    *spins = spins.saturating_add(1);
    if *spins < 64 {
        std::hint::spin_loop();
    } else if *spins < 256 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(50));
    }
}

impl Write for RingTx {
    /// Write up to `data.len()` bytes, blocking until at least one byte of
    /// space frees up. Returns the number of bytes accepted (callers use
    /// `write_all`, which loops).
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let r = &*self.ring;
        let mut spins = 0u32;
        loop {
            if r.rx_closed.load(Ordering::Acquire) {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "ring consumer dropped",
                ));
            }
            let head = r.head.load(Ordering::Acquire);
            let tail = r.tail.load(Ordering::Relaxed);
            let free = r.buf.len() - tail.wrapping_sub(head);
            if free == 0 {
                backoff(&mut spins);
                continue;
            }
            let n = free.min(data.len());
            for (i, &b) in data[..n].iter().enumerate() {
                // SAFETY: slots [tail, tail+free) are unpublished and thus
                // exclusively ours; see the Sync impl.
                unsafe { *r.buf[tail.wrapping_add(i) & r.mask].get() = b };
            }
            r.tail.store(tail.wrapping_add(n), Ordering::Release);
            return Ok(n);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for RingTx {
    fn drop(&mut self) {
        self.ring.tx_closed.store(true, Ordering::Release);
    }
}

impl Read for RingRx {
    /// Read up to `buf.len()` bytes, blocking until at least one byte is
    /// available. Returns `Ok(0)` (EOF) once the producer has dropped and
    /// the ring is drained.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let r = &*self.ring;
        let mut spins = 0u32;
        loop {
            let tail = r.tail.load(Ordering::Acquire);
            let head = r.head.load(Ordering::Relaxed);
            let avail = tail.wrapping_sub(head);
            if avail == 0 {
                if r.tx_closed.load(Ordering::Acquire) {
                    // Re-check after the closed flag: the producer may have
                    // published final bytes between our tail load and its
                    // drop.
                    if r.tail.load(Ordering::Acquire) == head {
                        return Ok(0);
                    }
                    continue;
                }
                backoff(&mut spins);
                continue;
            }
            let n = avail.min(buf.len());
            for (i, slot) in buf[..n].iter_mut().enumerate() {
                // SAFETY: slots [head, tail) are published and not yet
                // released; see the Sync impl.
                *slot = unsafe { *r.buf[head.wrapping_add(i) & r.mask].get() };
            }
            r.head.store(head.wrapping_add(n), Ordering::Release);
            return Ok(n);
        }
    }
}

impl Drop for RingRx {
    fn drop(&mut self) {
        self.ring.rx_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_in_order() {
        let (mut tx, mut rx) = ring(64);
        tx.write_all(b"hello ring").unwrap();
        let mut got = [0u8; 10];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"hello ring");
    }

    #[test]
    fn wrap_around_preserves_order() {
        let (mut tx, mut rx) = ring(8);
        // Push more than the capacity through in small steps, forcing the
        // indices to wrap several times.
        for round in 0..10u8 {
            let chunk: Vec<u8> = (0..5).map(|i| round * 10 + i).collect();
            tx.write_all(&chunk).unwrap();
            let mut got = [0u8; 5];
            rx.read_exact(&mut got).unwrap();
            assert_eq!(got[..], chunk[..]);
        }
    }

    #[test]
    fn larger_than_capacity_streams_through() {
        let (mut tx, mut rx) = ring(16);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let writer = std::thread::spawn(move || tx.write_all(&payload).unwrap());
        let mut got = vec![0u8; expect.len()];
        rx.read_exact(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn producer_drop_is_eof_after_drain() {
        let (mut tx, mut rx) = ring(64);
        tx.write_all(b"tail").unwrap();
        drop(tx);
        let mut got = Vec::new();
        rx.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"tail");
    }

    #[test]
    fn consumer_drop_breaks_the_pipe() {
        let (mut tx, rx) = ring(8);
        drop(rx);
        let err = tx.write_all(b"too late").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn frames_cross_a_duplex_pair() {
        use crate::frame::{read_frame, write_frame, Frame};
        let (mut a, mut b) = duplex(64);
        write_frame(&mut a.tx, &Frame::CtxReq { n: 2 }).unwrap();
        assert_eq!(read_frame(&mut b.rx).unwrap(), Frame::CtxReq { n: 2 });
        write_frame(&mut b.tx, &Frame::CtxRep { base: 40 }).unwrap();
        assert_eq!(read_frame(&mut a.rx).unwrap(), Frame::CtxRep { base: 40 });
    }
}
