//! Byte-level encoding of typed message payloads.
//!
//! Messages on the virtual network are byte buffers; the [`Wire`] trait maps
//! slices of numeric types to and from little-endian bytes. This keeps the
//! router type-erased (one mailbox per rank regardless of payload type) the
//! same way MPI transports untyped buffers plus a datatype descriptor.

/// A plain-old-data scalar that can cross the virtual network.
pub trait Wire: Copy + Default + 'static {
    /// Encoded size of one element, in bytes.
    const SIZE: usize;
    /// Append the little-endian encoding of `self` to `out`.
    fn put(self, out: &mut Vec<u8>);
    /// Decode one element from `bytes` (exactly `SIZE` bytes).
    fn get(bytes: &[u8]) -> Self;
}

macro_rules! impl_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn put(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn get(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("wire: short buffer"))
            }
        }
    )*};
}

impl_wire!(f64, f32, u64, i64, u32, i32, u8);

impl Wire for [f64; 3] {
    const SIZE: usize = 24;
    #[inline]
    fn put(self, out: &mut Vec<u8>) {
        for c in self {
            c.put(out);
        }
    }
    #[inline]
    fn get(bytes: &[u8]) -> Self {
        [
            f64::get(&bytes[0..8]),
            f64::get(&bytes[8..16]),
            f64::get(&bytes[16..24]),
        ]
    }
}

impl Wire for usize {
    const SIZE: usize = 8;
    #[inline]
    fn put(self, out: &mut Vec<u8>) {
        (self as u64).put(out);
    }
    #[inline]
    fn get(bytes: &[u8]) -> Self {
        u64::get(bytes) as usize
    }
}

/// Encode a slice into a fresh byte buffer.
pub fn encode<T: Wire>(data: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * T::SIZE);
    for &x in data {
        x.put(&mut out);
    }
    out
}

/// Decode a byte buffer produced by [`encode`] back into a vector.
///
/// # Panics
/// Panics if the buffer length is not a multiple of the element size.
pub fn decode<T: Wire>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "wire: buffer of {} bytes is not a whole number of {}-byte elements",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(T::get).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let data = [1.5f64, -0.0, f64::MAX, f64::MIN_POSITIVE, 3.25e-200];
        assert_eq!(decode::<f64>(&encode(&data)), data.to_vec());
    }

    #[test]
    fn usize_round_trip() {
        let data = [0usize, 1, usize::MAX >> 1, 42];
        assert_eq!(decode::<usize>(&encode(&data)), data.to_vec());
    }

    #[test]
    fn u8_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode::<u8>(&encode(&data)), data);
    }

    #[test]
    fn empty_round_trip() {
        assert!(decode::<f64>(&encode::<f64>(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_buffer_panics() {
        decode::<f64>(&[0u8; 9]);
    }
}
