//! 2D quadrilateral spectral-element meshes.
//!
//! Element vertices are stored counter-clockwise; local edges are numbered
//! `0:(v0,v1)`, `1:(v1,v2)`, `2:(v2,v3)`, `3:(v3,v0)`. Boundary conditions
//! are attached to `(element, local edge)` pairs via [`BoundaryTag`].

use crate::Point2;

/// Physical meaning of a boundary edge/face.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundaryTag {
    /// Rigid arterial wall (no-slip).
    Wall,
    /// Physical inflow.
    Inlet,
    /// Physical outflow.
    Outlet,
    /// Artificial interface created by the multipatch decomposition; the
    /// payload identifies the cut (shared by the two patches it separates).
    Interface(u32),
}

/// An unstructured conforming quadrilateral mesh.
#[derive(Debug, Clone)]
pub struct QuadMesh {
    /// Vertex coordinates.
    pub coords: Vec<Point2>,
    /// Elements as CCW vertex quadruples.
    pub elems: Vec<[usize; 4]>,
    /// Tagged boundary edges: `(element, local_edge, tag)`.
    pub boundary: Vec<(usize, usize, BoundaryTag)>,
}

impl QuadMesh {
    /// Structured `nx × ny` mesh of the rectangle `[x0,x1] × [y0,y1]`.
    /// Left edge is tagged [`BoundaryTag::Inlet`], right
    /// [`BoundaryTag::Outlet`], top and bottom [`BoundaryTag::Wall`].
    pub fn rectangle(nx: usize, ny: usize, x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        assert!(nx >= 1 && ny >= 1);
        assert!(x1 > x0 && y1 > y0);
        let mut coords = Vec::with_capacity((nx + 1) * (ny + 1));
        for j in 0..=ny {
            for i in 0..=nx {
                coords.push([
                    x0 + (x1 - x0) * i as f64 / nx as f64,
                    y0 + (y1 - y0) * j as f64 / ny as f64,
                ]);
            }
        }
        let vid = |i: usize, j: usize| j * (nx + 1) + i;
        let mut elems = Vec::with_capacity(nx * ny);
        let mut boundary = Vec::new();
        for j in 0..ny {
            for i in 0..nx {
                let e = elems.len();
                elems.push([vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)]);
                if j == 0 {
                    boundary.push((e, 0, BoundaryTag::Wall));
                }
                if i == nx - 1 {
                    boundary.push((e, 1, BoundaryTag::Outlet));
                }
                if j == ny - 1 {
                    boundary.push((e, 2, BoundaryTag::Wall));
                }
                if i == 0 {
                    boundary.push((e, 3, BoundaryTag::Inlet));
                }
            }
        }
        Self {
            coords,
            elems,
            boundary,
        }
    }

    /// Apply a smooth geometric mapping to every vertex (e.g. bend a
    /// rectangle into a curved channel or bulge it into an aneurysm-like
    /// sac). Connectivity and tags are preserved.
    pub fn mapped(mut self, map: impl Fn(Point2) -> Point2) -> Self {
        for p in &mut self.coords {
            *p = map(*p);
        }
        self
    }

    /// A channel whose upper wall bulges into a smooth sac around
    /// `x = center`, a 2D stand-in for an aneurysm on a vessel.
    ///
    /// `amplitude` is the sac height relative to the channel height.
    pub fn aneurysm_channel(
        nx: usize,
        ny: usize,
        length: f64,
        height: f64,
        amplitude: f64,
    ) -> Self {
        let center = length / 2.0;
        let width = length / 6.0;
        Self::rectangle(nx, ny, 0.0, length, 0.0, height).mapped(move |[x, y]| {
            let bump = amplitude * height * (-((x - center) / width).powi(2)).exp();
            // Stretch the y coordinate so the top wall follows the bump.
            [x, y * (1.0 + bump / height * (y / height))]
        })
    }

    /// Number of elements.
    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }

    /// Number of vertices.
    pub fn num_verts(&self) -> usize {
        self.coords.len()
    }

    /// The two vertex ids of a local edge of an element.
    pub fn edge_verts(&self, elem: usize, edge: usize) -> [usize; 2] {
        let v = self.elems[elem];
        match edge {
            0 => [v[0], v[1]],
            1 => [v[1], v[2]],
            2 => [v[2], v[3]],
            3 => [v[3], v[0]],
            _ => panic!("quad edge index {edge} out of range"),
        }
    }

    /// Split the mesh into `np` *overlapping* patches along x, one element
    /// wide overlap (the paper: "one element-wide overlapping regions").
    ///
    /// The mesh must be a structured rectangle (elements in row-major order,
    /// `nx` columns). Each returned patch is a standalone mesh whose
    /// artificial cut edges are tagged [`BoundaryTag::Interface`] with the
    /// cut index: cut `c` separates base columns `owned by patch c` from
    /// `patch c+1`.
    pub fn split_overlapping_x(&self, nx: usize, np: usize) -> Vec<QuadMesh> {
        assert!(np >= 1 && nx >= np * 2, "need at least 2 columns per patch");
        assert_eq!(self.num_elems() % nx, 0, "not a structured mesh");
        let ny = self.num_elems() / nx;
        let base = nx / np;
        let mut patches = Vec::with_capacity(np);
        for p in 0..np {
            let own_start = p * base;
            let own_end = if p + 1 == np { nx } else { (p + 1) * base };
            // One element of overlap into each neighbour.
            let start = own_start.saturating_sub(1);
            let end = (own_end + 1).min(nx);
            let cols = end - start;
            // Build the sub-mesh with fresh vertex numbering.
            let mut coords = Vec::with_capacity((cols + 1) * (ny + 1));
            let old_vid = |i: usize, j: usize| j * (nx + 1) + i;
            for j in 0..=ny {
                for i in start..=end {
                    coords.push(self.coords[old_vid(i, j)]);
                }
            }
            let vid = |i: usize, j: usize| j * (cols + 1) + (i - start);
            let mut elems = Vec::with_capacity(cols * ny);
            let mut boundary = Vec::new();
            for j in 0..ny {
                for i in start..end {
                    let e = elems.len();
                    elems.push([vid(i, j), vid(i + 1, j), vid(i + 1, j + 1), vid(i, j + 1)]);
                    if j == 0 {
                        boundary.push((e, 0, BoundaryTag::Wall));
                    }
                    if j == ny - 1 {
                        boundary.push((e, 2, BoundaryTag::Wall));
                    }
                    if i == start {
                        let tag = if start == 0 {
                            BoundaryTag::Inlet
                        } else {
                            // Left artificial boundary of patch p = cut p-1.
                            BoundaryTag::Interface((p - 1) as u32)
                        };
                        boundary.push((e, 3, tag));
                    }
                    if i + 1 == end {
                        let tag = if end == nx {
                            BoundaryTag::Outlet
                        } else {
                            BoundaryTag::Interface(p as u32)
                        };
                        boundary.push((e, 1, tag));
                    }
                }
            }
            patches.push(QuadMesh {
                coords,
                elems,
                boundary,
            });
        }
        patches
    }

    /// Element adjacency through shared *edges only* (strategy (a) of
    /// Table 2). Returns, per element, the neighbours with the number of
    /// shared degrees of freedom at polynomial order `p` as the weight
    /// (an edge shares `p+1` nodes).
    pub fn face_adjacency(&self, p: usize) -> Vec<Vec<(usize, f64)>> {
        use std::collections::HashMap;
        let mut edge_map: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
        for (e, _) in self.elems.iter().enumerate() {
            for k in 0..4 {
                let [a, b] = self.edge_verts(e, k);
                let key = (a.min(b), a.max(b));
                edge_map.entry(key).or_default().push(e);
            }
        }
        let mut adj = vec![Vec::new(); self.num_elems()];
        for elems in edge_map.values() {
            if elems.len() == 2 {
                let w = (p + 1) as f64;
                adj[elems[0]].push((elems[1], w));
                adj[elems[1]].push((elems[0], w));
            }
        }
        adj
    }

    /// Element adjacency through shared edges *and vertices* (strategy (b)
    /// of Table 2: "we provide to METIS the full adjacency list including
    /// elements sharing only one vertex", weights scaled with shared DoF).
    /// Edge-sharing pairs get weight `p+1`; vertex-only pairs get weight 1.
    pub fn full_adjacency(&self, p: usize) -> Vec<Vec<(usize, f64)>> {
        use std::collections::HashMap;
        let mut vert_map: HashMap<usize, Vec<usize>> = HashMap::new();
        for (e, verts) in self.elems.iter().enumerate() {
            for &v in verts {
                vert_map.entry(v).or_default().push(e);
            }
        }
        // Count shared vertices per element pair.
        let mut pair_count: HashMap<(usize, usize), usize> = HashMap::new();
        for elems in vert_map.values() {
            for i in 0..elems.len() {
                for j in i + 1..elems.len() {
                    let (a, b) = (elems[i].min(elems[j]), elems[i].max(elems[j]));
                    *pair_count.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut adj = vec![Vec::new(); self.num_elems()];
        for (&(a, b), &shared) in &pair_count {
            // Two shared vertices = a shared edge (conforming quads).
            let w = if shared >= 2 { (p + 1) as f64 } else { 1.0 };
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_counts() {
        let m = QuadMesh::rectangle(4, 3, 0.0, 4.0, 0.0, 3.0);
        assert_eq!(m.num_elems(), 12);
        assert_eq!(m.num_verts(), 20);
        // Boundary: 2*(4+3) edges.
        assert_eq!(m.boundary.len(), 14);
    }

    #[test]
    fn rectangle_tags() {
        let m = QuadMesh::rectangle(3, 2, 0.0, 1.0, 0.0, 1.0);
        let inlets = m
            .boundary
            .iter()
            .filter(|b| b.2 == BoundaryTag::Inlet)
            .count();
        let outlets = m
            .boundary
            .iter()
            .filter(|b| b.2 == BoundaryTag::Outlet)
            .count();
        let walls = m
            .boundary
            .iter()
            .filter(|b| b.2 == BoundaryTag::Wall)
            .count();
        assert_eq!((inlets, outlets, walls), (2, 2, 6));
    }

    #[test]
    fn elements_are_ccw() {
        let m = QuadMesh::rectangle(2, 2, -1.0, 1.0, 0.0, 2.0);
        for e in &m.elems {
            let a = m.coords[e[0]];
            let b = m.coords[e[1]];
            let c = m.coords[e[2]];
            let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
            assert!(cross > 0.0, "element not CCW");
        }
    }

    #[test]
    fn mapping_preserves_connectivity() {
        let m = QuadMesh::rectangle(3, 3, 0.0, 1.0, 0.0, 1.0);
        let elems = m.elems.clone();
        let mapped = m.mapped(|[x, y]| [x + y * 0.1, y]);
        assert_eq!(mapped.elems, elems);
    }

    #[test]
    fn aneurysm_channel_bulges_upward() {
        let m = QuadMesh::aneurysm_channel(12, 4, 6.0, 1.0, 0.8);
        let max_y = m.coords.iter().map(|p| p[1]).fold(f64::MIN, f64::max);
        assert!(max_y > 1.2, "sac should bulge above the channel: {max_y}");
        // The inlet edge is still at x=0.
        let min_x = m.coords.iter().map(|p| p[0]).fold(f64::MAX, f64::min);
        assert_eq!(min_x, 0.0);
    }

    #[test]
    fn overlapping_split_counts_and_tags() {
        let nx = 12;
        let m = QuadMesh::rectangle(nx, 2, 0.0, 12.0, 0.0, 1.0);
        let patches = m.split_overlapping_x(nx, 3);
        assert_eq!(patches.len(), 3);
        // patch 0: cols 0..5 (4 own + 1 overlap), patches 1: 3..9, 2: 7..12.
        assert_eq!(patches[0].num_elems(), 5 * 2);
        assert_eq!(patches[1].num_elems(), 6 * 2);
        assert_eq!(patches[2].num_elems(), 5 * 2);
        // Patch 0 has Inlet and Interface(0); patch 2 has Interface(1) and Outlet.
        let tags0: Vec<_> = patches[0].boundary.iter().map(|b| b.2).collect();
        assert!(tags0.contains(&BoundaryTag::Inlet));
        assert!(tags0.contains(&BoundaryTag::Interface(0)));
        assert!(!tags0.contains(&BoundaryTag::Outlet));
        let tags1: Vec<_> = patches[1].boundary.iter().map(|b| b.2).collect();
        assert!(tags1.contains(&BoundaryTag::Interface(0)));
        assert!(tags1.contains(&BoundaryTag::Interface(1)));
        let tags2: Vec<_> = patches[2].boundary.iter().map(|b| b.2).collect();
        assert!(tags2.contains(&BoundaryTag::Interface(1)));
        assert!(tags2.contains(&BoundaryTag::Outlet));
    }

    #[test]
    fn patch_geometry_overlaps() {
        let m = QuadMesh::rectangle(8, 2, 0.0, 8.0, 0.0, 1.0);
        let patches = m.split_overlapping_x(8, 2);
        let max_x0 = patches[0]
            .coords
            .iter()
            .map(|p| p[0])
            .fold(f64::MIN, f64::max);
        let min_x1 = patches[1]
            .coords
            .iter()
            .map(|p| p[0])
            .fold(f64::MAX, f64::min);
        assert!(
            max_x0 > min_x1,
            "patches must overlap: {max_x0} vs {min_x1}"
        );
    }

    #[test]
    fn face_adjacency_interior_element() {
        let m = QuadMesh::rectangle(3, 3, 0.0, 1.0, 0.0, 1.0);
        let adj = m.face_adjacency(5);
        // center element (index 4) has 4 edge neighbours.
        assert_eq!(adj[4].len(), 4);
        for &(_, w) in &adj[4] {
            assert_eq!(w, 6.0);
        }
        // corner element has 2.
        assert_eq!(adj[0].len(), 2);
    }

    #[test]
    fn full_adjacency_includes_corners() {
        let m = QuadMesh::rectangle(3, 3, 0.0, 1.0, 0.0, 1.0);
        let adj = m.full_adjacency(5);
        // center element touches all 8 surrounding elements.
        assert_eq!(adj[4].len(), 8);
        let vertex_only: Vec<_> = adj[4].iter().filter(|&&(_, w)| w == 1.0).collect();
        assert_eq!(vertex_only.len(), 4);
    }

    #[test]
    fn adjacency_symmetric() {
        let m = QuadMesh::rectangle(4, 2, 0.0, 1.0, 0.0, 1.0);
        for adj in [m.face_adjacency(3), m.full_adjacency(3)] {
            for (e, nbrs) in adj.iter().enumerate() {
                for &(n, w) in nbrs {
                    assert!(adj[n].iter().any(|&(b, wb)| b == e && wb == w));
                }
            }
        }
    }
}
