//! 1D arterial network geometry (for the NεκTαr-1D solver).
//!
//! A network is a directed tree (or DAG degenerating to a tree here) of
//! compliant segments. Each segment carries the parameters of the standard
//! 1D blood-flow model: reference area `A0`, wall stiffness `beta` (so that
//! transmural pressure is `p = beta (sqrt(A) - sqrt(A0))`), and a length.
//! Terminals are closed by RCR Windkessel models, the paper's "RC boundary
//! conditions at all outlets".

/// RCR Windkessel terminal: proximal resistance `r1`, compliance `c`,
/// distal resistance `r2`, venous pressure `p_out`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Windkessel {
    /// Proximal (characteristic) resistance.
    pub r1: f64,
    /// Peripheral compliance.
    pub c: f64,
    /// Distal resistance.
    pub r2: f64,
    /// Outflow (venous) pressure.
    pub p_out: f64,
}

impl Windkessel {
    /// Total steady resistance seen by the segment.
    pub fn total_resistance(&self) -> f64 {
        self.r1 + self.r2
    }
}

/// One arterial segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Length (m).
    pub length: f64,
    /// Reference (zero transmural pressure) cross-section area (m²).
    pub area0: f64,
    /// Wall stiffness parameter β (Pa/m).
    pub beta: f64,
    /// Index of the parent segment (`None` for the root/inlet segment).
    pub parent: Option<usize>,
}

impl Segment {
    /// Wave speed at area `a`: `c² = β √a / (2 ρ)` (standard 1D model).
    pub fn wave_speed(&self, a: f64, rho: f64) -> f64 {
        (self.beta * a.sqrt() / (2.0 * rho)).sqrt()
    }

    /// Pressure at area `a`.
    pub fn pressure(&self, a: f64) -> f64 {
        self.beta * (a.sqrt() - self.area0.sqrt())
    }
}

/// A bifurcating arterial tree.
#[derive(Debug, Clone)]
pub struct ArterialNetwork {
    /// All segments; index 0 is the root (inlet) segment.
    pub segments: Vec<Segment>,
    /// `children[i]` lists the segments fed by segment `i`.
    pub children: Vec<Vec<usize>>,
    /// Windkessel terminals for leaf segments, indexed like `segments`
    /// (`None` for internal segments).
    pub terminals: Vec<Option<Windkessel>>,
}

impl ArterialNetwork {
    /// A single vessel with one Windkessel outlet.
    pub fn single_vessel(length: f64, area0: f64, beta: f64, wk: Windkessel) -> Self {
        Self {
            segments: vec![Segment {
                length,
                area0,
                beta,
                parent: None,
            }],
            children: vec![vec![]],
            terminals: vec![Some(wk)],
        }
    }

    /// A symmetric fractal tree of `generations` levels (generation 0 is the
    /// root vessel). Daughter radii follow Murray's law with exponent
    /// `gamma`: `r_parent^γ = 2 r_child^γ`, lengths scale with radius
    /// (`length = length_ratio · r`), and stiffness β scales like `1/r`
    /// (thin-wall, constant Young modulus). Terminal resistances are chosen
    /// so each leaf carries an equal share of `total_resistance`.
    ///
    /// This is the paper's "tree-like structure governed by specific fractal
    /// laws" standing in for the meso-vascular network.
    pub fn fractal_tree(
        generations: usize,
        root_radius: f64,
        length_ratio: f64,
        gamma: f64,
        beta_root: f64,
        total_resistance: f64,
    ) -> Self {
        assert!(generations >= 1);
        let mut segments = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        let mut radii = Vec::new();
        // Breadth-first construction.
        segments.push(Segment {
            length: length_ratio * root_radius,
            area0: std::f64::consts::PI * root_radius * root_radius,
            beta: beta_root,
            parent: None,
        });
        children.push(vec![]);
        radii.push(root_radius);
        let mut frontier = vec![0usize];
        for _ in 1..generations {
            let mut next = Vec::new();
            for &p in &frontier {
                let rp = radii[p];
                let rc = rp / 2f64.powf(1.0 / gamma);
                for _ in 0..2 {
                    let idx = segments.len();
                    segments.push(Segment {
                        length: length_ratio * rc,
                        area0: std::f64::consts::PI * rc * rc,
                        beta: beta_root * root_radius / rc,
                        parent: Some(p),
                    });
                    children.push(vec![]);
                    children[p].push(idx);
                    radii.push(rc);
                    next.push(idx);
                }
            }
            frontier = next;
        }
        let n_leaves = frontier.len();
        let mut terminals = vec![None; segments.len()];
        for &leaf in &frontier {
            let r_total = total_resistance * n_leaves as f64;
            terminals[leaf] = Some(Windkessel {
                r1: 0.1 * r_total,
                c: 1.0e-10,
                r2: 0.9 * r_total,
                p_out: 0.0,
            });
        }
        Self {
            segments,
            children,
            terminals,
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the network has no segments (never for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Leaf segment indices.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.children[i].is_empty())
            .collect()
    }

    /// Check structural invariants (tree-ness, terminals only on leaves).
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.len() != self.children.len() || self.segments.len() != self.terminals.len()
        {
            return Err("inconsistent array lengths".into());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            if let Some(p) = seg.parent {
                if p >= self.len() {
                    return Err(format!("segment {i}: parent {p} out of range"));
                }
                if !self.children[p].contains(&i) {
                    return Err(format!("segment {i} missing from parent {p}'s children"));
                }
            } else if i != 0 {
                return Err(format!("segment {i} has no parent but is not the root"));
            }
            if seg.area0 <= 0.0 || seg.length <= 0.0 || seg.beta <= 0.0 {
                return Err(format!("segment {i}: non-positive parameters"));
            }
            let is_leaf = self.children[i].is_empty();
            if is_leaf != self.terminals[i].is_some() {
                return Err(format!(
                    "segment {i}: terminal presence ({}) disagrees with leaf status ({is_leaf})",
                    self.terminals[i].is_some()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wk() -> Windkessel {
        Windkessel {
            r1: 1.0e8,
            c: 1.0e-10,
            r2: 9.0e8,
            p_out: 0.0,
        }
    }

    #[test]
    fn single_vessel_valid() {
        let n = ArterialNetwork::single_vessel(0.1, 3.0e-5, 3.0e5, wk());
        n.validate().unwrap();
        assert_eq!(n.leaves(), vec![0]);
        assert_eq!(n.terminals[0].unwrap().total_resistance(), 1.0e9);
    }

    #[test]
    fn fractal_tree_counts() {
        let t = ArterialNetwork::fractal_tree(4, 2.0e-3, 20.0, 3.0, 1.0e5, 1.0e9);
        t.validate().unwrap();
        // 1 + 2 + 4 + 8 = 15 segments, 8 leaves.
        assert_eq!(t.len(), 15);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn murray_law_area_conservation() {
        // With gamma=2, total child area equals parent area exactly.
        let t = ArterialNetwork::fractal_tree(2, 1.0e-3, 10.0, 2.0, 1.0e5, 1.0e9);
        let parent = t.segments[0].area0;
        let child_total: f64 = t.children[0].iter().map(|&c| t.segments[c].area0).sum();
        assert!((parent - child_total).abs() < 1e-12 * parent);
    }

    #[test]
    fn radii_shrink_down_generations() {
        let t = ArterialNetwork::fractal_tree(3, 1.0e-3, 10.0, 3.0, 1.0e5, 1.0e9);
        for (i, seg) in t.segments.iter().enumerate() {
            if let Some(p) = seg.parent {
                assert!(seg.area0 < t.segments[p].area0, "segment {i}");
                assert!(
                    seg.beta > t.segments[p].beta,
                    "stiffness grows as r shrinks"
                );
            }
        }
    }

    #[test]
    fn wave_speed_formula() {
        let s = Segment {
            length: 0.1,
            area0: 1.0e-5,
            beta: 2.0e5,
            parent: None,
        };
        let rho = 1050.0;
        let c = s.wave_speed(1.0e-5, rho);
        let expect = (2.0e5 * (1.0e-5f64).sqrt() / (2.0 * rho)).sqrt();
        assert!((c - expect).abs() < 1e-12);
        // Pressure at the reference area vanishes.
        assert_eq!(s.pressure(s.area0), 0.0);
    }

    #[test]
    fn validate_catches_broken_tree() {
        let mut n = ArterialNetwork::single_vessel(0.1, 3.0e-5, 3.0e5, wk());
        n.segments[0].parent = Some(0); // cycle to itself
        assert!(n.validate().is_err());
    }
}
