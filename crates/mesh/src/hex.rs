//! 3D hexahedral spectral-element meshes.
//!
//! Vertex ordering follows the usual tensor-product convention: vertices
//! `0..4` are the bottom face (CCW seen from above: `(0,0,0) (1,0,0)
//! (1,1,0) (0,1,0)` in reference coordinates), `4..8` the top face in the
//! same order. Local faces are numbered `0:z-`, `1:z+`, `2:y-`, `3:x+`,
//! `4:y+`, `5:x-`.

use crate::quad::BoundaryTag;
use crate::Point3;

/// An unstructured conforming hexahedral mesh.
#[derive(Debug, Clone)]
pub struct HexMesh {
    /// Vertex coordinates.
    pub coords: Vec<Point3>,
    /// Elements as vertex octuples.
    pub elems: Vec<[usize; 8]>,
    /// Tagged boundary faces: `(element, local_face, tag)`.
    pub boundary: Vec<(usize, usize, BoundaryTag)>,
}

impl HexMesh {
    /// Structured `nx × ny × nz` mesh of a box. Faces at `x = x0` are
    /// [`BoundaryTag::Inlet`], `x = x1` [`BoundaryTag::Outlet`], all other
    /// outer faces [`BoundaryTag::Wall`].
    #[allow(clippy::too_many_arguments)]
    pub fn box_mesh(
        nx: usize,
        ny: usize,
        nz: usize,
        x: [f64; 2],
        y: [f64; 2],
        z: [f64; 2],
    ) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        let mut coords = Vec::with_capacity((nx + 1) * (ny + 1) * (nz + 1));
        for k in 0..=nz {
            for j in 0..=ny {
                for i in 0..=nx {
                    coords.push([
                        x[0] + (x[1] - x[0]) * i as f64 / nx as f64,
                        y[0] + (y[1] - y[0]) * j as f64 / ny as f64,
                        z[0] + (z[1] - z[0]) * k as f64 / nz as f64,
                    ]);
                }
            }
        }
        let vid = |i: usize, j: usize, k: usize| (k * (ny + 1) + j) * (nx + 1) + i;
        let mut elems = Vec::with_capacity(nx * ny * nz);
        let mut boundary = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let e = elems.len();
                    elems.push([
                        vid(i, j, k),
                        vid(i + 1, j, k),
                        vid(i + 1, j + 1, k),
                        vid(i, j + 1, k),
                        vid(i, j, k + 1),
                        vid(i + 1, j, k + 1),
                        vid(i + 1, j + 1, k + 1),
                        vid(i, j + 1, k + 1),
                    ]);
                    if k == 0 {
                        boundary.push((e, 0, BoundaryTag::Wall));
                    }
                    if k == nz - 1 {
                        boundary.push((e, 1, BoundaryTag::Wall));
                    }
                    if j == 0 {
                        boundary.push((e, 2, BoundaryTag::Wall));
                    }
                    if i == nx - 1 {
                        boundary.push((e, 3, BoundaryTag::Outlet));
                    }
                    if j == ny - 1 {
                        boundary.push((e, 4, BoundaryTag::Wall));
                    }
                    if i == 0 {
                        boundary.push((e, 5, BoundaryTag::Inlet));
                    }
                }
            }
        }
        Self {
            coords,
            elems,
            boundary,
        }
    }

    /// Apply a smooth geometric mapping to every vertex.
    pub fn mapped(mut self, map: impl Fn(Point3) -> Point3) -> Self {
        for p in &mut self.coords {
            *p = map(*p);
        }
        self
    }

    /// A straight circular tube of given `radius` and `length` along x,
    /// built by mapping a box cross-section onto the disc (a standard
    /// "square-to-circle" map that keeps elements well-shaped). This stands
    /// in for the paper's carotid-artery mesh in Table 2.
    pub fn tube(nx: usize, nc: usize, radius: f64, length: f64) -> Self {
        let m = Self::box_mesh(nx, nc, nc, [0.0, length], [-1.0, 1.0], [-1.0, 1.0]);
        m.mapped(move |[x, y, z]| {
            // Elliptical square-to-disc mapping.
            let u = y * (1.0 - z * z / 2.0).sqrt();
            let v = z * (1.0 - y * y / 2.0).sqrt();
            [x, radius * u, radius * v]
        })
    }

    /// Number of elements.
    pub fn num_elems(&self) -> usize {
        self.elems.len()
    }

    /// Number of vertices.
    pub fn num_verts(&self) -> usize {
        self.coords.len()
    }

    /// Vertex ids of a local face.
    pub fn face_verts(&self, elem: usize, face: usize) -> [usize; 4] {
        let v = self.elems[elem];
        match face {
            0 => [v[0], v[1], v[2], v[3]],
            1 => [v[4], v[5], v[6], v[7]],
            2 => [v[0], v[1], v[5], v[4]],
            3 => [v[1], v[2], v[6], v[5]],
            4 => [v[3], v[2], v[6], v[7]],
            5 => [v[0], v[3], v[7], v[4]],
            _ => panic!("hex face index {face} out of range"),
        }
    }

    /// Element adjacency through shared faces only (Table 2 strategy (a));
    /// weight = `(p+1)²` shared DoF per face at order `p`.
    pub fn face_adjacency(&self, p: usize) -> Vec<Vec<(usize, f64)>> {
        use std::collections::HashMap;
        let mut face_map: HashMap<[usize; 4], Vec<usize>> = HashMap::new();
        for e in 0..self.num_elems() {
            for f in 0..6 {
                let mut key = self.face_verts(e, f);
                key.sort_unstable();
                face_map.entry(key).or_default().push(e);
            }
        }
        let mut adj = vec![Vec::new(); self.num_elems()];
        let w = ((p + 1) * (p + 1)) as f64;
        for elems in face_map.values() {
            if elems.len() == 2 {
                adj[elems[0]].push((elems[1], w));
                adj[elems[1]].push((elems[0], w));
            }
        }
        adj
    }

    /// Element adjacency through shared faces, edges and vertices (Table 2
    /// strategy (b)). Weights scale with the shared DoF count at order `p`:
    /// `(p+1)²` per shared face (4 shared vertices), `p+1` per shared edge
    /// (2 vertices), `1` per shared vertex — "the weights associated with
    /// the links are scaled with respect to the number of shared degrees of
    /// freedom per link".
    pub fn full_adjacency(&self, p: usize) -> Vec<Vec<(usize, f64)>> {
        use std::collections::HashMap;
        let mut vert_map: HashMap<usize, Vec<usize>> = HashMap::new();
        for (e, verts) in self.elems.iter().enumerate() {
            for &v in verts {
                vert_map.entry(v).or_default().push(e);
            }
        }
        let mut pair_count: HashMap<(usize, usize), usize> = HashMap::new();
        for elems in vert_map.values() {
            for i in 0..elems.len() {
                for j in i + 1..elems.len() {
                    let (a, b) = (elems[i].min(elems[j]), elems[i].max(elems[j]));
                    *pair_count.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
        let mut adj = vec![Vec::new(); self.num_elems()];
        for (&(a, b), &shared) in &pair_count {
            let w = match shared {
                1 => 1.0,
                2 => (p + 1) as f64,
                _ => ((p + 1) * (p + 1)) as f64,
            };
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_counts() {
        let m = HexMesh::box_mesh(3, 2, 2, [0.0, 3.0], [0.0, 2.0], [0.0, 2.0]);
        assert_eq!(m.num_elems(), 12);
        assert_eq!(m.num_verts(), 4 * 3 * 3);
        // Outer faces: 2*(ny*nz + nx*nz + nx*ny) = 2*(4 + 6 + 6) = 32.
        assert_eq!(m.boundary.len(), 32);
    }

    #[test]
    fn inlet_outlet_on_x_faces() {
        let m = HexMesh::box_mesh(2, 2, 2, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let inlets = m
            .boundary
            .iter()
            .filter(|b| b.2 == BoundaryTag::Inlet)
            .count();
        let outlets = m
            .boundary
            .iter()
            .filter(|b| b.2 == BoundaryTag::Outlet)
            .count();
        assert_eq!((inlets, outlets), (4, 4));
    }

    #[test]
    fn interior_element_has_six_face_neighbors() {
        let m = HexMesh::box_mesh(3, 3, 3, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let adj = m.face_adjacency(4);
        let center = 13; // (1,1,1) in a 3x3x3 block
        assert_eq!(adj[center].len(), 6);
        for &(_, w) in &adj[center] {
            assert_eq!(w, 25.0);
        }
    }

    #[test]
    fn full_adjacency_has_26_neighbors_interior() {
        let m = HexMesh::box_mesh(3, 3, 3, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let adj = m.full_adjacency(4);
        let center = 13;
        assert_eq!(adj[center].len(), 26);
        let faces = adj[center].iter().filter(|&&(_, w)| w == 25.0).count();
        let edges = adj[center].iter().filter(|&&(_, w)| w == 5.0).count();
        let verts = adj[center].iter().filter(|&&(_, w)| w == 1.0).count();
        assert_eq!((faces, edges, verts), (6, 12, 8));
    }

    #[test]
    fn tube_stays_within_radius() {
        let m = HexMesh::tube(4, 4, 2.0, 10.0);
        for p in &m.coords {
            let r = (p[1] * p[1] + p[2] * p[2]).sqrt();
            assert!(r <= 2.0 + 1e-12, "point outside tube radius: {r}");
        }
        // Wall vertices exist at (close to) the full radius.
        let rmax = m
            .coords
            .iter()
            .map(|p| (p[1] * p[1] + p[2] * p[2]).sqrt())
            .fold(f64::MIN, f64::max);
        assert!(rmax > 1.9, "tube surface missing: rmax={rmax}");
    }

    #[test]
    fn face_verts_cover_all_vertices() {
        let m = HexMesh::box_mesh(1, 1, 1, [0.0, 1.0], [0.0, 1.0], [0.0, 1.0]);
        let mut seen = std::collections::HashSet::new();
        for f in 0..6 {
            for v in m.face_verts(0, f) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 8);
    }
}
