//! Multipatch descriptions of vascular networks.
//!
//! The paper decomposes the circle-of-Willis domain ΩC into four overlapping
//! patches joined by six artificial interfaces (three inlet-side, three
//! outlet-side, i.e. three cuts), sized "such that solution in each Ωj can
//! be obtained within approximately the same wall-clock time". This module
//! captures that patch-level topology — patch sizes, polynomial order,
//! interface DoF counts — in a form consumed by both the coupling layer
//! (communicator layout) and the performance model (Tables 3-5).

/// One continuum patch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchInfo {
    /// Number of spectral elements.
    pub n_elements: usize,
    /// Polynomial order of the expansion.
    pub poly_order: usize,
}

impl PatchInfo {
    /// Degrees of freedom per scalar field: `n_elements · (P+1)^3` for 3D
    /// tetrahedral/hexahedral discretizations (the paper quotes DoF counts
    /// consistent with per-element `(P+1)^3` scaling).
    pub fn dof(&self) -> usize {
        self.n_elements * (self.poly_order + 1).pow(3)
    }
}

/// A patch decomposition with its interface topology.
#[derive(Debug, Clone)]
pub struct PatchGraph {
    /// The patches.
    pub patches: Vec<PatchInfo>,
    /// Interfaces: `(patch_a, patch_b, interface_dof)` — the number of
    /// scalar values exchanged per field per step across the cut.
    pub interfaces: Vec<(usize, usize, usize)>,
}

impl PatchGraph {
    /// A chain of `np` identical patches (the weak/strong-scaling geometry
    /// of Tables 3-4: each patch has 17,474 elements, the one-element-wide
    /// overlap region 1,114 elements, so an interface cross-section is about
    /// 1,114 element faces with `(P+1)²` DoF each).
    pub fn chain(np: usize, elements_per_patch: usize, poly_order: usize) -> Self {
        assert!(np >= 1);
        let patches = vec![
            PatchInfo {
                n_elements: elements_per_patch,
                poly_order,
            };
            np
        ];
        // Interface cross-section from the paper: 1,114 overlap elements.
        let iface_faces = 1114;
        let iface_dof = iface_faces * (poly_order + 1) * (poly_order + 1);
        let interfaces = (0..np.saturating_sub(1))
            .map(|i| (i, i + 1, iface_dof))
            .collect();
        Self {
            patches,
            interfaces,
        }
    }

    /// The four-patch circle-of-Willis decomposition of the paper's Fig. 1:
    /// patch 0 is the right-ICA patch, patches 1-3 the remaining territory,
    /// joined by three cuts in a chain-with-branch topology.
    pub fn circle_of_willis(poly_order: usize) -> Self {
        let sizes = [17_474, 17_474, 17_474, 17_474];
        let patches = sizes
            .iter()
            .map(|&n_elements| PatchInfo {
                n_elements,
                poly_order,
            })
            .collect();
        let iface_dof = 1114 * (poly_order + 1) * (poly_order + 1);
        // Patch 1 is central: connected to 0, 2 and 3.
        let interfaces = vec![(0, 1, iface_dof), (1, 2, iface_dof), (1, 3, iface_dof)];
        Self {
            patches,
            interfaces,
        }
    }

    /// Total degrees of freedom per scalar field.
    pub fn total_dof(&self) -> usize {
        self.patches.iter().map(PatchInfo::dof).sum()
    }

    /// Total DoF across the 4 fields (3 velocity + pressure) of an
    /// incompressible 3D solve — the paper's headline "unknowns" metric.
    pub fn total_unknowns(&self) -> usize {
        4 * self.total_dof()
    }

    /// Interfaces touching a patch.
    pub fn interfaces_of(&self, patch: usize) -> Vec<usize> {
        self.interfaces
            .iter()
            .enumerate()
            .filter(|(_, &(a, b, _))| a == patch || b == patch)
            .map(|(i, _)| i)
            .collect()
    }

    /// Structural validation: interface endpoints in range, no self-loops.
    pub fn validate(&self) -> Result<(), String> {
        for (i, &(a, b, dof)) in self.interfaces.iter().enumerate() {
            if a >= self.patches.len() || b >= self.patches.len() {
                return Err(format!("interface {i}: endpoint out of range"));
            }
            if a == b {
                return Err(format!("interface {i}: self-loop on patch {a}"));
            }
            if dof == 0 {
                return Err(format!("interface {i}: zero DoF"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_topology() {
        let g = PatchGraph::chain(4, 17_474, 10);
        g.validate().unwrap();
        assert_eq!(g.patches.len(), 4);
        assert_eq!(g.interfaces.len(), 3);
        assert_eq!(g.interfaces_of(0), vec![0]);
        assert_eq!(g.interfaces_of(1), vec![0, 1]);
    }

    #[test]
    fn paper_dof_scale_matches_table3() {
        // Table 3: Np=3 patches at P=10 quoted as 0.384e9 unknowns.
        let g = PatchGraph::chain(3, 17_474, 10);
        let unknowns = g.total_unknowns() as f64;
        assert!(
            (unknowns - 0.384e9).abs() / 0.384e9 < 0.35,
            "expected ~0.38B unknowns, got {unknowns:.3e}"
        );
    }

    #[test]
    fn cow_has_three_interfaces() {
        let g = PatchGraph::circle_of_willis(10);
        g.validate().unwrap();
        assert_eq!(g.patches.len(), 4);
        assert_eq!(g.interfaces.len(), 3);
        assert_eq!(g.interfaces_of(1).len(), 3);
    }

    #[test]
    fn dof_formula() {
        let p = PatchInfo {
            n_elements: 10,
            poly_order: 3,
        };
        assert_eq!(p.dof(), 10 * 64);
    }

    #[test]
    fn validate_rejects_self_loop() {
        let mut g = PatchGraph::chain(2, 100, 4);
        g.interfaces[0] = (1, 1, 10);
        assert!(g.validate().is_err());
    }

    #[test]
    fn single_patch_chain_has_no_interfaces() {
        let g = PatchGraph::chain(1, 5, 2);
        assert!(g.interfaces.is_empty());
        g.validate().unwrap();
    }
}
