//! Meshes and synthetic vasculature.
//!
//! The paper's continuum domain is a patient-specific reconstruction of the
//! major brain arteries (circle of Willis with an aneurysm), decomposed into
//! four overlapping patches; the atomistic domain ΩA is a 3.93 mm³ box
//! embedded in the aneurysm, bounded by five planar triangulated interfaces
//! and one wall surface. MRI data is not available, so this crate generates
//! *synthetic* equivalents that exercise identical code paths:
//!
//! * [`oned`] — 1D arterial networks (segments + bifurcations with
//!   Murray-law radii, Windkessel-terminated outlets) for the NεκTαr-1D
//!   solver;
//! * [`quad`] — 2D quadrilateral spectral-element meshes (channels, mapped
//!   geometries, overlapping patch decompositions);
//! * [`hex`] — 3D hexahedral spectral-element meshes (boxes and mapped
//!   tubes);
//! * [`surface`] — triangulated interface surfaces (the ΓI of the paper's
//!   §3.3) with midpoints, normals and areas;
//! * [`patchgraph`] — the multipatch description of a vascular network
//!   (patch sizes + interface topology) consumed by the coupling layer and
//!   the performance model.
//!
//! Element-adjacency extraction for partitioning (face-only vs. full
//! vertex adjacency — the two strategies of Table 2) lives here too, since
//! it is a mesh property.

pub mod hex;
pub mod oned;
pub mod patchgraph;
pub mod quad;
pub mod surface;

pub use hex::HexMesh;
pub use oned::{ArterialNetwork, Segment, Windkessel};
pub use patchgraph::{PatchGraph, PatchInfo};
pub use quad::{BoundaryTag, QuadMesh};
pub use surface::TriSurface;

/// 2D point.
pub type Point2 = [f64; 2];
/// 3D point.
pub type Point3 = [f64; 3];
