//! Triangulated interface surfaces (the ΓI of paper §3.3).
//!
//! The boundary of the atomistic domain ΩA "is discretized (e.g.
//! triangulated) into small enough elements where local BC velocities are
//! set"; the triangle midpoints are the coordinates shipped to the continuum
//! solver for interpolation. This module provides the triangulation, its
//! midpoints/normals/areas, and generators for the planar interface faces of
//! an embedded box domain.

use crate::Point3;

/// A triangulated surface in 3D.
#[derive(Debug, Clone)]
pub struct TriSurface {
    /// Vertex coordinates.
    pub verts: Vec<Point3>,
    /// Triangles as vertex index triples.
    pub tris: Vec<[usize; 3]>,
}

fn sub(a: Point3, b: Point3) -> Point3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

fn cross(a: Point3, b: Point3) -> Point3 {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: Point3) -> f64 {
    (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt()
}

impl TriSurface {
    /// Triangulate a planar rectangle spanned by `origin`, `u` and `v`
    /// (corner + two edge vectors) into `nu × nv × 2` triangles.
    pub fn rectangle(origin: Point3, u: Point3, v: Point3, nu: usize, nv: usize) -> Self {
        assert!(nu >= 1 && nv >= 1);
        let mut verts = Vec::with_capacity((nu + 1) * (nv + 1));
        for j in 0..=nv {
            for i in 0..=nu {
                let s = i as f64 / nu as f64;
                let t = j as f64 / nv as f64;
                verts.push([
                    origin[0] + s * u[0] + t * v[0],
                    origin[1] + s * u[1] + t * v[1],
                    origin[2] + s * u[2] + t * v[2],
                ]);
            }
        }
        let vid = |i: usize, j: usize| j * (nu + 1) + i;
        let mut tris = Vec::with_capacity(2 * nu * nv);
        for j in 0..nv {
            for i in 0..nu {
                tris.push([vid(i, j), vid(i + 1, j), vid(i + 1, j + 1)]);
                tris.push([vid(i, j), vid(i + 1, j + 1), vid(i, j + 1)]);
            }
        }
        Self { verts, tris }
    }

    /// The five planar interface faces of an axis-aligned box `[lo, hi]`
    /// whose sixth face (`z = hi[2]`, by convention the one overlapping the
    /// aneurysm wall, Γwall in the paper) is omitted. Returns one surface
    /// per face in the order `x-`, `x+`, `y-`, `y+`, `z-`.
    pub fn box_interfaces(lo: Point3, hi: Point3, n: usize) -> Vec<TriSurface> {
        let d = sub(hi, lo);
        vec![
            // x- face: spanned by y and z
            Self::rectangle(lo, [0.0, d[1], 0.0], [0.0, 0.0, d[2]], n, n),
            // x+ face
            Self::rectangle(
                [hi[0], lo[1], lo[2]],
                [0.0, d[1], 0.0],
                [0.0, 0.0, d[2]],
                n,
                n,
            ),
            // y- face: spanned by x and z
            Self::rectangle(lo, [d[0], 0.0, 0.0], [0.0, 0.0, d[2]], n, n),
            // y+ face
            Self::rectangle(
                [lo[0], hi[1], lo[2]],
                [d[0], 0.0, 0.0],
                [0.0, 0.0, d[2]],
                n,
                n,
            ),
            // z- face: spanned by x and y
            Self::rectangle(lo, [d[0], 0.0, 0.0], [0.0, d[1], 0.0], n, n),
        ]
    }

    /// Number of triangles.
    pub fn num_tris(&self) -> usize {
        self.tris.len()
    }

    /// Midpoint (centroid) of triangle `t` — the coordinate shipped to the
    /// continuum solver for velocity interpolation.
    pub fn midpoint(&self, t: usize) -> Point3 {
        let [a, b, c] = self.tris[t];
        let (pa, pb, pc) = (self.verts[a], self.verts[b], self.verts[c]);
        [
            (pa[0] + pb[0] + pc[0]) / 3.0,
            (pa[1] + pb[1] + pc[1]) / 3.0,
            (pa[2] + pb[2] + pc[2]) / 3.0,
        ]
    }

    /// All midpoints, flattened `[x0,y0,z0, x1,y1,z1, ...]` — the wire
    /// format of the preprocessing step in §3.3.
    pub fn midpoints_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 * self.num_tris());
        for t in 0..self.num_tris() {
            out.extend_from_slice(&self.midpoint(t));
        }
        out
    }

    /// Area of triangle `t`.
    pub fn area(&self, t: usize) -> f64 {
        let [a, b, c] = self.tris[t];
        let u = sub(self.verts[b], self.verts[a]);
        let v = sub(self.verts[c], self.verts[a]);
        0.5 * norm(cross(u, v))
    }

    /// Total surface area.
    pub fn total_area(&self) -> f64 {
        (0..self.num_tris()).map(|t| self.area(t)).sum()
    }

    /// Unit normal of triangle `t` (right-hand rule on vertex order).
    pub fn normal(&self, t: usize) -> Point3 {
        let [a, b, c] = self.tris[t];
        let u = sub(self.verts[b], self.verts[a]);
        let v = sub(self.verts[c], self.verts[a]);
        let n = cross(u, v);
        let l = norm(n);
        [n[0] / l, n[1] / l, n[2] / l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_area_exact() {
        let s = TriSurface::rectangle([0.0; 3], [2.0, 0.0, 0.0], [0.0, 3.0, 0.0], 4, 5);
        assert_eq!(s.num_tris(), 40);
        assert!((s.total_area() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn normals_consistent_on_plane() {
        let s = TriSurface::rectangle([1.0, 2.0, 3.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], 3, 3);
        for t in 0..s.num_tris() {
            let n = s.normal(t);
            assert!((n[2] - 1.0).abs() < 1e-12, "normal should be +z: {n:?}");
        }
    }

    #[test]
    fn midpoints_inside_bounds() {
        let s = TriSurface::rectangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 0.0, 2.0], 2, 2);
        for t in 0..s.num_tris() {
            let m = s.midpoint(t);
            assert!(m[0] > 0.0 && m[0] < 1.0);
            assert!(m[2] > 0.0 && m[2] < 2.0);
            assert_eq!(m[1], 0.0);
        }
        assert_eq!(s.midpoints_flat().len(), 3 * s.num_tris());
    }

    #[test]
    fn box_interfaces_five_faces() {
        let faces = TriSurface::box_interfaces([0.0; 3], [1.0, 2.0, 3.0], 2);
        assert_eq!(faces.len(), 5);
        let areas: Vec<f64> = faces.iter().map(|f| f.total_area()).collect();
        // x faces: 2*3=6, y faces: 1*3=3, z- face: 1*2=2.
        let expect = [6.0, 6.0, 3.0, 3.0, 2.0];
        for (a, e) in areas.iter().zip(expect) {
            assert!((a - e).abs() < 1e-12, "{areas:?}");
        }
    }

    #[test]
    fn degenerate_dims_rejected() {
        let r = std::panic::catch_unwind(|| {
            TriSurface::rectangle([0.0; 3], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], 0, 1)
        });
        assert!(r.is_err());
    }
}
