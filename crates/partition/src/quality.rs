//! Partition quality metrics and communication summaries.

use crate::graph::Graph;

/// Quality summary of a `nparts`-way partition.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// Vertices per part.
    pub part_sizes: Vec<usize>,
    /// Total cut edge weight (each undirected edge counted once).
    pub edge_cut: f64,
    /// Communication volume per part: total weight of edges leaving it.
    pub comm_volume: Vec<f64>,
    /// Number of distinct neighbor parts per part (message count proxy —
    /// the paper notes O(10)-O(100) adjacent elements drive "the large
    /// volume of p2p communications").
    pub neighbor_parts: Vec<usize>,
}

impl PartitionQuality {
    /// Measure a partition.
    pub fn measure(g: &Graph, part: &[usize], nparts: usize) -> Self {
        assert_eq!(part.len(), g.num_verts());
        let mut part_sizes = vec![0usize; nparts];
        for &p in part {
            assert!(p < nparts, "part id {p} out of range");
            part_sizes[p] += 1;
        }
        let mut comm_volume = vec![0.0f64; nparts];
        let mut nbr_sets: Vec<std::collections::HashSet<usize>> =
            vec![std::collections::HashSet::new(); nparts];
        let mut edge_cut = 0.0;
        for u in 0..g.num_verts() {
            for (v, w) in g.neighbors(u) {
                if part[u] != part[v] {
                    comm_volume[part[u]] += w;
                    nbr_sets[part[u]].insert(part[v]);
                    if u < v {
                        edge_cut += w;
                    }
                }
            }
        }
        Self {
            part_sizes,
            edge_cut,
            comm_volume,
            neighbor_parts: nbr_sets.iter().map(|s| s.len()).collect(),
        }
    }

    /// Load imbalance: `max_size / mean_size - 1`.
    pub fn imbalance(&self) -> f64 {
        let total: usize = self.part_sizes.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.part_sizes.len() as f64;
        let max = *self.part_sizes.iter().max().unwrap() as f64;
        max / mean - 1.0
    }

    /// Largest per-part communication volume — the value that bounds the
    /// communication phase of a bulk-synchronous step.
    pub fn max_comm_volume(&self) -> f64 {
        self.comm_volume.iter().cloned().fold(0.0, f64::max)
    }

    /// Largest per-part neighbor count (bounds the per-step message count).
    pub fn max_neighbor_parts(&self) -> usize {
        self.neighbor_parts.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive::{recursive_bisect, slab_partition};

    #[test]
    fn metrics_on_path() {
        let g = Graph::path(6);
        let part = vec![0, 0, 0, 1, 1, 1];
        let q = PartitionQuality::measure(&g, &part, 2);
        assert_eq!(q.part_sizes, vec![3, 3]);
        assert_eq!(q.edge_cut, 1.0);
        assert_eq!(q.comm_volume, vec![1.0, 1.0]);
        assert_eq!(q.neighbor_parts, vec![1, 1]);
        assert_eq!(q.imbalance(), 0.0);
    }

    #[test]
    fn imbalance_detects_skew() {
        let g = Graph::path(4);
        let q = PartitionQuality::measure(&g, &[0, 0, 0, 1], 2);
        assert!((q.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recursive_beats_slab_on_grid_cut() {
        // A tall thin grid: slabs along index order cut entire rows.
        let g = Graph::grid2d(4, 32);
        let good = recursive_bisect(&g, 4, 2);
        let bad = slab_partition(128, 4);
        let qg = PartitionQuality::measure(&g, &good, 4);
        let qb = PartitionQuality::measure(&g, &bad, 4);
        assert!(qg.edge_cut <= qb.edge_cut);
    }

    #[test]
    fn neighbor_parts_counted() {
        let g = Graph::grid2d(2, 2);
        // Every vertex its own part: each has 2 neighbor parts.
        let q = PartitionQuality::measure(&g, &[0, 1, 2, 3], 4);
        assert_eq!(q.max_neighbor_parts(), 2);
        assert_eq!(q.edge_cut, 4.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_id_rejected() {
        let g = Graph::path(2);
        PartitionQuality::measure(&g, &[0, 5], 2);
    }
}
