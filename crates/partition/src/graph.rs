//! Weighted undirected graphs in CSR form.

/// An undirected graph with `f64` edge weights, stored as symmetric CSR.
/// Vertices model mesh elements; edge weights model shared-DoF counts.
#[derive(Debug, Clone)]
pub struct Graph {
    /// CSR row offsets, length `n + 1`.
    pub xadj: Vec<usize>,
    /// Flattened neighbor lists.
    pub adjncy: Vec<usize>,
    /// Edge weights parallel to `adjncy`.
    pub adjwgt: Vec<f64>,
}

impl Graph {
    /// Build from per-vertex adjacency lists (as produced by the
    /// `nkg-mesh` adjacency builders). The input must be symmetric; this is
    /// checked in debug builds.
    pub fn from_adjacency(adj: &[Vec<(usize, f64)>]) -> Self {
        let n = adj.len();
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        xadj.push(0);
        for nbrs in adj {
            // Normalize neighbor order: the mesh adjacency builders use
            // hash maps whose iteration order varies between processes, and
            // partitioning must be bit-identical on every rank.
            let mut sorted = nbrs.clone();
            sorted.sort_by_key(|&(v, _)| v);
            for (v, w) in sorted {
                adjncy.push(v);
                adjwgt.push(w);
            }
            xadj.push(adjncy.len());
        }
        let g = Self {
            xadj,
            adjncy,
            adjwgt,
        };
        debug_assert!(g.is_symmetric(), "adjacency must be symmetric");
        g
    }

    /// Number of vertices.
    pub fn num_verts(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Neighbors (with weights) of vertex `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (s, e) = (self.xadj[v], self.xadj[v + 1]);
        self.adjncy[s..e]
            .iter()
            .copied()
            .zip(self.adjwgt[s..e].iter().copied())
    }

    /// Vertex degree.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Check CSR symmetry (u→v implies v→u with equal weight).
    pub fn is_symmetric(&self) -> bool {
        for u in 0..self.num_verts() {
            for (v, w) in self.neighbors(u) {
                if v >= self.num_verts() {
                    return false;
                }
                if !self
                    .neighbors(v)
                    .any(|(b, wb)| b == u && (wb - w).abs() < 1e-12)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Total weight of edges whose endpoints lie in different parts of
    /// `part` (each undirected edge counted once).
    pub fn edge_cut(&self, part: &[usize]) -> f64 {
        assert_eq!(part.len(), self.num_verts());
        let mut cut = 0.0;
        for u in 0..self.num_verts() {
            for (v, w) in self.neighbors(u) {
                if u < v && part[u] != part[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// A simple path graph (for tests).
    pub fn path(n: usize) -> Self {
        let adj: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push((i - 1, 1.0));
                }
                if i + 1 < n {
                    v.push((i + 1, 1.0));
                }
                v
            })
            .collect();
        Self::from_adjacency(&adj)
    }

    /// A structured 2D grid graph `nx × ny` with unit weights (for tests
    /// and the performance model's synthetic meshes).
    pub fn grid2d(nx: usize, ny: usize) -> Self {
        let id = |i: usize, j: usize| j * nx + i;
        let mut adj = vec![Vec::new(); nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                if i + 1 < nx {
                    adj[id(i, j)].push((id(i + 1, j), 1.0));
                    adj[id(i + 1, j)].push((id(i, j), 1.0));
                }
                if j + 1 < ny {
                    adj[id(i, j)].push((id(i, j + 1), 1.0));
                    adj[id(i, j + 1)].push((id(i, j), 1.0));
                }
            }
        }
        Self::from_adjacency(&adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_construction() {
        let adj = vec![vec![(1, 2.0)], vec![(0, 2.0), (2, 3.0)], vec![(1, 3.0)]];
        let g = Graph::from_adjacency(&adj);
        assert_eq!(g.num_verts(), 3);
        assert_eq!(g.degree(1), 2);
        assert!(g.is_symmetric());
        let nbrs: Vec<_> = g.neighbors(1).collect();
        assert_eq!(nbrs, vec![(0, 2.0), (2, 3.0)]);
    }

    #[test]
    fn edge_cut_counts_once() {
        let g = Graph::path(4);
        // parts: [0,0,1,1] → single cut edge 1-2.
        assert_eq!(g.edge_cut(&[0, 0, 1, 1]), 1.0);
        assert_eq!(g.edge_cut(&[0, 1, 0, 1]), 3.0);
        assert_eq!(g.edge_cut(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn grid_degrees() {
        let g = Graph::grid2d(3, 3);
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.degree(0), 2); // corner
        assert!(g.is_symmetric());
    }

    #[test]
    fn asymmetry_detected() {
        let g = Graph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
            adjwgt: vec![1.0],
        };
        assert!(!g.is_symmetric());
    }
}
