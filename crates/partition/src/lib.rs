//! Graph partitioning for spectral-element meshes (the METIS substitute).
//!
//! The paper partitions each patch with `METIS_PartGraphRecursive`, feeding
//! it "the full adjacency list including elements sharing only one vertex"
//! with edge weights "scaled with respect to the number of shared degrees of
//! freedom per link" (§3.5, Table 2). METIS has no Rust implementation, so
//! this crate provides a from-scratch partitioner with the same interface
//! contract:
//!
//! * [`Graph`] — weighted undirected graphs in CSR form, built from the
//!   adjacency lists produced by `nkg-mesh`;
//! * [`recursive_bisect`] — recursive bisection: BFS-grown (greedy graph
//!   growing) initial halves refined by Kernighan–Lin boundary swaps;
//! * [`PartitionQuality`] — balance and edge-cut metrics, plus the
//!   communication-volume summaries consumed by the Table-2 performance
//!   model.

pub mod graph;
pub mod kl;
pub mod quality;
pub mod recursive;

pub use graph::Graph;
pub use quality::PartitionQuality;
pub use recursive::{recursive_bisect, slab_partition};
