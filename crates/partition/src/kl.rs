//! Kernighan–Lin boundary refinement for bisections.

use crate::graph::Graph;

/// One KL refinement pass over a two-way partition (`side[v] ∈ {0,1}`).
///
/// Repeatedly moves the boundary vertex with the best gain (cut-weight
/// decrease) to the other side, subject to keeping the imbalance within
/// `max_imbalance` vertices of the target split, locking moved vertices.
/// The best prefix of the move sequence is kept (classic KL hill-climbing,
/// which can escape shallow local minima). Returns the cut improvement.
pub fn kl_refine(g: &Graph, side: &mut [usize], max_imbalance: usize, passes: usize) -> f64 {
    let n = g.num_verts();
    assert_eq!(side.len(), n);
    let start_cut = g.edge_cut(side);
    let mut current = start_cut;
    for _ in 0..passes {
        let before = current;
        current = kl_pass(g, side, max_imbalance, current);
        if current >= before - 1e-12 {
            break;
        }
    }
    start_cut - current
}

fn kl_pass(g: &Graph, side: &mut [usize], max_imbalance: usize, start_cut: f64) -> f64 {
    let n = g.num_verts();
    // External minus internal weight per vertex ("D value").
    let mut gain: Vec<f64> = (0..n)
        .map(|u| {
            let mut d = 0.0;
            for (v, w) in g.neighbors(u) {
                if side[v] != side[u] {
                    d += w;
                } else {
                    d -= w;
                }
            }
            d
        })
        .collect();
    let mut locked = vec![false; n];
    let mut count = [0usize; 2];
    for &s in side.iter() {
        count[s] += 1;
    }
    // Preserve the caller's split ratio (bisections may be intentionally
    // unequal for non-power-of-two part counts).
    let target0 = count[0];

    let mut seq: Vec<usize> = Vec::new();
    let mut cut = start_cut;
    let mut best_cut = start_cut;
    let mut best_len = 0usize;

    for _ in 0..n {
        // Pick the best movable vertex. Transient imbalance of
        // `max_imbalance + 1` is allowed mid-sequence (KL moves in pairs);
        // only prefixes satisfying the real constraint are accepted below.
        let mut best: Option<(usize, f64)> = None;
        for u in 0..n {
            if locked[u] {
                continue;
            }
            let from = side[u];
            let new_count0 = if from == 0 {
                count[0] - 1
            } else {
                count[0] + 1
            };
            if new_count0.abs_diff(target0) > max_imbalance + 1 {
                continue;
            }
            if best.is_none_or(|(_, bg)| gain[u] > bg) {
                best = Some((u, gain[u]));
            }
        }
        let Some((u, gu)) = best else { break };
        // Move u.
        let from = side[u];
        let to = 1 - from;
        side[u] = to;
        count[from] -= 1;
        count[to] += 1;
        locked[u] = true;
        cut -= gu;
        seq.push(u);
        // Update neighbor gains.
        for (v, w) in g.neighbors(u) {
            if side[v] == to {
                // v was external to u, now internal
                gain[v] -= 2.0 * w;
            } else {
                gain[v] += 2.0 * w;
            }
        }
        if cut < best_cut - 1e-12 && count[0].abs_diff(target0) <= max_imbalance {
            best_cut = cut;
            best_len = seq.len();
        }
    }
    // Roll back moves beyond the best prefix.
    for &u in seq.iter().skip(best_len) {
        side[u] = 1 - side[u];
    }
    best_cut
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refine_fixes_interleaved_path() {
        let g = Graph::path(8);
        // Worst-case interleaving has cut 7; optimal contiguous split has 1.
        let mut side = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let improvement = kl_refine(&g, &mut side, 0, 10);
        let cut = g.edge_cut(&side);
        assert!(cut <= 3.0, "cut after KL: {cut}");
        assert!(improvement > 0.0);
        // Balance maintained exactly.
        assert_eq!(side.iter().filter(|&&s| s == 0).count(), 4);
    }

    #[test]
    fn refine_respects_balance() {
        let g = Graph::grid2d(4, 4);
        let mut side: Vec<usize> = (0..16).map(|i| i % 2).collect();
        kl_refine(&g, &mut side, 1, 10);
        let zeros = side.iter().filter(|&&s| s == 0).count();
        assert!((7..=9).contains(&zeros), "zeros={zeros}");
    }

    #[test]
    fn optimal_split_untouched() {
        let g = Graph::path(6);
        let mut side = vec![0, 0, 0, 1, 1, 1];
        let improvement = kl_refine(&g, &mut side, 0, 5);
        assert_eq!(improvement, 0.0);
        assert_eq!(g.edge_cut(&side), 1.0);
    }

    #[test]
    fn weighted_edges_respected() {
        // Triangle-ish: heavy edge 0-1 must not be cut.
        let adj = vec![
            vec![(1, 10.0), (2, 1.0), (3, 1.0)],
            vec![(0, 10.0), (2, 1.0), (3, 1.0)],
            vec![(0, 1.0), (1, 1.0), (3, 1.0)],
            vec![(0, 1.0), (1, 1.0), (2, 1.0)],
        ];
        let g = Graph::from_adjacency(&adj);
        let mut side = vec![0, 1, 0, 1]; // cuts the heavy edge
        kl_refine(&g, &mut side, 0, 10);
        assert_eq!(side[0], side[1], "heavy edge should stay internal");
    }
}
