//! Recursive bisection (the `PartGraphRecursive` analogue).

use crate::graph::Graph;
use crate::kl::kl_refine;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Partition `g` into `nparts` parts by recursive bisection.
///
/// Each bisection grows a half greedily from a pseudo-peripheral seed
/// (breadth-first "graph growing", preferring the frontier vertex with the
/// largest connection weight into the grown set) and refines it with
/// Kernighan–Lin passes. Part sizes differ by at most one vertex at every
/// bisection level. Deterministic for a given `seed`.
pub fn recursive_bisect(g: &Graph, nparts: usize, seed: u64) -> Vec<usize> {
    assert!(nparts >= 1);
    let n = g.num_verts();
    let mut part = vec![0usize; n];
    if nparts == 1 || n == 0 {
        return part;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let all: Vec<usize> = (0..n).collect();
    bisect_rec(g, &all, 0, nparts, &mut part, &mut rng);
    part
}

fn bisect_rec(
    g: &Graph,
    verts: &[usize],
    first_part: usize,
    nparts: usize,
    part: &mut [usize],
    rng: &mut SmallRng,
) {
    if nparts == 1 {
        for &v in verts {
            part[v] = first_part;
        }
        return;
    }
    let left_parts = nparts / 2;
    let right_parts = nparts - left_parts;
    // Target: left gets (left_parts/nparts) of the vertices.
    let left_size = verts.len() * left_parts / nparts;
    let side = bisect(g, verts, left_size, rng);
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for (i, &v) in verts.iter().enumerate() {
        if side[i] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    bisect_rec(g, &left, first_part, left_parts, part, rng);
    bisect_rec(g, &right, first_part + left_parts, right_parts, part, rng);
}

/// Two-way split of an induced subgraph: `side[i] ∈ {0,1}` for `verts[i]`,
/// with exactly `left_size` vertices on side 0.
fn bisect(g: &Graph, verts: &[usize], left_size: usize, rng: &mut SmallRng) -> Vec<usize> {
    let n = verts.len();
    // Local index lookup.
    let mut local = std::collections::HashMap::with_capacity(n);
    for (i, &v) in verts.iter().enumerate() {
        local.insert(v, i);
    }
    // Build the induced subgraph once; KL runs on it directly.
    let adj: Vec<Vec<(usize, f64)>> = verts
        .iter()
        .map(|&v| {
            g.neighbors(v)
                .filter_map(|(u, w)| local.get(&u).map(|&lu| (lu, w)))
                .collect()
        })
        .collect();
    let sub = Graph::from_adjacency(&adj);

    // Greedy graph growing from a pseudo-peripheral vertex.
    let seed = pseudo_peripheral(&sub, rng.gen_range(0..n.max(1)));
    let mut in_left = vec![false; n];
    let mut conn = vec![0.0f64; n]; // connection weight into the grown set
    let mut grown = 0usize;
    let mut frontier: Vec<usize> = vec![seed];
    in_left[seed] = true;
    grown += 1;
    for (v, w) in sub.neighbors(seed) {
        conn[v] += w;
        frontier.push(v);
    }
    while grown < left_size {
        // Pick the unadded vertex with max connection; fall back to any
        // unadded vertex if the frontier emptied (disconnected graph).
        let next = frontier
            .iter()
            .copied()
            .filter(|&v| !in_left[v])
            .max_by(|&a, &b| conn[a].partial_cmp(&conn[b]).unwrap())
            .or_else(|| (0..n).find(|&v| !in_left[v]));
        let Some(u) = next else { break };
        in_left[u] = true;
        grown += 1;
        for (v, w) in sub.neighbors(u) {
            if !in_left[v] {
                if conn[v] == 0.0 {
                    frontier.push(v);
                }
                conn[v] += w;
            }
        }
        frontier.retain(|&v| !in_left[v]);
    }
    let mut side: Vec<usize> = in_left.iter().map(|&b| usize::from(!b)).collect();
    // Allow one vertex of slack during refinement when the split is odd.
    let slack = usize::from(n % 2 == 1 || left_size * 2 != n);
    kl_refine(&sub, &mut side, slack, 8);
    // KL with slack may drift the count by `slack`; restore the exact size
    // by moving the cheapest boundary vertices back.
    rebalance(&sub, &mut side, n - left_size);
    side
}

/// Move vertices between sides until side 1 holds exactly `target_right`,
/// choosing lowest-cut-increase vertices.
fn rebalance(g: &Graph, side: &mut [usize], target_right: usize) {
    loop {
        let right = side.iter().filter(|&&s| s == 1).count();
        if right == target_right {
            return;
        }
        let (from, _to) = if right > target_right { (1, 0) } else { (0, 1) };
        // Gain of moving u out of `from`: external - internal weight.
        let mut best: Option<(usize, f64)> = None;
        for u in 0..g.num_verts() {
            if side[u] != from {
                continue;
            }
            let mut gain = 0.0;
            for (v, w) in g.neighbors(u) {
                if side[v] != side[u] {
                    gain += w;
                } else {
                    gain -= w;
                }
            }
            if best.is_none_or(|(_, bg)| gain > bg) {
                best = Some((u, gain));
            }
        }
        let Some((u, _)) = best else { return };
        side[u] = 1 - side[u];
    }
}

/// Approximate pseudo-peripheral vertex: repeated BFS to the farthest vertex.
fn pseudo_peripheral(g: &Graph, start: usize) -> usize {
    let mut cur = start.min(g.num_verts().saturating_sub(1));
    for _ in 0..3 {
        let far = bfs_farthest(g, cur);
        if far == cur {
            break;
        }
        cur = far;
    }
    cur
}

fn bfs_farthest(g: &Graph, start: usize) -> usize {
    let n = g.num_verts();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut last = start;
    while let Some(u) = queue.pop_front() {
        last = u;
        for (v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    last
}

/// Naive slab partitioning (vertices in index order, equal chunks) — the
/// baseline the quality tests compare against.
pub fn slab_partition(n: usize, nparts: usize) -> Vec<usize> {
    assert!(nparts >= 1);
    (0..n)
        .map(|i| (i * nparts / n.max(1)).min(nparts - 1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;

    #[test]
    fn bisection_of_grid_is_balanced_and_cheap() {
        let g = Graph::grid2d(8, 8);
        let part = recursive_bisect(&g, 2, 1);
        let q = PartitionQuality::measure(&g, &part, 2);
        assert!(q.imbalance() <= 0.05, "imbalance {}", q.imbalance());
        // Optimal cut of an 8x8 grid bisection is 8.
        assert!(q.edge_cut <= 12.0, "cut {}", q.edge_cut);
    }

    #[test]
    fn four_way_partition_sizes() {
        let g = Graph::grid2d(10, 10);
        let part = recursive_bisect(&g, 4, 7);
        let mut counts = [0usize; 4];
        for &p in &part {
            counts[p] += 1;
        }
        for c in counts {
            assert_eq!(c, 25);
        }
    }

    #[test]
    fn nonpow2_parts() {
        let g = Graph::grid2d(9, 7);
        let part = recursive_bisect(&g, 3, 3);
        let mut counts = [0usize; 3];
        for &p in &part {
            counts[p] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 63);
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(mx - mn <= 2, "{counts:?}");
    }

    #[test]
    fn beats_random_partition() {
        let g = Graph::grid2d(12, 12);
        let part = recursive_bisect(&g, 8, 5);
        let cut = g.edge_cut(&part);
        // Interleaved assignment cuts nearly every edge.
        let bad: Vec<usize> = (0..144).map(|i| i % 8).collect();
        assert!(cut < g.edge_cut(&bad) / 2.0);
    }

    #[test]
    fn deterministic_with_seed() {
        let g = Graph::grid2d(6, 6);
        assert_eq!(recursive_bisect(&g, 4, 9), recursive_bisect(&g, 4, 9));
    }

    #[test]
    fn single_part_trivial() {
        let g = Graph::path(5);
        assert_eq!(recursive_bisect(&g, 1, 0), vec![0; 5]);
    }

    #[test]
    fn slab_balanced() {
        let p = slab_partition(10, 3);
        let counts = [
            p.iter().filter(|&&x| x == 0).count(),
            p.iter().filter(|&&x| x == 1).count(),
            p.iter().filter(|&&x| x == 2).count(),
        ];
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn disconnected_graph_handled() {
        // Two disjoint paths.
        let adj = vec![
            vec![(1, 1.0)],
            vec![(0, 1.0)],
            vec![(3, 1.0)],
            vec![(2, 1.0)],
        ];
        let g = Graph::from_adjacency(&adj);
        let part = recursive_bisect(&g, 2, 0);
        let zeros = part.iter().filter(|&&p| p == 0).count();
        assert_eq!(zeros, 2);
    }
}
