//! `nkg-artifact` — content-addressed cache for immutable setup artifacts.
//!
//! The paper's MCI workload is ensembles: many parameterized runs over the
//! *same* geometry and discretization, differing only in inflow waveform,
//! hematocrit and seed. Setup products — GLL quadrature/basis tables,
//! low-energy preconditioner block factorizations, the assembled coarse
//! vertex solve, interpolation tables — are pure functions of
//! (mesh bytes, P, Dirichlet mask, shift λ, interface endpoints), so
//! rebuilding them per run is pure waste. This crate provides the shared
//! substrate:
//!
//! * [`ArtifactKey`] / [`KeyHasher`] — a canonical 128-bit content hash of
//!   the producing configuration (every `f64` enters through its exact bit
//!   pattern, so the key is as bitwise as the artifacts it names);
//! * [`ArtifactCache`] — a thread-safe map from `(kind, key)` to an
//!   `Arc`-shared immutable entry, with build-once deduplication (two
//!   concurrent builders of the same key produce one entry; the loser
//!   waits on a condvar and receives the winner's `Arc`);
//! * an optional on-disk tier reusing `nkg-ckpt`'s CRC'd `NKGC` container
//!   for cross-process reuse — any read failure (missing file, torn write,
//!   CRC mismatch, schema skew) silently falls back to a cold build;
//! * per-kind hit/miss/disk-hit/bytes/build-time counters
//!   ([`KindStats`]), so `bench_serve` can report exactly what the cache
//!   bought.
//!
//! Entries are **immutable**: once `Ready`, a slot is never replaced or
//! mutated, only `Arc`-cloned out. By default there is no eviction — an
//! ensemble's working set is a handful of factorizations, and the cache
//! lives only as long as its owner (drop the `ArtifactCache` to free
//! everything). A serving fleet multiplexing *many distinct
//! discretizations* over one machine can bound the memory tier with
//! [`ArtifactCache::with_capacity_bytes`]: inserts then evict
//! least-recently-used entries (never the one just inserted), per-kind
//! eviction counters tick, and evicted disk-tier kinds are re-served from
//! disk. Under a capacity bound, *scheduling order* decides the hit rate —
//! which is exactly the lever the ensemble scheduler's cache-affinity
//! admission pulls (DESIGN.md §18).
//!
//! The headline contract mirrors the rest of the workspace: a cache-hit
//! artifact is **bitwise identical** to the cold-built one. That holds
//! trivially for memory hits (same object) and is enforced for disk hits
//! by the bit-exact `f64` codec plus golden-hash tests upstream.
//!
//! Consumers thread the cache through existing constructors via an
//! *ambient* reference ([`with_cache`] / [`cached`]) rather than new
//! parameters: setup code runs on the calling thread in this workspace, so
//! a thread-local stack suffices, and code outside any `with_cache` scope
//! (or under [`CacheMode::Off`]) cold-builds exactly as before — the test
//! baseline is unchanged.

use nkg_ckpt::{tag4, SnapshotFile, SnapshotWriter};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Canonical 128-bit content address of a producing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey(pub [u64; 2]);

impl ArtifactKey {
    /// Lower-case hex rendering, stable across runs — used for disk-tier
    /// file names and golden hashes in benches.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// The key's leading 64-bit lane — the **affinity prefix** the
    /// ensemble scheduler groups jobs by. Jobs whose setup flows from the
    /// same configuration words share this prefix for every artifact kind
    /// they request, so co-scheduling equal-prefix jobs maximizes the
    /// cache-warm window (DESIGN.md §18).
    pub fn prefix64(&self) -> u64 {
        self.0[0]
    }
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
const LANE_B: u64 = 0xD134_2543_DE82_EF95;

/// splitmix64 finalizer: the workspace-standard bit mixer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Streaming hasher producing an [`ArtifactKey`]: two independently mixed
/// 64-bit lanes over a word stream. Every absorbed value is length- and
/// order-sensitive; floats enter through their exact IEEE bit pattern.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
    n: u64,
}

impl KeyHasher {
    /// Start a hash in a named domain (e.g. `"precon"`), so identical
    /// payloads under different kinds can never collide.
    pub fn new(domain: &str) -> Self {
        let mut h = Self {
            a: GOLDEN,
            b: LANE_B,
            n: 0,
        };
        h.str(domain);
        h
    }

    fn word(&mut self, w: u64) {
        self.n = self.n.wrapping_add(1);
        self.a = mix(self.a.wrapping_add(GOLDEN) ^ w);
        self.b = mix(self.b ^ w.wrapping_mul(LANE_B).wrapping_add(self.n));
    }

    /// Absorb one `u64`.
    pub fn u64(&mut self, v: u64) {
        self.word(v);
    }

    /// Absorb one `usize` (widened to `u64`).
    pub fn usize(&mut self, v: usize) {
        self.word(v as u64);
    }

    /// Absorb one boolean.
    pub fn bool(&mut self, v: bool) {
        self.word(v as u64);
    }

    /// Absorb one `f64` through its exact bit pattern (`-0.0` and `0.0`
    /// hash differently, as do NaN payloads — the key is bitwise).
    pub fn f64(&mut self, v: f64) {
        self.word(v.to_bits());
    }

    /// Absorb a byte string: length word, then 8-byte little-endian words
    /// (zero-padded tail; unambiguous because the length came first).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut pad = [0u8; 8];
            pad[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(pad));
        }
    }

    /// Absorb a UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Absorb a slice of `u64`s (length-prefixed).
    pub fn u64s(&mut self, vs: &[u64]) {
        self.word(vs.len() as u64);
        for &v in vs {
            self.word(v);
        }
    }

    /// Absorb a slice of `usize`s (length-prefixed).
    pub fn usizes(&mut self, vs: &[usize]) {
        self.word(vs.len() as u64);
        for &v in vs {
            self.word(v as u64);
        }
    }

    /// Absorb a slice of `f64`s bitwise (length-prefixed).
    pub fn f64s(&mut self, vs: &[f64]) {
        self.word(vs.len() as u64);
        for &v in vs {
            self.word(v.to_bits());
        }
    }

    /// Absorb another key (e.g. a space fingerprint feeding a
    /// preconditioner key).
    pub fn key(&mut self, k: ArtifactKey) {
        self.word(k.0[0]);
        self.word(k.0[1]);
    }

    /// Finalize into a key.
    pub fn finish(self) -> ArtifactKey {
        let a = mix(self.a ^ self.n);
        let b = mix(self.b ^ self.n.rotate_left(32) ^ a);
        ArtifactKey([a, b])
    }
}

/// Where (and whether) artifacts are cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Never store anything; every request cold-builds. Counters still
    /// tick, so the cold baseline is measurable. This is the test
    /// baseline mode.
    Off,
    /// In-process memory tier only: `Arc`-shared entries, build-once
    /// deduplication across threads.
    Process,
    /// Memory tier plus a CRC'd on-disk tier for cross-process reuse.
    Disk,
}

/// A value the cache can hold. Implementors are immutable setup products;
/// `encode`/`decode` opt a kind into the on-disk tier (defaulting to
/// memory-only) and must round-trip *bitwise* — use `nkg_ckpt::{Enc,Dec}`,
/// whose `f64` mapping is the exact bit image.
pub trait Artifact: Send + Sync + 'static {
    /// Approximate resident size, for the `bytes` counter.
    fn approx_bytes(&self) -> usize;

    /// Serialize for the disk tier; `None` keeps the kind memory-only.
    fn encode(&self) -> Option<Vec<u8>> {
        None
    }

    /// Deserialize a disk-tier payload; `None` (schema skew, truncation)
    /// falls back to a cold build.
    fn decode(bytes: &[u8]) -> Option<Self>
    where
        Self: Sized,
    {
        let _ = bytes;
        None
    }
}

/// Per-kind cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Memory-tier hits (the `Arc` was already resident).
    pub hits: u64,
    /// Cold builds (including every request under [`CacheMode::Off`]).
    pub misses: u64,
    /// Disk-tier hits (decoded from the container instead of built).
    pub disk_hits: u64,
    /// Resident bytes attributed to this kind (counted once per build or
    /// disk load, not per hit).
    pub bytes: u64,
    /// Nanoseconds spent in cold builds.
    pub build_ns: u64,
    /// Entries of this kind evicted by the LRU capacity bound (see
    /// [`ArtifactCache::with_capacity_bytes`]); 0 on unbounded caches.
    pub evictions: u64,
}

impl KindStats {
    /// Fraction of requests served without a cold build.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }

    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, o: &KindStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.disk_hits += o.disk_hits;
        self.bytes += o.bytes;
        self.build_ns += o.build_ns;
        self.evictions += o.evictions;
    }
}

enum Slot {
    /// Some thread owns the (unlocked) build; waiters park on the condvar.
    Building,
    /// An immutable resident entry. `tick` is the logical time of its last
    /// touch (insert or hit) — the LRU axis when a capacity bound is set.
    Ready {
        val: Arc<dyn Any + Send + Sync>,
        bytes: u64,
        tick: u64,
    },
}

struct Inner {
    map: HashMap<(&'static str, ArtifactKey), Slot>,
    stats: BTreeMap<&'static str, KindStats>,
    /// Logical clock: bumps on every touch, so LRU order is total.
    tick: u64,
    /// Bytes of `Ready` entries currently resident.
    resident: u64,
}

/// Content-addressed, thread-safe cache of immutable setup artifacts.
pub struct ArtifactCache {
    mode: CacheMode,
    dir: Option<PathBuf>,
    /// `None` = unbounded (the default — an ensemble's working set is
    /// normally a handful of factorizations). `Some(b)` = evict
    /// least-recently-used `Ready` entries once resident bytes exceed `b`.
    capacity: Option<u64>,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("mode", &self.mode)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

/// Removes the `Building` slot (and wakes waiters) if the builder panics,
/// so a poisoned key does not deadlock every later requester.
struct BuildGuard<'a> {
    cache: &'a ArtifactCache,
    id: Option<(&'static str, ArtifactKey)>,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            let mut g = self.cache.inner.lock().unwrap();
            g.map.remove(&id);
            drop(g);
            self.cache.cv.notify_all();
        }
    }
}

impl ArtifactCache {
    /// A cache with no disk tier. [`CacheMode::Disk`] without a directory
    /// behaves as [`CacheMode::Process`]; use [`ArtifactCache::on_disk`]
    /// for the two-tier cache.
    pub fn new(mode: CacheMode) -> Self {
        Self {
            mode,
            dir: None,
            capacity: None,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stats: BTreeMap::new(),
                tick: 0,
                resident: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// A two-tier cache persisting encodable kinds under `dir` as
    /// `<kind>-<key hex>.nkga` files in `nkg-ckpt`'s CRC'd container.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        let mut c = Self::new(CacheMode::Disk);
        c.dir = Some(dir.into());
        c
    }

    /// Bound the memory tier to roughly `max_bytes` of resident artifacts
    /// (by each artifact's `approx_bytes`). When an insert pushes the
    /// resident total past the bound, least-recently-used `Ready` entries
    /// are dropped (the newest entry itself is never evicted, so a single
    /// oversized artifact still serves its own job). Outstanding `Arc`s
    /// keep working — eviction only forgets the map entry; entries with a
    /// disk tier are re-served from disk after eviction. This is the
    /// capacity pressure that makes scheduling order matter: see the
    /// cache-affinity admission policy in `nkg-coupling::ensemble`.
    pub fn with_capacity_bytes(mut self, max_bytes: u64) -> Self {
        self.capacity = Some(max_bytes);
        self
    }

    /// The configured mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The configured capacity bound, if any.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity
    }

    /// Bytes of `Ready` entries currently resident in the memory tier.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().unwrap().resident
    }

    /// Disk-tier path for one entry.
    fn disk_path(&self, kind: &str, key: ArtifactKey) -> Option<PathBuf> {
        if self.mode != CacheMode::Disk {
            return None;
        }
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{kind}-{}.nkga", key.hex())))
    }

    /// Fetch the artifact for `(kind, key)`, building it with `build` on a
    /// miss. Exactly one builder runs per key even under concurrent
    /// requests; everyone receives the same `Arc`. Under
    /// [`CacheMode::Off`] the build always runs and nothing is stored —
    /// counters still tick so the cold baseline is measurable.
    ///
    /// Panics if `kind` was previously used with a different concrete
    /// type: a kind names one artifact type, forever.
    pub fn get_or_build<T: Artifact>(
        &self,
        kind: &'static str,
        key: ArtifactKey,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        if self.mode == CacheMode::Off {
            let t0 = Instant::now();
            let v = build();
            let dt = t0.elapsed().as_nanos() as u64;
            let nbytes = v.approx_bytes() as u64;
            let mut g = self.inner.lock().unwrap();
            let s = g.stats.entry(kind).or_default();
            s.misses += 1;
            s.bytes += nbytes;
            s.build_ns += dt;
            return Arc::new(v);
        }

        let id = (kind, key);
        let mut g = self.inner.lock().unwrap();
        loop {
            g.tick += 1;
            let now = g.tick;
            match g.map.get_mut(&id) {
                Some(Slot::Ready { val, tick, .. }) => {
                    *tick = now;
                    let a = val.clone();
                    g.stats.entry(kind).or_default().hits += 1;
                    drop(g);
                    return a
                        .downcast::<T>()
                        .unwrap_or_else(|_| panic!("artifact kind {kind:?} used with two types"));
                }
                Some(Slot::Building) => {
                    g = self.cv.wait(g).unwrap();
                }
                None => {
                    g.map.insert(id, Slot::Building);
                    break;
                }
            }
        }
        drop(g);

        // Sole builder for this key from here on; the guard cleans up the
        // Building slot if the build panics.
        let mut guard = BuildGuard {
            cache: self,
            id: Some(id),
        };

        let (value, from_disk, build_ns) = match self.try_disk::<T>(kind, key) {
            Some(v) => (v, true, 0u64),
            None => {
                let t0 = Instant::now();
                let v = build();
                (v, false, t0.elapsed().as_nanos() as u64)
            }
        };
        let nbytes = value.approx_bytes() as u64;
        if !from_disk {
            self.write_disk(kind, key, &value);
        }

        let arc = Arc::new(value);
        let any: Arc<dyn Any + Send + Sync> = arc.clone();
        let mut g = self.inner.lock().unwrap();
        let s = g.stats.entry(kind).or_default();
        if from_disk {
            s.disk_hits += 1;
        } else {
            s.misses += 1;
            s.build_ns += build_ns;
        }
        s.bytes += nbytes;
        g.tick += 1;
        let now = g.tick;
        g.map.insert(
            id,
            Slot::Ready {
                val: any,
                bytes: nbytes,
                tick: now,
            },
        );
        g.resident += nbytes;
        self.evict_to_capacity(&mut g, now);
        guard.id = None;
        drop(g);
        self.cv.notify_all();
        arc
    }

    /// Drop least-recently-used `Ready` entries until the resident total
    /// fits the capacity bound. The entry touched at `keep_tick` (the one
    /// just inserted or hit) is never evicted, and `Building` slots are
    /// untouched — their builder still owns them.
    fn evict_to_capacity(&self, g: &mut Inner, keep_tick: u64) {
        let Some(cap) = self.capacity else {
            return;
        };
        while g.resident > cap {
            let victim = g
                .map
                .iter()
                .filter_map(|(id, slot)| match slot {
                    Slot::Ready { tick, bytes, .. } if *tick != keep_tick => {
                        Some((*tick, *id, *bytes))
                    }
                    _ => None,
                })
                .min_by_key(|&(tick, ..)| tick);
            let Some((_, id, bytes)) = victim else {
                return; // only the protected entry (and builders) remain
            };
            g.map.remove(&id);
            g.resident -= bytes;
            g.stats.entry(id.0).or_default().evictions += 1;
        }
    }

    /// Try the disk tier. Any failure — absent file, bad magic, CRC
    /// mismatch, key collision, decode skew — yields `None` and the entry
    /// is rebuilt cold.
    fn try_disk<T: Artifact>(&self, kind: &str, key: ArtifactKey) -> Option<T> {
        let path = self.disk_path(kind, key)?;
        let file = SnapshotFile::read_from(&path).ok()?;
        if file.payload(tag4(b"AKND")).ok()? != kind.as_bytes() {
            return None;
        }
        let mut kb = Vec::with_capacity(16);
        kb.extend_from_slice(&key.0[0].to_le_bytes());
        kb.extend_from_slice(&key.0[1].to_le_bytes());
        if file.payload(tag4(b"AKEY")).ok()? != kb.as_slice() {
            return None;
        }
        T::decode(file.payload(tag4(b"ABDY")).ok()?)
    }

    /// Best-effort disk-tier write: memory-only kinds and I/O failures are
    /// silently skipped (the cache still serves from memory).
    fn write_disk<T: Artifact>(&self, kind: &str, key: ArtifactKey, value: &T) {
        let Some(path) = self.disk_path(kind, key) else {
            return;
        };
        let Some(body) = value.encode() else {
            return;
        };
        if let Some(parent) = path.parent() {
            if std::fs::create_dir_all(parent).is_err() {
                return;
            }
        }
        let mut w = SnapshotWriter::new();
        w.add(tag4(b"AKND"), kind.as_bytes().to_vec());
        let mut kb = Vec::with_capacity(16);
        kb.extend_from_slice(&key.0[0].to_le_bytes());
        kb.extend_from_slice(&key.0[1].to_le_bytes());
        w.add(tag4(b"AKEY"), kb);
        w.add(tag4(b"ABDY"), body);
        let _ = w.write_atomic(&path);
    }

    /// Per-kind counters, sorted by kind name.
    pub fn stats(&self) -> Vec<(&'static str, KindStats)> {
        let g = self.inner.lock().unwrap();
        g.stats.iter().map(|(k, s)| (*k, *s)).collect()
    }

    /// Counters summed over all kinds.
    pub fn totals(&self) -> KindStats {
        let mut t = KindStats::default();
        for (_, s) in self.stats() {
            t.merge(&s);
        }
        t
    }

    /// Number of resident entries (memory tier).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<Arc<ArtifactCache>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `cache` installed as this thread's ambient artifact cache.
/// Nests (innermost wins) and unwinds correctly on panic. Setup code in
/// this workspace constructs on the calling thread, so the thread-local
/// scope covers every `cached` call `f` makes directly.
pub fn with_cache<R>(cache: &Arc<ArtifactCache>, f: impl FnOnce() -> R) -> R {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            AMBIENT.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|s| s.borrow_mut().push(cache.clone()));
    let _pop = Pop;
    f()
}

/// The innermost ambient cache installed by [`with_cache`], if any.
pub fn ambient() -> Option<Arc<ArtifactCache>> {
    AMBIENT.with(|s| s.borrow().last().cloned())
}

/// Fetch-or-build through the ambient cache; with no ambient cache
/// installed this is exactly a cold build (zero overhead, zero storage) —
/// the drop-in form setup paths call.
pub fn cached<T: Artifact>(
    kind: &'static str,
    key: ArtifactKey,
    build: impl FnOnce() -> T,
) -> Arc<T> {
    match ambient() {
        Some(c) => c.get_or_build(kind, key, build),
        None => Arc::new(build()),
    }
}

/// Test artifact used below and by downstream crates' tests.
#[cfg(test)]
#[derive(Debug, Clone, PartialEq)]
struct Table {
    xs: Vec<f64>,
}

#[cfg(test)]
impl Artifact for Table {
    fn approx_bytes(&self) -> usize {
        self.xs.len() * 8
    }
    fn encode(&self) -> Option<Vec<u8>> {
        let mut e = nkg_ckpt::Enc::new();
        e.put_slice(&self.xs);
        Some(e.into_bytes())
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut d = nkg_ckpt::Dec::new(bytes);
        let xs = d.take_vec::<f64>().ok()?;
        d.finish().ok()?;
        Some(Table { xs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn key_of(n: u64) -> ArtifactKey {
        let mut h = KeyHasher::new("test");
        h.u64(n);
        h.finish()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nkg-artifact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn key_hasher_is_deterministic_and_order_sensitive() {
        let mut a = KeyHasher::new("d");
        a.u64(1);
        a.u64(2);
        let mut b = KeyHasher::new("d");
        b.u64(1);
        b.u64(2);
        assert_eq!(a.clone().finish(), b.finish());
        let mut c = KeyHasher::new("d");
        c.u64(2);
        c.u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn key_hasher_separates_domains_and_f64_bits() {
        let mut a = KeyHasher::new("gll");
        a.u64(7);
        let mut b = KeyHasher::new("precon");
        b.u64(7);
        assert_ne!(a.finish(), b.finish());
        // -0.0 and 0.0 are distinct configurations.
        let mut p = KeyHasher::new("d");
        p.f64(0.0);
        let mut q = KeyHasher::new("d");
        q.f64(-0.0);
        assert_ne!(p.finish(), q.finish());
    }

    #[test]
    fn bytes_padding_is_unambiguous() {
        let mut a = KeyHasher::new("d");
        a.bytes(b"abc");
        let mut b = KeyHasher::new("d");
        b.bytes(b"abc\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn process_mode_hits_share_one_arc() {
        let c = ArtifactCache::new(CacheMode::Process);
        let builds = AtomicUsize::new(0);
        let a = c.get_or_build("tab", key_of(1), || {
            builds.fetch_add(1, Ordering::SeqCst);
            Table { xs: vec![1.0, 2.0] }
        });
        let b = c.get_or_build("tab", key_of(1), || {
            builds.fetch_add(1, Ordering::SeqCst);
            Table { xs: vec![9.0] }
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        let s = c.totals();
        assert_eq!((s.hits, s.misses, s.bytes), (1, 1, 16));
        assert!(s.build_ns > 0);
        // A different key builds fresh.
        let d = c.get_or_build("tab", key_of(2), || Table { xs: vec![3.0] });
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn off_mode_always_cold_builds_but_counts() {
        let c = ArtifactCache::new(CacheMode::Off);
        let builds = AtomicUsize::new(0);
        for _ in 0..3 {
            let t = c.get_or_build("tab", key_of(1), || {
                builds.fetch_add(1, Ordering::SeqCst);
                Table { xs: vec![1.0] }
            });
            assert_eq!(t.xs, vec![1.0]);
        }
        assert_eq!(builds.load(Ordering::SeqCst), 3);
        let s = c.totals();
        assert_eq!((s.hits, s.misses), (0, 3));
        assert!(c.is_empty());
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_builders_of_same_key_produce_one_entry() {
        let c = Arc::new(ArtifactCache::new(CacheMode::Process));
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (c, builds, barrier) = (c.clone(), builds.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    c.get_or_build("tab", key_of(42), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really park.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Table {
                            xs: vec![1.0, 2.0, 3.0],
                        }
                    })
                })
            })
            .collect();
        let arcs: Vec<Arc<Table>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "duplicate factorization");
        for a in &arcs[1..] {
            assert!(Arc::ptr_eq(&arcs[0], a));
        }
        let s = c.totals();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn panicked_build_releases_the_slot() {
        let c = ArtifactCache::new(CacheMode::Process);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.get_or_build("tab", key_of(5), || -> Table { panic!("boom") })
        }));
        assert!(r.is_err());
        // The key is buildable again, not deadlocked.
        let t = c.get_or_build("tab", key_of(5), || Table { xs: vec![4.0] });
        assert_eq!(t.xs, vec![4.0]);
    }

    #[test]
    fn disk_tier_round_trips_bitwise_across_cache_instances() {
        let dir = tmp_dir("disk");
        let xs = vec![0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, -1e300];
        let c1 = ArtifactCache::on_disk(&dir);
        let a = c1.get_or_build("tab", key_of(9), || Table { xs: xs.clone() });
        assert_eq!(c1.totals().misses, 1);

        // A fresh cache (fresh process, conceptually) loads from disk.
        let c2 = ArtifactCache::on_disk(&dir);
        let b: Arc<Table> = c2.get_or_build("tab", key_of(9), || panic!("must not rebuild"));
        let s = c2.totals();
        assert_eq!((s.disk_hits, s.misses), (1, 0));
        assert!(s.hit_rate() > 0.0);
        for (x, y) in a.xs.iter().zip(&b.xs) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // Corrupt the file: the cache silently rebuilds.
        let path = dir.join(format!("tab-{}.nkga", key_of(9).hex()));
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let c3 = ArtifactCache::on_disk(&dir);
        let r = c3.get_or_build("tab", key_of(9), || Table { xs: vec![7.0] });
        assert_eq!(r.xs, vec![7.0]);
        assert_eq!(c3.totals().misses, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn capacity_bound_evicts_lru_but_never_the_newest() {
        // Each Table below is 16 bytes; capacity fits two entries.
        let c = ArtifactCache::new(CacheMode::Process).with_capacity_bytes(32);
        let mk = |v: f64| Table { xs: vec![v, v] };
        c.get_or_build("tab", key_of(1), || mk(1.0));
        c.get_or_build("tab", key_of(2), || mk(2.0));
        assert_eq!(c.resident_bytes(), 32);
        // Touch key 1 so key 2 becomes the LRU victim.
        c.get_or_build("tab", key_of(1), || -> Table { panic!("must hit") });
        c.get_or_build("tab", key_of(3), || mk(3.0));
        assert_eq!(c.resident_bytes(), 32);
        assert_eq!(c.totals().evictions, 1);
        // Key 1 survived (hit), key 2 was evicted (rebuilds).
        c.get_or_build("tab", key_of(1), || -> Table {
            panic!("lru-protected entry lost")
        });
        let rebuilt = std::sync::atomic::AtomicUsize::new(0);
        c.get_or_build("tab", key_of(2), || {
            rebuilt.fetch_add(1, Ordering::SeqCst);
            mk(2.0)
        });
        assert_eq!(rebuilt.load(Ordering::SeqCst), 1);
        // An artifact bigger than the whole bound still serves its build
        // (the newest entry is never evicted by its own insert).
        let big = c.get_or_build("tab", key_of(9), || Table { xs: vec![0.0; 32] });
        assert_eq!(big.xs.len(), 32);
        assert!(c.totals().evictions >= 2, "{:?}", c.totals());
    }

    #[test]
    fn evicted_disk_tier_entry_is_reserved_from_disk() {
        let dir = tmp_dir("evict-disk");
        let c = ArtifactCache::on_disk(&dir).with_capacity_bytes(16);
        c.get_or_build("tab", key_of(1), || Table { xs: vec![1.0, 2.0] });
        // Second insert evicts the first from memory; its .nkga remains.
        c.get_or_build("tab", key_of(2), || Table { xs: vec![3.0, 4.0] });
        let back = c.get_or_build("tab", key_of(1), || -> Table {
            panic!("disk tier must serve")
        });
        assert_eq!(back.xs, vec![1.0, 2.0]);
        let t = c.totals();
        assert!(t.disk_hits >= 1, "{t:?}");
        assert!(t.evictions >= 1, "{t:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let c = ArtifactCache::new(CacheMode::Process);
        for i in 0..64 {
            c.get_or_build("tab", key_of(i), || Table { xs: vec![0.0; 64] });
        }
        assert_eq!(c.totals().evictions, 0);
        assert_eq!(c.len(), 64);
        assert_eq!(c.resident_bytes(), 64 * 64 * 8);
    }

    #[test]
    fn prefix64_is_the_leading_lane() {
        let k = key_of(7);
        assert_eq!(k.prefix64(), k.0[0]);
    }

    #[test]
    fn ambient_scopes_nest_and_unwind() {
        assert!(ambient().is_none());
        let outer = Arc::new(ArtifactCache::new(CacheMode::Process));
        let inner = Arc::new(ArtifactCache::new(CacheMode::Process));
        with_cache(&outer, || {
            let t = cached("tab", key_of(1), || Table { xs: vec![1.0] });
            assert_eq!(t.xs, vec![1.0]);
            with_cache(&inner, || {
                cached("tab", key_of(1), || Table { xs: vec![2.0] });
            });
            // Inner scope popped; outer still serves its own entry.
            let t2 = cached("tab", key_of(1), || panic!("outer should hit"));
            assert!(Arc::ptr_eq(&t, &t2));
        });
        assert!(ambient().is_none());
        assert_eq!(outer.totals().misses, 1);
        assert_eq!(inner.totals().misses, 1);
        // Without an ambient cache, `cached` is a plain cold build.
        let t = cached("tab", key_of(3), || Table { xs: vec![5.0] });
        assert_eq!(t.xs, vec![5.0]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Disk-tier codec round-trips arbitrary f64 bit patterns.
            #[test]
            fn codec_round_trip_is_bitwise(bits in proptest::collection::vec(0u64..u64::MAX, 0..64)) {
                let xs: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
                let t = Table { xs };
                let back = Table::decode(&t.encode().unwrap()).unwrap();
                prop_assert_eq!(t.xs.len(), back.xs.len());
                for (a, b) in t.xs.iter().zip(&back.xs) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }

            /// The streaming hasher never collides identical-prefix streams
            /// that differ in one absorbed word (smoke-level, not crypto).
            #[test]
            fn near_miss_streams_get_distinct_keys(
                ws in proptest::collection::vec(0u64..u64::MAX, 1..16),
                flip in 1u64..u64::MAX,
            ) {
                let mut a = KeyHasher::new("p");
                let mut b = KeyHasher::new("p");
                for (i, &w) in ws.iter().enumerate() {
                    a.u64(w);
                    b.u64(if i == ws.len() - 1 { w ^ flip } else { w });
                }
                prop_assert_ne!(a.finish(), b.finish());
            }
        }
    }
}
