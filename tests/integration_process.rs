//! Multi-process integration suite: real OS processes, real sockets.
//!
//! Each test launches `nkg-rank` workers with `Universe::spawn_processes`
//! and asserts the transport-boundary guarantees the thread backends
//! already prove: collectives complete, scripted kills land at the exact
//! post, and — hardest of all — ranks that die *before ever speaking*
//! (panic before first post, crash before connecting) are still reported
//! dead to their blocked peers instead of hanging the run.

use nektarg::mci::{Backend, FaultPlan, ProcessOptions, Universe};
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_nkg-rank"))
}

fn opts(program: &str, env: Vec<(String, String)>) -> ProcessOptions {
    ProcessOptions {
        worker: worker_bin(),
        program: program.to_string(),
        env,
    }
}

fn universe(n: usize, backend: Backend) -> Universe {
    Universe::new(n)
        .with_backend(backend)
        .with_recv_timeout(Duration::from_secs(60))
}

/// Three processes allreduce their ranks over a Unix socket.
#[test]
fn ring_allreduce_across_three_processes() {
    let u = universe(3, Backend::Uds);
    let run = u.spawn_processes(&opts("ring", vec![]));
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    assert!(run.dead.is_empty());
    for rank in 0..3 {
        let r = run.results[rank].as_ref().expect("rank completed");
        assert_eq!(r[0], 3.0, "sum of ranks 0+1+2");
        assert_eq!(r[1], rank as f64);
    }
    assert!(run.stats.messages > 0, "collectives route real messages");
}

/// Same program over TCP loopback: identical results, different wire.
#[test]
fn ring_allreduce_over_tcp() {
    let u = universe(3, Backend::Tcp);
    let run = u.spawn_processes(&opts("ring", vec![]));
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    for rank in 0..3 {
        assert_eq!(run.results[rank].as_ref().unwrap()[0], 3.0);
    }
}

/// The launcher's topology placement reaches each rank's compute pool:
/// by default every worker runs with the placed width (host cores ÷
/// ranks, at least 1); an explicit `NKG_POOL_WIDTH` in the caller's env
/// overrides the placement and pins the rayon pool to that width.
#[test]
fn pool_width_placement_reaches_workers() {
    let u = universe(2, Backend::Uds);
    let run = u.spawn_processes(&opts("pool_width", vec![]));
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let placed = (cores / 2).max(1) as f64;
    for rank in 0..2 {
        let r = run.results[rank].as_ref().expect("rank completed");
        assert_eq!(r[0], placed, "rank {rank} ignored the placed width");
    }

    let u = universe(2, Backend::Uds);
    let run = u.spawn_processes(&opts(
        "pool_width",
        vec![("NKG_POOL_WIDTH".into(), "3".into())],
    ));
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    for rank in 0..2 {
        let r = run.results[rank].as_ref().expect("rank completed");
        assert_eq!(r[0], 3.0, "rank {rank} ignored the NKG_POOL_WIDTH override");
    }
}

/// A rank that panics before its first post must still be reported dead:
/// its peer blocks on `recv_deadline` and must resolve to `PeerDead`
/// (returning 13.0), not time out.
#[test]
fn panic_before_first_post_unblocks_peers() {
    let u = universe(2, Backend::Uds);
    let run = u.spawn_processes(&opts(
        "panic_early",
        vec![("NKG_VICTIM".into(), "1".into())],
    ));
    assert_eq!(run.dead, vec![1]);
    assert_eq!(
        run.results[0].as_ref().expect("peer completed"),
        &vec![13.0],
        "peer resolved to PeerDead, not a timeout"
    );
    assert_eq!(
        run.failures.len(),
        1,
        "the panic is reported: {:?}",
        run.failures
    );
    assert_eq!(run.failures[0].0, 1);
}

/// Harder: the victim dies before it even *connects* — no Hello, no pump,
/// nothing on the wire. Only the launcher's exit watcher can see it; the
/// peer must still unblock promptly.
#[test]
fn crash_before_connect_unblocks_peers() {
    let u = universe(2, Backend::Uds);
    let run = u.spawn_processes(&opts(
        "panic_early",
        vec![
            ("NKG_VICTIM".into(), "1".into()),
            ("NKG_CRASH_BEFORE_CONNECT".into(), "1".into()),
        ],
    ));
    assert_eq!(run.dead, vec![1]);
    assert_eq!(run.results[0].as_ref().unwrap(), &vec![13.0]);
}

/// Scripted kill across a process boundary: the fault plan (judged at the
/// hub) kills rank 1 at its second post; the worker must exit with the
/// scripted-kill code (a *plan*, not a failure) and the survivor's count
/// shows exactly one delivered post.
#[test]
fn scripted_kill_maps_to_exit_code() {
    let u = universe(2, Backend::Uds).with_fault_plan(FaultPlan::new().kill_rank(1, 2));
    let run = u.spawn_processes(&opts("sender", vec![]));
    assert_eq!(run.dead, vec![1]);
    assert!(
        run.failures.is_empty(),
        "scripted kill is not a failure: {:?}",
        run.failures
    );
    assert_eq!(run.results[1], None);
    assert_eq!(
        run.results[0].as_ref().unwrap(),
        &vec![1.0],
        "exactly one post survived before the kill"
    );
    assert_eq!(run.fault_stats.sends_per_rank[1], 2);
}

/// The check.sh smoke scenario: two processes, one killed mid-run with a
/// hard abort (no unwinding, no goodbye), and the survivor completes by
/// holding the last received window value — failover semantics across a
/// real process death.
#[test]
fn survivor_holds_after_peer_abort() {
    let u = universe(2, Backend::Uds);
    let run = u.spawn_processes(&opts("survivor", vec![("NKG_VICTIM".into(), "1".into())]));
    assert_eq!(run.dead, vec![1]);
    assert_eq!(
        run.results[0].as_ref().expect("survivor completed"),
        &vec![1.0, 11.0, 11.0, 11.0, 11.0, 11.0, 4.0],
        "one good window, then held through four dead ones"
    );
}
