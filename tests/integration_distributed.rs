//! Cross-crate integration: the MCI runtime + topology models + graph
//! partitioner + distributed SEM solves, i.e. the parallel machinery of
//! NεκTαr-G running on the virtual machine.

use nektarg::coupling::dist::DistSpace2d;
use nektarg::mci::{Hierarchy, HierarchySpec, InterfaceLink, Universe};
use nektarg::mesh::quad::QuadMesh;
use nektarg::sem::space2d::Space2d;
use nektarg::topo::Torus3D;

#[test]
fn distributed_poisson_invariant_under_rank_count() {
    let pi = std::f64::consts::PI;
    let solve = |ranks: usize| -> Vec<f64> {
        let u = Universe::new(ranks);
        let mut per_rank = u.run(move |comm| {
            let mesh = QuadMesh::rectangle(4, 3, 0.0, 2.0, 0.0, 1.0);
            let space = Space2d::new(mesh, 5, false);
            let ds = DistSpace2d::new(&space, &comm, 5);
            let rhs =
                space.weak_rhs(move |x, y| pi * pi * 1.25 * (pi * x / 2.0).sin() * (pi * y).sin());
            let bnd = space.boundary_dofs(|_| true);
            let (x, _) = ds.solve_dirichlet(&comm, 0.0, &rhs, &bnd, 1e-12, 4000);
            // Return the owned portion, zeroed elsewhere, for global
            // reassembly in the test harness.
            let mut owned = vec![0.0; space.nglobal];
            for g in 0..space.nglobal {
                if ds.owned[g] {
                    owned[g] = x[g];
                }
            }
            owned
        });
        // Sum of owned portions = the full solution (ownership is disjoint).
        let mut total = per_rank.pop().unwrap();
        for v in per_rank {
            for (t, x) in total.iter_mut().zip(v) {
                *t += x;
            }
        }
        total
    };
    let serial = solve(1);
    for ranks in [2usize, 3, 5] {
        let parallel = solve(ranks);
        for (a, b) in serial.iter().zip(&parallel) {
            assert!(
                (a - b).abs() < 1e-7,
                "rank-count dependence: {a} vs {b} at {ranks} ranks"
            );
        }
    }
}

#[test]
fn hierarchy_over_modeled_torus_carries_interface_payloads() {
    // 2 racks on a modeled torus, one solver task per rack, three-step
    // exchange between interface L4 groups — Figs. 2-4 in one test.
    let torus = Torus3D::new([2, 1, 1], 4);
    Universe::new(8).run(move |world| {
        let node = torus.node_of_rank(world.rank());
        let spec = HierarchySpec {
            l2_color: torus.l2_color_of_node(node, [1, 1, 1]),
            l3_color: world.rank() / 4,
        };
        let h = Hierarchy::build(world, spec);
        assert_eq!(h.l2.size(), 4);
        assert_eq!(h.l3.size(), 4);
        // Interface members: ranks 2,3 of task 0 and 0,1 of task 1.
        let member =
            (spec.l3_color == 0 && h.l3.rank() >= 2) || (spec.l3_color == 1 && h.l3.rank() < 2);
        if let Some(l4) = h.derive_l4(member) {
            let peer_root = if spec.l3_color == 0 { 4 } else { 2 };
            let link = InterfaceLink::establish(&h.world, l4, peer_root, 17);
            let payload = vec![h.world.rank() as f64; 3];
            let got = link.exchange(&h.world, &payload, 3);
            assert_eq!(got.len(), 3);
            // Member k receives from the peer group's member k.
            let expect = if spec.l3_color == 0 {
                4.0 + link.l4.rank() as f64
            } else {
                2.0 + link.l4.rank() as f64
            };
            assert_eq!(got, vec![expect; 3]);
        }
    });
}

#[test]
fn traffic_counters_scale_with_interface_size() {
    let run_exchange = |members: usize| -> u64 {
        let u = Universe::new(2 * members);
        u.run(move |world| {
            let domain = world.rank() / members;
            let l3 = world.split(Some(domain), world.rank()).unwrap();
            let l4 = l3.split(Some(0), l3.rank()).unwrap();
            let peer_root = if domain == 0 { members } else { 0 };
            let link = InterfaceLink::new(l4, peer_root, 5);
            let mine = vec![1.0f64; 64];
            let _ = link.exchange(&world, &mine, 64);
        });
        u.stats().bytes
    };
    let small = run_exchange(2);
    let large = run_exchange(8);
    assert!(
        large > small,
        "more interface members must move more bytes: {small} vs {large}"
    );
}
