//! Fault-tolerant checkpoint/restart of the full coupled pipeline, driven
//! through the public umbrella API: periodic snapshots during a
//! metasolver run, scripted disasters (kill / corrupt / truncate), and
//! bitwise-identical recovery.

use nektarg::ckpt::{prev_path, CkptError, FaultPlan, Snapshot};
use nektarg::coupling::atomistic::{AtomisticDomain, Embedding};
use nektarg::coupling::metasolver::{CheckpointPolicy, ResumeSource, RunError};
use nektarg::coupling::multipatch::poiseuille_multipatch;
use nektarg::coupling::{NektarG, TimeProgression, UnitScaling};
use nektarg::dpd::inflow::OpenBoundaryX;
use nektarg::dpd::platelet::{PlateletParams, WallSites};
use nektarg::dpd::sim::{BinSampler, DpdConfig, DpdSim, WallGeometry};
use nektarg::dpd::Box3;
use nektarg::wpod::window::WindowPod;
use std::path::PathBuf;

/// The richest state the metasolver carries: platelet cascade active and
/// WPOD co-processing attached.
fn build_metasolver() -> NektarG {
    let (nu_ns, height) = (0.004, 1.0);
    let force = 8.0 * nu_ns * 0.1;
    let mut continuum = poiseuille_multipatch(6.0, height, 12, 2, 2, 4, nu_ns, force, 5e-3);
    for s in &mut continuum.patches {
        s.set_initial(
            move |_, y| force * y * (height - y) / (2.0 * nu_ns),
            |_, _| 0.0,
        );
    }
    let cfg = DpdConfig {
        seed: 3,
        ..Default::default()
    };
    let bx = Box3::new([0.0; 3], [8.0, 8.0, 4.0], [false, false, true]);
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
    sim.fill_solvent();
    sim.seed_platelets(0.08);
    sim.sites = WallSites::on_plane(30, 1, 0.0, [2.0, 0.0, 0.0], [6.0, 0.0, 4.0], 9);
    sim.platelet_params = PlateletParams {
        delay_steps: 30,
        trigger_dist: 0.8,
        ..Default::default()
    };
    let mut ob = OpenBoundaryX::new(4, 1, 3.0, 1.0, [0.0; 3], 0);
    ob.target_count = Some(sim.particles.len());
    sim.set_open_x(ob);
    let atom = AtomisticDomain::new(
        sim,
        Embedding {
            origin_ns: [2.6, 0.3],
            scaling: UnitScaling {
                unit_ns: 1.0,
                unit_dpd: 0.05,
                nu_ns,
                nu_dpd: 0.85,
            },
        },
    );
    NektarG::new(continuum, atom, TimeProgression::new(10, 5))
        .with_wpod(BinSampler::new(1, 8, 0, 10), WindowPod::new(10, 10, 2.0))
}

fn ckpt_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nkg_integration_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(prev_path(&path));
    path
}

/// The headline guarantee end to end: a coupled run (continuum + DPD +
/// platelets + WPOD) killed mid-flight and resumed from disk reproduces
/// the uninterrupted run's report and final state bitwise.
#[test]
fn killed_coupled_run_resumes_bitwise() {
    let path = ckpt_path("coupled_bitwise.nkgc");

    // Reference: 30 continuum steps uninterrupted (exchanges at 0..25 by 5).
    let mut reference = build_metasolver();
    let ref_report = reference.run(30);
    assert_eq!(ref_report.exchanges, 6);

    // Victim: checkpoint every 2 exchanges, killed after the 4th.
    let mut victim = build_metasolver();
    let policy = CheckpointPolicy::new(&path, 2);
    let err = victim
        .run_to(30, Some(&policy), Some(&FaultPlan::kill_after(4)))
        .unwrap_err();
    assert!(matches!(err, RunError::Killed { exchanges: 4, .. }));
    drop(victim);

    // Resume in a "new process": reconstruct from the same setup code,
    // load the snapshot, finish the run.
    let (mut resumed, source) = NektarG::resume_latest(build_metasolver, &path).unwrap();
    assert_eq!(source, ResumeSource::Primary);
    assert!(resumed.report.ns_steps < 30);
    let res_report = resumed.run_to(30, None, None).unwrap();

    assert_eq!(res_report, ref_report, "composed report diverged");
    let (a, b) = (
        &reference.atomistic.sim.particles,
        &resumed.atomistic.sim.particles,
    );
    assert_eq!(a.len(), b.len());
    for (p, q) in a.pos_aos().iter().zip(&b.pos_aos()) {
        for k in 0..3 {
            assert_eq!(p[k].to_bits(), q[k].to_bits(), "positions diverged");
        }
    }
    assert_eq!(a.state, b.state, "platelet states diverged");
    for (s1, s2) in reference
        .continuum
        .patches
        .iter()
        .zip(&resumed.continuum.patches)
    {
        for (x, y) in s1.u.iter().zip(&s2.u).chain(s1.v.iter().zip(&s2.v)) {
            assert_eq!(x.to_bits(), y.to_bits(), "continuum velocity diverged");
        }
        for (x, y) in s1.p.iter().zip(&s2.p) {
            assert_eq!(x.to_bits(), y.to_bits(), "continuum pressure diverged");
        }
    }
}

/// A corrupted freshest snapshot is rejected by CRC and recovery falls
/// back to the rotated previous generation — and the run still finishes
/// bitwise-identical.
#[test]
fn corrupted_section_recovers_from_previous_snapshot() {
    let path = ckpt_path("coupled_fallback.nkgc");

    let mut reference = build_metasolver();
    let ref_report = reference.run(30);

    // Checkpoints at exchanges 2 and 4 (two generations on disk), then
    // the freshest one is corrupted in its continuum section.
    let mut victim = build_metasolver();
    let policy = CheckpointPolicy::new(&path, 2);
    victim
        .run_to(30, Some(&policy), Some(&FaultPlan::kill_after(5)))
        .unwrap_err();
    nkg_ckpt_corrupt(&path);

    let (mut resumed, source) = NektarG::resume_latest(build_metasolver, &path).unwrap();
    assert_eq!(source, ResumeSource::Fallback);
    let res_report = resumed.run_to(30, None, None).unwrap();
    assert_eq!(res_report, ref_report, "fallback resume diverged");
}

fn nkg_ckpt_corrupt(path: &std::path::Path) {
    use nektarg::coupling::multipatch::Multipatch2d;
    nektarg::ckpt::fault::corrupt_section(path, Multipatch2d::TAG).unwrap();
    // The damage must be fatal for the primary.
    assert!(matches!(
        nektarg::ckpt::SnapshotFile::read_from(path),
        Err(CkptError::Corrupt { .. })
    ));
}

/// A truncating fault (torn write that escaped the atomic rename) on the
/// freshest snapshot likewise falls back to the previous generation.
#[test]
fn truncated_snapshot_recovers_from_previous_snapshot() {
    let path = ckpt_path("coupled_truncated.nkgc");

    let mut victim = build_metasolver();
    let policy = CheckpointPolicy::new(&path, 2);
    // Truncate every snapshot as it is written; kill after exchange 5.
    // The `.prev` rotation happens before each write, so the previous
    // generation was itself truncated — recovery must fail on both...
    let fault = FaultPlan {
        kill_after_exchange: Some(5),
        truncate_tail: Some(40),
        ..Default::default()
    };
    victim.run_to(30, Some(&policy), Some(&fault)).unwrap_err();
    assert!(matches!(
        NektarG::resume_latest(build_metasolver, &path),
        Err(CkptError::Truncated)
    ));

    // ...whereas when only the freshest write is torn, the previous
    // generation carries the run.
    let path = ckpt_path("coupled_truncated_once.nkgc");
    let mut victim = build_metasolver();
    let policy = CheckpointPolicy::new(&path, 2);
    victim
        .run_to(30, Some(&policy), Some(&FaultPlan::kill_after(5)))
        .unwrap_err();
    nektarg::ckpt::fault::truncate_tail(&path, 40).unwrap();
    let (resumed, source) = NektarG::resume_latest(build_metasolver, &path).unwrap();
    assert_eq!(source, ResumeSource::Fallback);
    assert_eq!(resumed.report.exchanges, 2);
}

/// Version skew: a snapshot stamped with a future format version is
/// refused outright with both versions named.
#[test]
fn version_mismatch_is_refused() {
    let path = ckpt_path("coupled_version.nkgc");
    let mut ng = build_metasolver();
    ng.run(5);
    ng.checkpoint(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = 99; // format version field (little-endian u32 at offset 4)
    std::fs::write(&path, &bytes).unwrap();
    match NektarG::resume(build_metasolver, &path) {
        Err(CkptError::Version { found, expected }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, nektarg::ckpt::FORMAT_VERSION);
        }
        Err(other) => panic!("expected version refusal, got {other:?}"),
        Ok(_) => panic!("version-skewed snapshot was accepted"),
    }
}

/// Resuming into a run built with a different DPD seed is a configuration
/// mismatch, not an integrity failure — no fallback, loud refusal.
#[test]
fn config_mismatch_does_not_fall_back() {
    let path = ckpt_path("coupled_mismatch.nkgc");
    let mut ng = build_metasolver();
    ng.run(5);
    ng.checkpoint(&path).unwrap();
    let other_seed = || {
        let mut ng = build_metasolver();
        ng.atomistic.sim.cfg.seed = 999;
        ng
    };
    assert!(matches!(
        NektarG::resume_latest(other_seed, &path),
        Err(CkptError::Mismatch(_))
    ));
}
