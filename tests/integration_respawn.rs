//! Supervised rank resurrection across real process boundaries.
//!
//! The headline guarantee (ISSUE 8 acceptance): a 4-process run — one
//! driver plus three shard workers, **zero standby replicas** — survives
//! two scripted mid-run worker deaths. The launcher's supervision policy
//! respawns each dead rank under its deterministic backoff schedule, the
//! respawn rejoins the universe with the next incarnation number, resumes
//! from its own rank-scoped checkpoint, replays forward, and re-exchanges
//! the missed window. The driver's final per-flow traces are **bitwise
//! identical** to the fault-free run.
//!
//! The suite also pins down the supervision edges: scripted kills (exit
//! 86) are a plan, never respawned; the restart budget is enforced and an
//! exhausted ladder is a typed `RunLost`, not a crash; and the replicated
//! (hot-standby) driver prefers restart-in-place over promotion when a
//! grace is configured.
//!
//! Run on a socket backend (`NKG_TRANSPORT=uds` is the check.sh leg; TCP
//! works too — in-proc and shm cannot host processes and fall back to
//! UDS here).

use nektarg::mci::{Backend, FaultPlan, ProcessOptions, ProcessRun, RestartPolicy, Universe};
use std::path::PathBuf;
use std::time::Duration;

const SHARDS: usize = 3;
const WINDOWS: usize = 3; // 12 continuum steps, exchange every 4

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_nkg-rank"))
}

/// The socket backend under test: whatever `NKG_TRANSPORT` names, with
/// the thread-only backends mapped to UDS (processes need a socket).
fn backend() -> Backend {
    match Backend::from_env() {
        Backend::Tcp => Backend::Tcp,
        _ => Backend::Uds,
    }
}

/// A fresh shared checkpoint base for one test, with any rank-scoped
/// generations from previous runs scrubbed.
fn ckpt_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nkg_respawn_integration");
    std::fs::create_dir_all(&dir).unwrap();
    for r in 0..SHARDS {
        let p = nektarg::ckpt::rank_path(&dir.join(format!("{tag}.nkgc")), r);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(nektarg::ckpt::prev_path(&p));
    }
    dir.join(format!("{tag}.nkgc"))
}

/// The suite's restart policy: tight backoff so tests stay fast, a fixed
/// jitter seed so every delay is exactly predictable.
fn policy() -> RestartPolicy {
    RestartPolicy {
        max_restarts: 2,
        base_backoff: Duration::from_millis(50),
        max_backoff: Duration::from_secs(1),
        jitter_seed: 7,
    }
}

/// Launch `program` on `1 + SHARDS` processes with the given scripted
/// deaths and (optionally) the supervision policy.
fn run_coupled(
    program: &str,
    tag: &str,
    die_at: &str,
    policy: Option<RestartPolicy>,
) -> ProcessRun {
    let mut env = vec![
        (
            "NKG_CKPT_BASE".to_string(),
            ckpt_base(tag).to_string_lossy().into_owned(),
        ),
        ("NKG_RESTART_GRACE_MS".to_string(), "20000".to_string()),
    ];
    if !die_at.is_empty() {
        env.push(("NKG_DIE_AT".to_string(), die_at.to_string()));
    }
    let mut u = Universe::new(1 + SHARDS)
        .with_backend(backend())
        .with_recv_timeout(Duration::from_secs(120));
    if let Some(p) = policy {
        u = u.with_restart_policy(p);
    }
    u.spawn_processes(&ProcessOptions {
        worker: worker_bin(),
        program: program.to_string(),
        env,
    })
}

/// Decode the sharded driver frame:
/// `[2, n_flows, windows, width, (n_events, lost)×flows, traces...]`.
/// Returns per-flow `(n_events, lost)` plus the flat trace block.
fn parse_sharded_driver(frame: &[f64]) -> (Vec<(usize, bool)>, Vec<f64>) {
    assert_eq!(frame[0], 2.0, "not a sharded driver frame");
    let flows = frame[1] as usize;
    let windows = frame[2] as usize;
    let width = frame[3] as usize;
    assert_eq!(flows, SHARDS);
    assert_eq!(windows, WINDOWS);
    let head = 4 + 2 * flows;
    let meta = (0..flows)
        .map(|f| (frame[4 + 2 * f] as usize, frame[5 + 2 * f] != 0.0))
        .collect();
    let traces = frame[head..].to_vec();
    assert_eq!(traces.len(), flows * windows * width);
    (meta, traces)
}

/// The acceptance run: two scripted mid-run deaths (shard 0 at window 2,
/// shard 2 at window 1), zero standby replicas, supervised respawn with
/// a seeded backoff. The run completes, both deaths are healed in place,
/// and the driver's traces are bitwise identical to the fault-free run.
#[test]
fn two_scripted_deaths_heal_bitwise_with_zero_standbys() {
    // Fault-free reference.
    let clean = run_coupled("coupled_restart", "restart_clean", "", Some(policy()));
    assert!(
        clean.failures.is_empty(),
        "clean run failed: {:?}",
        clean.failures
    );
    assert!(clean.dead.is_empty());
    assert!(
        clean.restarts.is_empty(),
        "clean run must not respawn anyone"
    );
    let (clean_meta, clean_traces) =
        parse_sharded_driver(clean.results[0].as_ref().expect("driver completed"));
    assert!(clean_meta.iter().all(|&(e, lost)| e == 0 && !lost));

    // Two kills: shard 0 dies after computing window 2, shard 2 after
    // window 1 — both before reporting, both in their first incarnation.
    let run = run_coupled(
        "coupled_restart",
        "restart_kill",
        "0:2:0,2:1:0",
        Some(policy()),
    );
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    assert!(
        run.dead.is_empty(),
        "both killed ranks must be resurrected: {:?}",
        run.dead
    );

    // The supervision log: exactly the two scripted deaths, respawned as
    // incarnation 1 each, after exactly the policy's deterministic delay.
    let mut restarts = run.restarts.clone();
    restarts.sort_by_key(|r| r.rank);
    assert_eq!(restarts.len(), 2, "restarts: {restarts:?}");
    assert_eq!(
        restarts.iter().map(|r| r.rank).collect::<Vec<_>>(),
        vec![1, 3],
        "world ranks of shards 0 and 2"
    );
    for r in &restarts {
        assert_eq!(r.incarnation, 1);
        assert_eq!(
            r.delay,
            policy().delay(r.rank, 1),
            "backoff must follow the seeded schedule exactly"
        );
    }

    // Driver view: the two wounded flows each record held → restart →
    // recovered (3 events); the untouched flow records nothing; no flow
    // was lost.
    let (meta, traces) = parse_sharded_driver(run.results[0].as_ref().unwrap());
    assert_eq!(
        meta.iter().map(|&(e, _)| e).collect::<Vec<_>>(),
        vec![3, 0, 3]
    );
    assert!(meta.iter().all(|&(_, lost)| !lost));

    // Bitwise: every flow's every window, against the fault-free run.
    assert_eq!(traces.len(), clean_traces.len());
    for (i, (a, b)) in traces.iter().zip(&clean_traces).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "driver trace diverged at flat index {i}"
        );
    }

    // Worker views: the resurrected shards each rejoined once and held
    // one window; nobody was promoted (zero failovers) and no snapshot
    // was corrupt.
    for (s, want_rejoins) in [(0usize, 1.0), (1, 0.0), (2, 1.0)] {
        let r = run.results[1 + s].as_ref().expect("worker completed");
        assert_eq!(r[0], 1.0);
        assert_eq!(r[1], want_rejoins, "shard {s} held windows");
        assert_eq!(r[2], 0.0, "shard {s} must never fail over");
        assert_eq!(r[3], want_rejoins, "shard {s} rejoin count");
        assert_eq!(r[4], 0.0, "shard {s} snapshot fallbacks");
    }
}

/// One shard dies twice (incarnations 0 and 1): the supervision log shows
/// the capped exponential backoff growing between attempts, bit-exactly
/// reproducing the seeded schedule, and the flow still ends exact.
#[test]
fn repeated_deaths_follow_the_seeded_backoff_schedule() {
    let run = run_coupled(
        "coupled_restart",
        "restart_backoff",
        "1:1:0,1:2:1",
        Some(policy()),
    );
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    assert!(run.dead.is_empty());
    let r = &run.restarts;
    assert_eq!(r.len(), 2, "restarts: {r:?}");
    assert!(
        r.iter().all(|e| e.rank == 2),
        "only shard 1 (world rank 2) dies"
    );
    assert_eq!(r[0].incarnation, 1);
    assert_eq!(r[1].incarnation, 2);
    assert_eq!(r[0].delay, policy().delay(2, 1));
    assert_eq!(r[1].delay, policy().delay(2, 2));
    assert!(
        r[1].delay >= 2 * policy().base_backoff,
        "second attempt must back off at least twice the base"
    );
    // The final incarnation rejoined once (its own view); the flow never
    // failed over and was not lost.
    let worker = run.results[2].as_ref().expect("shard 1 completed");
    assert_eq!(worker[3], 1.0, "incarnation 2 rejoined once");
    let (meta, _) = parse_sharded_driver(run.results[0].as_ref().unwrap());
    assert_eq!(meta[1].0, 6, "two held/restart/recovered triples");
    assert!(!meta[1].1);
}

/// A scripted kill (exit 86) is a *plan*, not a failure: the supervisor
/// must never respawn it even with a generous policy installed.
#[test]
fn scripted_kill_is_never_respawned() {
    let u = Universe::new(2)
        .with_backend(backend())
        .with_recv_timeout(Duration::from_secs(60))
        .with_fault_plan(FaultPlan::new().kill_rank(1, 2))
        .with_restart_policy(policy());
    let run = u.spawn_processes(&ProcessOptions {
        worker: worker_bin(),
        program: "sender".to_string(),
        env: vec![],
    });
    assert_eq!(run.dead, vec![1]);
    assert!(
        run.restarts.is_empty(),
        "scripted kills must not be resurrected: {:?}",
        run.restarts
    );
    assert!(run.failures.is_empty(), "a scripted kill is not a failure");
    assert_eq!(run.results[0].as_ref().unwrap(), &vec![1.0]);
}

/// Budget exhaustion bottoms the ladder out as a typed outcome: shard 0
/// dies in both of its allowed incarnations under a 1-restart budget, the
/// driver's grace expires with nobody to resurrect and nobody to promote
/// (zero standbys), and the flow is reported *lost* — padded trace, no
/// panic — while the other flows finish exact.
#[test]
fn exhausted_restart_budget_reports_run_lost() {
    let tight = RestartPolicy {
        max_restarts: 1,
        ..policy()
    };
    let env = vec![
        (
            "NKG_CKPT_BASE".to_string(),
            ckpt_base("restart_lost").to_string_lossy().into_owned(),
        ),
        // Short grace: the final death has no respawn coming, and the
        // driver should give the flow up quickly.
        ("NKG_RESTART_GRACE_MS".to_string(), "2000".to_string()),
        ("NKG_DIE_AT".to_string(), "0:1:0,0:2:1".to_string()),
    ];
    let u = Universe::new(1 + SHARDS)
        .with_backend(backend())
        .with_recv_timeout(Duration::from_secs(120))
        .with_restart_policy(tight);
    let run = u.spawn_processes(&ProcessOptions {
        worker: worker_bin(),
        program: "coupled_restart".to_string(),
        env,
    });

    // One respawn happened (incarnation 1), then the budget was spent.
    assert_eq!(run.restarts.len(), 1, "restarts: {:?}", run.restarts);
    assert_eq!(run.restarts[0].rank, 1);
    assert_eq!(run.restarts[0].incarnation, 1);
    // The rank's final incarnation died for real: reported dead + failed.
    assert_eq!(run.dead, vec![1]);
    assert_eq!(run.failures.len(), 1);
    assert_eq!(run.failures[0].0, 1);

    // The driver survived with a typed loss on flow 0 only, and every
    // trace is still full-length.
    let (meta, traces) = parse_sharded_driver(run.results[0].as_ref().unwrap());
    assert!(meta[0].1, "flow 0 must be reported lost");
    assert!(!meta[1].1 && !meta[2].1, "other flows stay exact");
    assert_eq!(traces.len() % (SHARDS * WINDOWS), 0);
}

/// The replicated (hot-standby) ladder prefers restart-in-place: with a
/// restart grace configured, a dead master is resumed in place and **no
/// standby is promoted** — `active_master` stays 0 and the trace is
/// bitwise identical to the fault-free replicated run.
#[test]
fn replicated_master_restarts_in_place_without_promotion() {
    let clean = run_coupled("coupled_failover", "replicated_clean", "", Some(policy()));
    assert!(clean.failures.is_empty(), "clean: {:?}", clean.failures);
    let clean_driver = clean.results[0].as_ref().expect("driver completed");
    assert_eq!(&clean_driver[..4], &[0.0, 3.0, 0.0, 0.0]);

    // Master (replica 0, world rank 1) dies after computing window 2.
    let run = run_coupled(
        "coupled_failover",
        "replicated_restart",
        "0:2:0",
        Some(policy()),
    );
    assert!(run.failures.is_empty(), "failures: {:?}", run.failures);
    assert!(run.dead.is_empty(), "the master must be resurrected");
    assert_eq!(run.restarts.len(), 1);
    assert_eq!(run.restarts[0].rank, 1);

    let driver = run.results[0].as_ref().unwrap();
    assert_eq!(driver[0], 0.0);
    assert_eq!(driver[1], 3.0, "three windows");
    assert_eq!(driver[2], 3.0, "held + restart-in-place + recovered");
    assert_eq!(driver[3], 0.0, "no promotion: replica 0 is still master");
    // Bitwise: the recovered trace equals the fault-free trace.
    assert_eq!(driver.len(), clean_driver.len());
    for (i, (a, b)) in driver[4..].iter().zip(&clean_driver[4..]).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "trace diverged at flat index {i}");
    }
    // The resurrected master held one window, never failed over.
    let master = run.results[1].as_ref().expect("master completed");
    assert_eq!(master, &vec![1.0, 1.0, 0.0]);
}
