//! Composed chaos: transport faults, a scripted process kill, and a
//! corrupted rank checkpoint in ONE replicated run (ISSUE 8 satellite).
//!
//! The scenario stacks every fault class the runtime knows:
//!
//! * a **dropped** status frame (master → driver, window 1) — degrades
//!   window 1 to a transient hold-last-value;
//! * a **scripted kill** of the master at its window-2 report — forces
//!   the failover rung (no supervision here: thread-mode ranks cannot
//!   respawn, so the ladder must promote);
//! * **duplicated** control frames on the driver → standby flow — must be
//!   bitwise invisible thanks to sequence dedup;
//! * a **pre-corrupted checkpoint** under the master's rank-scoped path
//!   (and a checkpoint cadence that never overwrites it) — the promoted
//!   replica's resume must fail, silently rebuild from scratch, and
//!   *report* the fallback.
//!
//! Asserted: the exact degradation-event sequence, the recovered windows
//! bitwise against a serial reference, and the promoted replica's physics
//! bitwise — identically on the in-proc and UDS transports.

use nektarg::coupling::atomistic::{AtomisticDomain, Embedding};
use nektarg::coupling::failover::{
    driver_outcome, replica_report, run_replicated, DegradationEvent, FailoverConfig,
};
use nektarg::coupling::metasolver::NektarG;
use nektarg::coupling::multipatch::poiseuille_multipatch;
use nektarg::coupling::{TimeProgression, UnitScaling};
use nektarg::dpd::inflow::OpenBoundaryX;
use nektarg::dpd::sim::{DpdConfig, DpdSim, WallGeometry};
use nektarg::dpd::Box3;
use nektarg::mci::{Backend, FaultPlan, MsgAction, MsgMatcher, Pick, Universe};
use std::path::PathBuf;
use std::time::Duration;

const TOTAL_STEPS: usize = 12;
const N_REPLICAS: usize = 3;
const TRACE_WIDTH: usize = 6;
/// `TAG_STATUS_BASE + replica` from the failover protocol.
const STATUS_TAG_R0: nektarg::mci::Tag = 0x4000;

fn small_metasolver() -> NektarG {
    let mp = poiseuille_multipatch(6.0, 1.0, 12, 2, 2, 3, 0.5, 0.4, 5e-3);
    let cfg = DpdConfig {
        seed: 31,
        ..Default::default()
    };
    let bx = Box3::new([0.0; 3], [6.0, 6.0, 3.0], [false, false, true]);
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
    sim.fill_solvent();
    let mut ob = OpenBoundaryX::new(3, 1, 3.0, 1.0, [0.0; 3], 0);
    ob.target_count = Some(sim.particles.len());
    sim.set_open_x(ob);
    let embedding = Embedding {
        origin_ns: [2.5, 0.35],
        scaling: UnitScaling {
            unit_ns: 1.0,
            unit_dpd: 0.05,
            nu_ns: 0.5,
            nu_dpd: 0.85,
        },
    };
    let atom = AtomisticDomain::new(sim, embedding);
    NektarG::new(mp, atom, TimeProgression::new(5, 4))
}

fn ckpt_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nkg_chaos_integration");
    std::fs::create_dir_all(&dir).unwrap();
    for r in 0..N_REPLICAS {
        let p = nektarg::ckpt::rank_path(&dir.join(format!("{tag}.nkgc")), r);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(nektarg::ckpt::prev_path(&p));
    }
    dir.join(format!("{tag}.nkgc"))
}

/// The per-window status-frame physics of a fault-free serial run: the
/// last continuity / mismatch / census values after each exchange window.
fn serial_window_trace() -> Vec<Vec<f64>> {
    let mut ng = small_metasolver();
    let every = ng.progression.exchange_every;
    let windows = ng.progression.num_exchanges(TOTAL_STEPS);
    (1..=windows)
        .map(|w| {
            ng.run_to((w * every).min(TOTAL_STEPS), None, None).unwrap();
            let r = &ng.report;
            let c = r.platelet_census.last().copied().unwrap_or((0, 0, 0, 0));
            vec![
                r.continuity.last().copied().unwrap_or(0.0),
                r.patch_mismatch.last().copied().unwrap_or(0.0),
                c.0 as f64,
                c.1 as f64,
                c.2 as f64,
                c.3 as f64,
            ]
        })
        .collect()
}

fn composed_chaos_on(backend: Backend, tag: &str) {
    let serial = serial_window_trace();
    let mut serial_ng = small_metasolver();
    let serial_report = serial_ng.run(TOTAL_STEPS);

    let base = ckpt_base(tag);
    // Pre-corrupt the master's rank-scoped checkpoint; a cadence of 10
    // exchanges over a 3-window run guarantees nothing overwrites it, so
    // the promoted replica MUST trip over it on resume.
    std::fs::write(nektarg::ckpt::rank_path(&base, 0), b"NOT A CHECKPOINT").unwrap();

    let plan = FaultPlan::new()
        // Master's window-2 report is its 2nd post: die mid-exchange.
        .kill_rank(1, 2)
        // Drop the master's window-1 report: transient hold, no failover.
        .with_rule(
            MsgMatcher::flow(1, 0).with_tag(STATUS_TAG_R0),
            Pick::Nth(1),
            MsgAction::Drop,
        )
        // Duplicate every driver→standby control frame: dedup must make
        // this bitwise invisible.
        .with_rule(MsgMatcher::flow(0, 2), Pick::Always, MsgAction::Duplicate);

    let cfg = FailoverConfig {
        status_deadline: Duration::from_secs(5),
        ctrl_deadline: Duration::from_secs(120),
        every_k_exchanges: 10,
        ..FailoverConfig::new(N_REPLICAS, TOTAL_STEPS, base)
    };
    let u = Universe::new(N_REPLICAS + 1)
        .with_backend(backend)
        .with_fault_plan(plan);
    let run = run_replicated(&u, cfg, small_metasolver);

    assert_eq!(run.dead, vec![1], "exactly the master rank dies");
    assert!(run.stats.rule_fired[0] >= 1, "the drop fired");
    assert!(run.stats.rule_fired[1] >= 1, "the duplicates fired");

    // The exact degradation sequence, all fault classes visible.
    let driver = driver_outcome(&run);
    assert_eq!(
        driver.events,
        vec![
            DegradationEvent::HeldLastValue { window: 1 },
            DegradationEvent::HeldLastValue { window: 2 },
            DegradationEvent::Failover {
                window: 2,
                from: 0,
                to: 1
            },
            DegradationEvent::CorruptSnapshotFallback {
                window: 2,
                replica: 1
            },
            DegradationEvent::Recovered { window: 2 },
        ],
        "backend {}",
        backend.name()
    );
    assert!(driver.error.is_none(), "the run must survive the pile-up");
    assert!(driver.time_to_recover.is_some());
    assert_eq!(driver.active_master, 1);

    // Window 1 was held with nothing before it (the documented bound);
    // windows 2 and 3 are bitwise exact despite kill + corrupt snapshot.
    assert_eq!(driver.trace.len(), 3);
    assert_eq!(driver.trace[0], vec![0.0; TRACE_WIDTH]);
    for w in [1usize, 2] {
        for (a, b) in driver.trace[w].iter().zip(&serial[w]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "window {} diverged on {}",
                w + 1,
                backend.name()
            );
        }
    }

    // The promoted replica rebuilt from scratch (corrupt snapshot), and
    // says so — physics still bitwise.
    let promoted = replica_report(&run, 1).unwrap();
    assert_eq!(promoted.snapshot_fallbacks, vec![2]);
    assert_eq!(promoted.failovers, vec![(2, 0, 1)]);
    assert_eq!(promoted.held_exchanges, vec![2]);
    assert!(promoted.physics_matches(&serial_report));

    // The duplicated-ctrl standby never noticed anything: bitwise clone
    // of the serial run.
    let standby = replica_report(&run, 2).unwrap();
    assert_eq!(standby, &serial_report);
}

#[test]
fn composed_chaos_inproc() {
    composed_chaos_on(Backend::InProc, "inproc");
}

#[test]
fn composed_chaos_uds() {
    composed_chaos_on(Backend::Uds, "uds");
}
