//! Reproduction-level integration checks: the performance model against
//! the paper's published rows, and the visualization pipeline over real
//! coupled solver output.

use nektarg::perfmodel::{DpdJobModel, SemJobModel};
use nektarg::viz::UniformGrid2d;

#[test]
fn table3_and_4_shapes_hold() {
    let m = SemJobModel::bluegene_p_paper();
    let weak = m.weak_scaling(&[3, 8, 16], 2048);
    // Monotone decline in efficiency, staying above 90 %.
    assert!(weak[0].efficiency >= weak[1].efficiency);
    assert!(weak[1].efficiency >= weak[2].efficiency);
    assert!(weak[2].efficiency > 0.90);
    // Strong scaling lands near 75 % per doubling.
    let strong = m.strong_scaling_pairs(&[3, 8, 16], 1024);
    for (_, r2) in &strong {
        assert!((0.72..=0.78).contains(&r2.efficiency), "{r2:?}");
    }
}

#[test]
fn table5_crossover_between_machines() {
    // The paper's qualitative claims: both machines scale super-linearly,
    // XT5 more strongly; absolute XT5 times beat BG/P at comparable core
    // counts.
    let particles = 823_079_981.0;
    let b = DpdJobModel::bluegene_p_paper();
    let x = DpdJobModel::cray_xt5_paper();
    let tb = b.time(particles, 28_672, 4000);
    let tx = x.time(particles, 17_280, 4000);
    assert!(tx < tb, "XT5 with fewer cores still faster: {tx} vs {tb}");
    let eff_b = b.table5(particles, &[28_672, 61_440])[1].efficiency;
    let eff_x = x.table5(particles, &[17_280, 34_560])[1].efficiency;
    assert!(eff_b > 1.0 && eff_x > eff_b);
}

#[test]
fn visualization_merges_continuum_and_atomistic_fields() {
    use nektarg::coupling::multipatch::poiseuille_multipatch;
    let (nu, f, h) = (0.004, 0.0032, 1.0);
    let mut mp = poiseuille_multipatch(6.0, h, 12, 2, 2, 3, nu, f, 5e-3);
    for s in &mut mp.patches {
        s.set_initial(move |_, y| f * y * (h - y) / (2.0 * nu), |_, _| 0.0);
    }
    for _ in 0..10 {
        mp.step();
    }
    let mut grid = UniformGrid2d::new([0.0, 0.0], [0.25, 0.1], [25, 11]);
    grid.add_sampled_field("u_continuum", |x, y| mp.eval_velocity(x, y).map(|v| v.0));
    // A synthetic "atomistic" field over a sub-window (in a real run this
    // comes from DPD bin averages).
    grid.add_sampled_field("u_atomistic", |x, y| {
        if (2.0..=4.0).contains(&x) {
            Some(f * y * (h - y) / (2.0 * nu) + 0.001)
        } else {
            None
        }
    });
    grid.overlay("u_continuum", "u_atomistic", [2.0, 0.0], [4.0, 1.0]);
    let vtk = grid.to_vtk();
    assert!(vtk.contains("SCALARS u_continuum_merged double 1"));
    let csv = grid.to_csv();
    assert_eq!(csv.lines().count(), 25 * 11 + 1);
    // The merged field is finite everywhere inside the channel.
    let merged = &grid.fields.last().unwrap().1;
    let finite = merged.iter().filter(|v| v.is_finite()).count();
    assert!(
        finite as f64 > 0.9 * merged.len() as f64,
        "merged field mostly finite: {finite}/{}",
        merged.len()
    );
}
