//! Fault-injection integration suite: the MCI transport fault layer, the
//! retrying exchange, and replica failover of the coupled metasolver.
//!
//! The headline guarantee (ISSUE 3 acceptance): a 3-replica coupled run
//! with the master killed mid-exchange completes via slave promotion plus
//! rank-scoped checkpoint resume, and the final interface trace and the
//! promoted replica's physics match the fault-free run **bitwise**,
//! because failover lands on an exchange boundary. Message
//! drop/delay/duplicate plans are deterministic under a fixed seed and
//! leave exchange results bitwise identical to the clean run.

use nektarg::coupling::atomistic::{AtomisticDomain, Embedding};
use nektarg::coupling::failover::{
    driver_outcome, replica_report, run_replicated, DegradationEvent, FailoverConfig,
};
use nektarg::coupling::metasolver::NektarG;
use nektarg::coupling::multipatch::poiseuille_multipatch;
use nektarg::coupling::{TimeProgression, UnitScaling};
use nektarg::dpd::inflow::OpenBoundaryX;
use nektarg::dpd::sim::{DpdConfig, DpdSim, WallGeometry};
use nektarg::dpd::Box3;
use nektarg::mci::{FaultPlan, InterfaceLink, MsgAction, MsgMatcher, Pick, RetryPolicy, Universe};
use std::path::PathBuf;
use std::time::Duration;

/// The same small coupled system the metasolver unit tests use: 12
/// continuum steps with `TimeProgression::new(5, 4)` gives 3 exchange
/// windows (exchanges at steps 0, 4, 8).
fn small_metasolver() -> NektarG {
    let mp = poiseuille_multipatch(6.0, 1.0, 12, 2, 2, 3, 0.5, 0.4, 5e-3);
    let cfg = DpdConfig {
        seed: 31,
        ..Default::default()
    };
    let bx = Box3::new([0.0; 3], [6.0, 6.0, 3.0], [false, false, true]);
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
    sim.fill_solvent();
    let mut ob = OpenBoundaryX::new(3, 1, 3.0, 1.0, [0.0; 3], 0);
    ob.target_count = Some(sim.particles.len());
    sim.set_open_x(ob);
    let embedding = Embedding {
        origin_ns: [2.5, 0.35],
        scaling: UnitScaling {
            unit_ns: 1.0,
            unit_dpd: 0.05,
            nu_ns: 0.5,
            nu_dpd: 0.85,
        },
    };
    let atom = AtomisticDomain::new(sim, embedding);
    NektarG::new(mp, atom, TimeProgression::new(5, 4))
}

const TOTAL_STEPS: usize = 12;
const N_REPLICAS: usize = 3;

fn ckpt_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nkg_fault_integration");
    std::fs::create_dir_all(&dir).unwrap();
    // Scrub any rank-scoped generations from previous runs of this test.
    for r in 0..N_REPLICAS {
        let p = nektarg::ckpt::rank_path(&dir.join(format!("{tag}.nkgc")), r);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(nektarg::ckpt::prev_path(&p));
    }
    dir.join(format!("{tag}.nkgc"))
}

fn failover_cfg(tag: &str) -> FailoverConfig {
    FailoverConfig {
        // Generous enough that a replica's per-window compute never
        // trips it on a loaded CI box; a dead master is detected via
        // PeerDead long before it expires.
        status_deadline: Duration::from_secs(5),
        ctrl_deadline: Duration::from_secs(120),
        ..FailoverConfig::new(N_REPLICAS, TOTAL_STEPS, ckpt_base(tag))
    }
}

/// The headline acceptance test: 3 replicas; the master (replica 0 on
/// world rank 1) is killed while posting its window-2 report — i.e.
/// mid-exchange. The run completes via promotion of the lowest live
/// slave, which resumes from the dead master's rank-scoped checkpoint;
/// the driver's final trace is bitwise identical to the fault-free
/// replicated run, and the promoted replica's physics match the serial
/// reference bitwise.
#[test]
fn three_replica_master_kill_failover_bitwise() {
    // Serial reference for replica physics.
    let mut serial = small_metasolver();
    let serial_report = serial.run(TOTAL_STEPS);

    // Clean replicated run for the driver-trace reference.
    let clean_u = Universe::new(N_REPLICAS + 1);
    let clean = run_replicated(&clean_u, failover_cfg("clean"), small_metasolver);
    assert!(clean.dead.is_empty());
    let clean_driver = driver_outcome(&clean);
    assert!(clean_driver.events.is_empty());
    assert_eq!(clean_driver.trace.len(), 3);
    assert_eq!(clean_driver.active_master, 0);

    // Faulty run: rank 1 (master replica 0) dies attempting its 2nd post,
    // which is its window-2 status report.
    let u = Universe::new(N_REPLICAS + 1).with_fault_plan(FaultPlan::new().kill_rank(1, 2));
    let run = run_replicated(&u, failover_cfg("kill"), small_metasolver);

    assert_eq!(run.dead, vec![1], "exactly the master rank must die");
    let driver = driver_outcome(&run);
    assert_eq!(driver.active_master, 1, "lowest live replica promoted");
    assert_eq!(
        driver.events,
        vec![
            DegradationEvent::HeldLastValue { window: 2 },
            DegradationEvent::Failover {
                window: 2,
                from: 0,
                to: 1
            },
            DegradationEvent::Recovered { window: 2 },
        ]
    );
    assert!(
        driver.time_to_recover.is_some(),
        "failover must report its time-to-recover"
    );

    // Bitwise: the recovered trace equals the fault-free trace.
    assert_eq!(driver.trace.len(), clean_driver.trace.len());
    for (w, (a, b)) in driver.trace.iter().zip(&clean_driver.trace).enumerate() {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "driver trace diverged at window {}",
                w + 1
            );
        }
    }

    // The dead master produced no report.
    assert!(replica_report(&run, 0).is_none());

    // The promoted replica finished the run; its physics match the serial
    // reference bitwise and it recorded the degradation.
    let promoted = replica_report(&run, 1).unwrap();
    assert!(
        promoted.physics_matches(&serial_report),
        "promoted replica physics diverged from the fault-free run"
    );
    assert_eq!(promoted.held_exchanges, vec![2]);
    assert_eq!(promoted.failovers, vec![(2, 0, 1)]);

    // The untouched slave is a bitwise clone of the serial run with no
    // degradations at all.
    let slave = replica_report(&run, 2).unwrap();
    assert_eq!(slave, &serial_report);
}

/// Hold-last-value without failover: the master's window-2 report is
/// delayed past the status deadline but the master stays alive. The
/// driver degrades window 2 to the window-1 values for one τ, records the
/// degradation on both sides, and no promotion happens.
#[test]
fn delayed_status_degrades_to_hold_last_value() {
    // Park the 2nd message on the master→driver flow until one later
    // message on that flow (the window-3 report) is delivered.
    let plan = FaultPlan::new().with_rule(
        MsgMatcher::flow(1, 0),
        Pick::Nth(2),
        MsgAction::Delay { after_flow_msgs: 1 },
    );
    let u = Universe::new(N_REPLICAS + 1).with_fault_plan(plan);
    let run = run_replicated(&u, failover_cfg("delay"), small_metasolver);

    assert!(run.dead.is_empty());
    assert_eq!(run.stats.rule_fired, vec![1]);
    let driver = driver_outcome(&run);
    assert_eq!(
        driver.events,
        vec![DegradationEvent::HeldLastValue { window: 2 }]
    );
    assert_eq!(driver.active_master, 0, "no failover on a transient miss");
    assert!(driver.time_to_recover.is_none());
    // The held window repeats window 1's boundary values bitwise.
    for (x, y) in driver.trace[1].iter().zip(&driver.trace[0]) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    // The master recorded the held window; physics were never perturbed.
    let mut serial = small_metasolver();
    let serial_report = serial.run(TOTAL_STEPS);
    let master = replica_report(&run, 0).unwrap();
    assert_eq!(master.held_exchanges, vec![2]);
    assert!(master.physics_matches(&serial_report));
}

/// Transport duplicates are invisible: sequence-numbered envelopes are
/// deduplicated at the mailbox, so a plan duplicating every root-to-root
/// interface message leaves the exchanged values bitwise identical.
#[test]
fn duplicated_interface_messages_are_bitwise_invisible() {
    let exchange_trace = |plan: Option<FaultPlan>| -> (Vec<Vec<f64>>, u64) {
        let mut u = Universe::new(2);
        if let Some(p) = plan {
            u = u.with_fault_plan(p);
        }
        let out = u.run_surviving(|world| {
            let l3 = world.split(Some(world.rank()), 0).unwrap();
            let l4 = l3.split(Some(0), 0).unwrap();
            let peer = 1 - world.rank();
            let link = InterfaceLink::establish(&world, l4, peer, 40);
            let mut got = Vec::new();
            for k in 0..5u64 {
                let payload = [world.rank() as f64 + k as f64 * 0.25, -(k as f64)];
                got.extend(link.exchange(&world, &payload, 2));
            }
            got
        });
        assert!(out.dead.is_empty());
        let trace = out.results.into_iter().map(Option::unwrap).collect();
        (trace, u.stats().messages)
    };

    let (clean, clean_msgs) = exchange_trace(None);
    let dup_plan = FaultPlan::new().with_rule(
        MsgMatcher::any().with_tag(40),
        Pick::Always,
        MsgAction::Duplicate,
    );
    let (dup, dup_msgs) = exchange_trace(Some(dup_plan));
    for (a, b) in clean.iter().zip(&dup) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "duplication perturbed the exchange"
            );
        }
    }
    // The duplicates did hit the wire (posted-message counters agree, the
    // extra deliveries are transport-internal).
    assert_eq!(clean_msgs, dup_msgs, "posted counts must match");
}

/// A dropped root-to-root frame is recovered by the retry layer: the
/// fault-tolerant exchange resends after its per-attempt deadline and the
/// result is bitwise identical to the clean run.
#[test]
fn dropped_interface_message_recovered_by_retry() {
    let ft_trace = |plan: Option<FaultPlan>| -> Vec<Vec<f64>> {
        let mut u = Universe::new(2).with_recv_timeout(Duration::from_secs(10));
        if let Some(p) = plan {
            u = u.with_fault_plan(p);
        }
        let out = u.run_surviving(|world| {
            let l3 = world.split(Some(world.rank()), 0).unwrap();
            let l4 = l3.split(Some(0), 0).unwrap();
            let peer = 1 - world.rank();
            let link = InterfaceLink::new(l4, peer, 41);
            let policy = RetryPolicy {
                max_attempts: 5,
                attempt_timeout: Duration::from_millis(100),
                backoff: Duration::from_millis(1),
                backoff_factor: 2,
            };
            let mut got = Vec::new();
            for k in 0..4u64 {
                let payload = [world.rank() as f64 * 3.0 + k as f64];
                got.extend(
                    link.exchange_ft(&world, &payload, 1, &policy)
                        .expect("retry layer must recover a single drop"),
                );
            }
            got
        });
        assert!(out.dead.is_empty());
        out.results.into_iter().map(Option::unwrap).collect()
    };

    let clean = ft_trace(None);
    // Drop the 2nd frame on the 0→1 interface flow (a window-2 loss).
    let drop_plan = FaultPlan::new().with_rule(
        MsgMatcher::flow(0, 1).with_tag(41),
        Pick::Nth(2),
        MsgAction::Drop,
    );
    let dropped = ft_trace(Some(drop_plan));
    for (a, b) in clean.iter().zip(&dropped) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "retry recovery must be bitwise");
        }
    }
}

/// Seeded fault picks replay deterministically. A *duplicate* action does
/// not perturb message flow (dedup makes it invisible), so with a
/// directional matcher the occurrence stream is the sender's program
/// order and the fired counts must be bitwise reproducible — and the
/// exchanged values identical to a clean run.
#[test]
fn seeded_duplicate_plan_replays_deterministically() {
    let run_with = |plan: Option<FaultPlan>| -> (Vec<Vec<f64>>, Vec<u64>, Vec<u64>) {
        let mut u = Universe::new(2);
        if let Some(p) = plan {
            u = u.with_fault_plan(p);
        }
        let out = u.run_surviving(|world| {
            let l3 = world.split(Some(world.rank()), 0).unwrap();
            let l4 = l3.split(Some(0), 0).unwrap();
            let peer = 1 - world.rank();
            let link = InterfaceLink::new(l4, peer, 42);
            let mut got = Vec::new();
            for k in 0..10u64 {
                let payload = [world.rank() as f64 + k as f64 * 1.5];
                got.extend(link.exchange(&world, &payload, 1));
            }
            got
        });
        assert!(out.dead.is_empty());
        let trace = out.results.into_iter().map(Option::unwrap).collect();
        (trace, out.stats.rule_matches, out.stats.rule_fired)
    };
    let seeded = |seed: u64| {
        Some(FaultPlan::new().with_rule(
            MsgMatcher::flow(0, 1).with_tag(42),
            Pick::Seeded {
                seed,
                num: 1,
                den: 2,
            },
            MsgAction::Duplicate,
        ))
    };

    let (clean, _, _) = run_with(None);
    let (trace_a, matches_a, fired_a) = run_with(seeded(1234));
    let (trace_b, matches_b, fired_b) = run_with(seeded(1234));
    assert_eq!(matches_a, matches_b, "same seed, same match counts");
    assert_eq!(fired_a, fired_b, "same seed, same fired counts");
    assert_eq!(matches_a, vec![10], "ten directional frames considered");
    assert!(fired_a[0] > 0, "a 1/2 pick over 10 frames should fire");
    for (a, b) in trace_a.iter().zip(&trace_b) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "seeded runs must replay bitwise");
        }
    }
    // Duplicates are invisible: results equal the clean run regardless of
    // which occurrences the seed picked.
    for (a, c) in clean.iter().zip(&trace_a) {
        for (x, y) in a.iter().zip(c) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "duplication perturbed the exchange"
            );
        }
    }
}

/// Seeded *drops* are recovered by the retry layer: whatever occurrences
/// the seed kills, the retransmission protocol re-delivers them and the
/// exchanged values stay bitwise identical to the clean run.
#[test]
fn seeded_drops_recovered_bitwise() {
    let run_with = |plan: Option<FaultPlan>| -> Vec<Vec<f64>> {
        let mut u = Universe::new(2).with_recv_timeout(Duration::from_secs(30));
        if let Some(p) = plan {
            u = u.with_fault_plan(p);
        }
        let out = u.run_surviving(|world| {
            let l3 = world.split(Some(world.rank()), 0).unwrap();
            let l4 = l3.split(Some(0), 0).unwrap();
            let peer = 1 - world.rank();
            let link = InterfaceLink::new(l4, peer, 43);
            let policy = RetryPolicy {
                max_attempts: 10,
                attempt_timeout: Duration::from_millis(80),
                backoff: Duration::from_millis(1),
                backoff_factor: 2,
            };
            let mut got = Vec::new();
            for k in 0..6u64 {
                let payload = [world.rank() as f64 + k as f64 * 1.5];
                got.extend(
                    link.exchange_ft(&world, &payload, 1, &policy)
                        .expect("retry layer must outlast seeded drops"),
                );
            }
            got
        });
        assert!(out.dead.is_empty());
        out.results.into_iter().map(Option::unwrap).collect()
    };

    let clean = run_with(None);
    for seed in [7u64, 4242] {
        let plan = FaultPlan::new().with_rule(
            MsgMatcher::flow(0, 1).with_tag(43),
            Pick::Seeded {
                seed,
                num: 1,
                den: 4,
            },
            MsgAction::Drop,
        );
        let dropped = run_with(Some(plan));
        for (a, b) in clean.iter().zip(&dropped) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "seeded drops must be invisible after retry (seed {seed})"
                );
            }
        }
    }
}

/// Typed receive surface: a receive on a scripted-dead peer resolves to
/// `PeerDead` promptly instead of burning the full deadline, and
/// `try_recv` reports the same condition non-blockingly.
#[test]
fn dead_peer_resolves_typed_receives() {
    use nektarg::mci::RecvError;
    let u = Universe::new(2)
        .with_recv_timeout(Duration::from_secs(30))
        .with_fault_plan(FaultPlan::new().kill_rank(1, 1));
    let out = u.run_surviving(|world| {
        if world.rank() == 1 {
            // First post dies by plan.
            world.send(&[1.0f64], 0, 6);
            unreachable!();
        }
        // Give the kill a moment to land, then observe it.
        let started = std::time::Instant::now();
        let err = world
            .recv_deadline::<f64>(1, 6, Duration::from_secs(20))
            .unwrap_err();
        assert_eq!(err, RecvError::PeerDead { src: 1 });
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "PeerDead must resolve well before the deadline"
        );
        assert_eq!(
            world.try_recv::<f64>(1, 6),
            Err(RecvError::PeerDead { src: 1 })
        );
        assert!(!world.is_alive(1));
        let view = world.liveness();
        assert_eq!(view.dead_ranks(), vec![1]);
        true
    });
    assert_eq!(out.dead, vec![1]);
    assert_eq!(out.results[0], Some(true));
}
