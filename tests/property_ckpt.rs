//! Round-trip properties of every [`nektarg::ckpt::Snapshot`] impl:
//! encode ∘ decode = id. Each case snapshots a randomized instance,
//! restores it into a compatibly constructed fresh one, and demands the
//! re-encoded bytes match the original byte-for-byte — deterministic
//! canonical encodings (sorted override maps, bit-exact floats) make the
//! byte comparison equivalent to deep state equality.

use nektarg::ckpt::{restore_bytes, snapshot_bytes, CkptError, Snapshot};
use nektarg::coupling::atomistic::{AtomisticDomain, Embedding};
use nektarg::coupling::metasolver::RunReport;
use nektarg::coupling::multipatch::poiseuille_multipatch;
use nektarg::coupling::{TimeProgression, UnitScaling};
use nektarg::dpd::inflow::OpenBoundaryX;
use nektarg::dpd::sim::{BinSampler, DpdConfig, DpdSim, WallGeometry};
use nektarg::dpd::Box3;
use nektarg::wpod::window::WindowPod;
use proptest::prelude::*;

/// Round trip plus re-encode: restore into `fresh`, then require identical
/// canonical bytes.
fn assert_round_trip<T: Snapshot>(original: &T, fresh: &mut T) -> Result<(), TestCaseError> {
    let bytes = snapshot_bytes(original);
    restore_bytes(fresh, &bytes).map_err(|e| TestCaseError::Fail(format!("restore: {e}")))?;
    prop_assert_eq!(
        bytes,
        snapshot_bytes(fresh),
        "re-encoded snapshot differs from the original"
    );
    Ok(())
}

fn small_sim(seed: u64) -> DpdSim {
    let cfg = DpdConfig {
        seed,
        ..Default::default()
    };
    let bx = Box3::new([0.0; 3], [5.0, 5.0, 3.0], [false, false, true]);
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
    sim.fill_solvent();
    let mut ob = OpenBoundaryX::new(3, 1, 3.0, 1.0, [0.1, 0.0, 0.0], 0);
    ob.target_count = Some(sim.particles.len());
    sim.set_open_x(ob);
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// DpdSim (with its nested open boundary): any reachable mid-run state
    /// round-trips, and the restored sim continues bitwise.
    #[test]
    fn dpd_sim_round_trips(seed in 0u64..1_000, steps in 0usize..6) {
        let mut sim = small_sim(seed);
        for _ in 0..steps {
            sim.step();
        }
        let mut fresh = small_sim(seed);
        assert_round_trip(&sim, &mut fresh)?;
        sim.step();
        fresh.step();
        for (a, b) in sim.particles.pos_aos().iter().zip(&fresh.particles.pos_aos()) {
            for k in 0..3 {
                prop_assert_eq!(a[k].to_bits(), b[k].to_bits());
            }
        }
    }

    /// The open boundary alone, with accumulated flux debt.
    #[test]
    fn open_boundary_round_trips(seed in 0u64..1_000, steps in 1usize..5) {
        let mut sim = small_sim(seed);
        for _ in 0..steps {
            sim.step();
        }
        let original = sim.open_x.clone().unwrap();
        let mut fresh = OpenBoundaryX::new(3, 1, 3.0, 1.0, [0.1, 0.0, 0.0], 0);
        fresh.target_count = original.target_count;
        assert_round_trip(&original, &mut fresh)?;
    }

    /// The profile sampler mid-accumulation.
    #[test]
    fn bin_sampler_round_trips(seed in 0u64..1_000, steps in 1usize..5) {
        let mut sim = small_sim(seed);
        let mut sampler = BinSampler::new(1, 5, 0, 3);
        for _ in 0..steps {
            sim.step();
            sampler.accumulate(&sim);
        }
        let mut fresh = BinSampler::new(1, 5, 0, 3);
        assert_round_trip(&sampler, &mut fresh)?;
    }

    /// The multipatch continuum (nested per-patch NS solvers with their
    /// history ladders and interface overrides).
    #[test]
    fn multipatch_round_trips(steps in 0usize..4, force in 0.1f64..0.8) {
        let mut mp = poiseuille_multipatch(4.0, 1.0, 8, 2, 2, 3, 0.5, force, 5e-3);
        for _ in 0..steps {
            mp.step();
        }
        let mut fresh = poiseuille_multipatch(4.0, 1.0, 8, 2, 2, 3, 0.5, force, 5e-3);
        assert_round_trip(&mp, &mut fresh)?;
    }

    /// The WPOD accumulator at an arbitrary point of its window cycle.
    #[test]
    fn window_pod_round_trips(
        window in 2usize..6,
        stride in 1usize..4,
        pushes in 0usize..15,
        dim in 1usize..9,
    ) {
        let mut w = WindowPod::new(window, stride, 2.0);
        for i in 0..pushes {
            w.push((0..dim).map(|j| ((i * dim + j) as f64).sin()).collect());
        }
        let mut fresh = WindowPod::new(window, stride, 2.0);
        assert_round_trip(&w, &mut fresh)?;
    }

    /// The run report is plain data: arbitrary contents round-trip.
    #[test]
    fn run_report_round_trips(
        ns_steps in 0usize..10_000,
        continuity in prop::collection::vec(-1.0f64..1.0, 0..8),
        counts in prop::collection::vec(0usize..999, 0..8),
    ) {
        let census: Vec<(usize, usize, usize, usize)> = counts
            .iter()
            .map(|&c| (c, c / 2, c % 7, c % 3))
            .collect();
        let report = RunReport {
            ns_steps,
            dpd_steps: ns_steps * 20,
            exchanges: census.len(),
            continuity: continuity.clone(),
            patch_mismatch: continuity,
            platelet_census: census,
            wpod_windows: ns_steps / 7,
            held_exchanges: (0..(ns_steps % 4) as u64).collect(),
            failovers: vec![(ns_steps as u64 % 5, 0, 1); ns_steps % 3],
            // Supervision bookkeeping: excluded from snapshots and
            // equality, so it must not survive the round trip.
            rejoins: (0..(ns_steps % 3) as u64).collect(),
            snapshot_fallbacks: (0..(ns_steps % 2) as u64).collect(),
            pressure_iters_per_step: (0..(ns_steps % 6) as u64).collect(),
            viscous_iters_per_step: (0..(ns_steps % 5) as u64).map(|i| i * 3).collect(),
            elliptic_residual_per_step: vec![1e-11; ns_steps % 4],
            breakdown_steps: (0..(ns_steps % 2) as u64).collect(),
            // Telemetry-ring bookkeeping: the cumulative counters ride
            // the snapshot (solve_summary stays exact after eviction);
            // the cap itself is receiver-side config and does not.
            history_cap: None,
            telemetry_steps: ns_steps % 6,
            worst_residual_seen: 1e-11,
            // Wall-clock telemetry: excluded from snapshots and equality,
            // so it must not survive the round trip.
            window_timings: vec![Default::default(); ns_steps % 3],
        };
        let mut fresh = RunReport::default();
        assert_round_trip(&report, &mut fresh)?;
        prop_assert_eq!(&report, &fresh);
    }

    /// Time progression is pure config: round-trips into an equal instance
    /// and refuses a different one.
    #[test]
    fn progression_round_trips(substeps in 1usize..30, every in 1usize..20) {
        let tp = TimeProgression::new(substeps, every);
        let mut fresh = TimeProgression::new(substeps, every);
        assert_round_trip(&tp, &mut fresh)?;
        let mut other = TimeProgression::new(substeps + 1, every);
        prop_assert!(matches!(
            restore_bytes(&mut other, &snapshot_bytes(&tp)),
            Err(CkptError::Mismatch(_))
        ));
    }
}

/// The composed atomistic domain (embedding fingerprint + nested DPD
/// section + continuity history). One deterministic case — the inner DpdSim
/// is already property-tested above.
#[test]
fn atomistic_domain_round_trips() {
    let make = || {
        let sim = small_sim(17);
        AtomisticDomain::new(
            sim,
            Embedding {
                origin_ns: [2.0, 0.3],
                scaling: UnitScaling {
                    unit_ns: 1.0,
                    unit_dpd: 0.05,
                    nu_ns: 0.004,
                    nu_dpd: 0.85,
                },
            },
        )
    };
    let mut d = make();
    d.continuity_history = vec![0.25, 0.125, 0.0625];
    for _ in 0..3 {
        d.sim.step();
    }
    let mut fresh = make();
    let bytes = snapshot_bytes(&d);
    restore_bytes(&mut fresh, &bytes).unwrap();
    assert_eq!(bytes, snapshot_bytes(&fresh));
    assert_eq!(fresh.continuity_history, vec![0.25, 0.125, 0.0625]);
}
