//! Cross-crate integration: the full metasolver pipeline — multipatch SEM
//! continuum + embedded DPD domain + WPOD co-processing + platelet model —
//! running the paper's time progression end to end.

use nektarg::coupling::atomistic::{AtomisticDomain, Embedding};
use nektarg::coupling::multipatch::poiseuille_multipatch;
use nektarg::coupling::{NektarG, TimeProgression, UnitScaling};
use nektarg::dpd::inflow::OpenBoundaryX;
use nektarg::dpd::platelet::{PlateletParams, WallSites};
use nektarg::dpd::sim::{BinSampler, DpdConfig, DpdSim, WallGeometry};
use nektarg::dpd::Box3;
use nektarg::wpod::window::WindowPod;

fn build_metasolver(with_platelets: bool) -> NektarG {
    let (nu_ns, height) = (0.004, 1.0);
    let force = 8.0 * nu_ns * 0.1;
    let mut continuum = poiseuille_multipatch(6.0, height, 12, 2, 2, 4, nu_ns, force, 5e-3);
    for s in &mut continuum.patches {
        s.set_initial(
            move |_, y| force * y * (height - y) / (2.0 * nu_ns),
            |_, _| 0.0,
        );
    }
    let cfg = DpdConfig {
        seed: 3,
        ..Default::default()
    };
    let bx = Box3::new([0.0; 3], [8.0, 8.0, 4.0], [false, false, true]);
    let mut sim = DpdSim::new(cfg, bx, WallGeometry::SlabY);
    sim.fill_solvent();
    if with_platelets {
        sim.seed_platelets(0.08);
        sim.sites = WallSites::on_plane(30, 1, 0.0, [2.0, 0.0, 0.0], [6.0, 0.0, 4.0], 9);
        sim.platelet_params = PlateletParams {
            delay_steps: 30,
            trigger_dist: 0.8,
            ..Default::default()
        };
    }
    let mut ob = OpenBoundaryX::new(4, 1, 3.0, 1.0, [0.0; 3], 0);
    ob.target_count = Some(sim.particles.len());
    sim.set_open_x(ob);
    let atom = AtomisticDomain::new(
        sim,
        Embedding {
            origin_ns: [2.6, 0.3],
            scaling: UnitScaling {
                unit_ns: 1.0,
                unit_dpd: 0.05,
                nu_ns,
                nu_dpd: 0.85,
            },
        },
    );
    NektarG::new(continuum, atom, TimeProgression::new(10, 5))
}

#[test]
fn coupled_run_is_continuous_and_stable() {
    let mut ng = build_metasolver(false);
    let report = ng.run(40);
    assert_eq!(report.ns_steps, 40);
    assert_eq!(report.dpd_steps, 400);
    assert_eq!(report.exchanges, 8);
    // Continuum stays on the Poiseuille solution.
    let (u, _) = ng.continuum.eval_velocity(3.0, 0.5).unwrap();
    assert!((u - 0.1).abs() < 0.01, "centerline velocity {u}");
    // Patch interfaces continuous.
    let pm = report.patch_mismatch.last().unwrap();
    assert!(*pm < 0.01, "patch mismatch {pm}");
    // Continuum-atomistic continuity approaches the thermal-noise floor.
    let cc = report.continuity.last().unwrap();
    assert!(
        *cc < 0.05,
        "NS-DPD continuity {cc} (history {:?})",
        report.continuity
    );
    // DPD stays healthy: density and temperature within bounds.
    let rho = ng.atomistic.sim.number_density();
    assert!((rho - 3.0).abs() < 0.5, "density {rho}");
    let temp = ng.atomistic.sim.particles.temperature();
    assert!((temp - 1.0).abs() < 0.2, "temperature {temp}");
}

#[test]
fn wpod_coprocessing_denoises_the_atomistic_field() {
    let mut ng = build_metasolver(false)
        .with_wpod(BinSampler::new(1, 8, 0, 10), WindowPod::new(10, 10, 2.0));
    let report = ng.run(30);
    assert!(report.wpod_windows >= 2, "windows: {}", report.wpod_windows);
    let res = ng.last_wpod.expect("WPOD result");
    assert_eq!(res.mean.len(), 8);
    // The coherent part carries most of the energy: mean field magnitude
    // comparable to the imposed DPD-side velocities; fluctuations bounded
    // by thermal noise.
    let max_fluct = res.fluctuation.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
    assert!(
        max_fluct < 3.0,
        "fluctuation out of thermal range: {max_fluct}"
    );
}

#[test]
fn platelet_cascade_progresses_in_coupled_run() {
    let mut ng = build_metasolver(true);
    let report = ng.run(60);
    let (_, t, a, ad) = *report.platelet_census.last().unwrap();
    assert!(
        t + a + ad > 0,
        "no platelet ever left the passive state: {:?}",
        report.platelet_census
    );
}

#[test]
fn progression_ratios_respected_under_composition() {
    let mut ng = build_metasolver(false);
    let r1 = ng.run(7);
    let r2 = ng.run(13);
    // Reports are cumulative and the exchange schedule is absolute:
    // run one covers steps 0..7 (exchanges before steps 0 and 5), run two
    // continues over steps 7..20 (exchanges before steps 10 and 15).
    assert_eq!(r1.dpd_steps, 70);
    assert_eq!(r2.dpd_steps, 200);
    assert_eq!(r1.exchanges, 2);
    assert_eq!(r2.exchanges, 4);
    assert_eq!(r2.ns_steps, 20);
}
