//! Property-based invariants across the core data structures and numerics
//! (proptest), spanning the crate boundaries.

use nektarg::dpd::cells::{CellGrid, LinkedCellGrid};
use nektarg::dpd::Box3;
use nektarg::mci::Universe;
use nektarg::partition::{recursive_bisect, Graph, PartitionQuality};
use nektarg::sem::basis::{gll, lagrange_at, GllBasis};
use nektarg::topo::Torus3D;
use nektarg::wpod::eig::{symmetric_eigen, SymMatrix};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GLL quadrature integrates every polynomial of degree ≤ 2p-1 exactly
    /// for arbitrary coefficients.
    #[test]
    fn gll_quadrature_exactness(
        p in 2usize..8,
        coeffs in prop::collection::vec(-3.0f64..3.0, 1..8),
    ) {
        let (x, w) = gll(p);
        let deg_max = (2 * p - 1).min(coeffs.len() - 1);
        let poly = |t: f64| -> f64 {
            coeffs[..=deg_max]
                .iter()
                .enumerate()
                .map(|(k, c)| c * t.powi(k as i32))
                .sum()
        };
        let quad: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * poly(xi)).sum();
        let exact: f64 = coeffs[..=deg_max]
            .iter()
            .enumerate()
            .map(|(k, c)| {
                if k % 2 == 0 { 2.0 * c / (k as f64 + 1.0) } else { 0.0 }
            })
            .sum();
        prop_assert!((quad - exact).abs() < 1e-10 * (1.0 + exact.abs()));
    }

    /// Lagrange interpolation on GLL nodes reproduces any polynomial of
    /// degree ≤ p at arbitrary evaluation points.
    #[test]
    fn lagrange_reproduces_polynomials(
        p in 2usize..8,
        xi in -1.0f64..1.0,
        c0 in -2.0f64..2.0,
        c1 in -2.0f64..2.0,
        c2 in -2.0f64..2.0,
    ) {
        let b = GllBasis::new(p);
        let f = |t: f64| c0 + c1 * t + c2 * t * t;
        let nodal: Vec<f64> = b.points.iter().map(|&t| f(t)).collect();
        let l = lagrange_at(&b.points, xi);
        let val: f64 = l.iter().zip(&nodal).map(|(a, v)| a * v).sum();
        prop_assert!((val - f(xi)).abs() < 1e-9);
    }

    /// Minimum-image displacement is antisymmetric and bounded by half the
    /// box on periodic axes.
    #[test]
    fn min_image_properties(
        ax in 0.1f64..20.0, ay in 0.1f64..20.0, az in 0.1f64..20.0,
        px in 0.0f64..1.0, py in 0.0f64..1.0, pz in 0.0f64..1.0,
        qx in 0.0f64..1.0, qy in 0.0f64..1.0, qz in 0.0f64..1.0,
        periodic in prop::array::uniform3(any::<bool>()),
    ) {
        let bx = Box3::new([0.0; 3], [ax, ay, az], periodic);
        let a = [px * ax, py * ay, pz * az];
        let b = [qx * ax, qy * ay, qz * az];
        let d1 = bx.min_image(a, b);
        let d2 = bx.min_image(b, a);
        let l = bx.lengths();
        for k in 0..3 {
            prop_assert!((d1[k] + d2[k]).abs() < 1e-12);
            if periodic[k] {
                prop_assert!(d1[k].abs() <= 0.5 * l[k] + 1e-12);
            }
        }
    }

    /// The partitioner always produces balanced, in-range parts on grid
    /// graphs, and its edge cut never exceeds the total edge weight.
    #[test]
    fn partitioner_invariants(
        nx in 2usize..8,
        ny in 2usize..8,
        parts in 1usize..6,
        seed in 0u64..50,
    ) {
        let g = Graph::grid2d(nx, ny);
        let n = nx * ny;
        prop_assume!(parts <= n);
        let part = recursive_bisect(&g, parts, seed);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&p| p < parts));
        let q = PartitionQuality::measure(&g, &part, parts);
        // Balance within one vertex per bisection level (≤ log2(parts) slack).
        let max = *q.part_sizes.iter().max().unwrap();
        let min = *q.part_sizes.iter().min().unwrap();
        prop_assert!(max - min <= parts.max(2), "sizes {:?}", q.part_sizes);
        let total_weight: f64 = (0..n).map(|u| g.neighbors(u).map(|(_, w)| w).sum::<f64>()).sum::<f64>() / 2.0;
        prop_assert!(q.edge_cut <= total_weight + 1e-9);
    }

    /// Torus minimal paths: length equals the hop distance, and every hop
    /// uses a valid link index.
    #[test]
    fn torus_paths_minimal(
        dx in 1usize..6, dy in 1usize..6, dz in 1usize..6,
        a in 0usize..200, b in 0usize..200,
    ) {
        let t = Torus3D::new([dx, dy, dz], 1);
        let n = t.num_nodes();
        let (a, b) = (a % n, b % n);
        let path = t.path_xyz(a, b);
        prop_assert_eq!(path.len(), t.hop_distance(a, b));
        for l in path {
            prop_assert!(l < t.num_links());
        }
    }

    /// The CSR cell grid enumerates exactly the legacy linked-list pair
    /// set on random particle clouds (boxes ≥ 3 cells per axis, where the
    /// legacy grid is correct), each pair exactly once.
    #[test]
    fn csr_pairs_equal_legacy_linked_list(
        lx in 3.0f64..9.0, ly in 3.0f64..9.0, lz in 3.0f64..9.0,
        frac in prop::collection::vec(prop::array::uniform3(0.0f64..1.0), 20..120),
        periodic in prop::array::uniform3(any::<bool>()),
    ) {
        let bx = Box3::new([0.0; 3], [lx, ly, lz], periodic);
        let pts: Vec<[f64; 3]> = frac
            .iter()
            .map(|f| [f[0] * lx, f[1] * ly, f[2] * lz])
            .collect();
        let mut csr = CellGrid::new(bx, 1.0);
        csr.rebuild(&pts);
        let mut legacy = LinkedCellGrid::new(bx, 1.0);
        legacy.rebuild(&pts);
        let mut a = HashSet::new();
        let mut unique = true;
        csr.for_each_pair(|i, j| {
            unique &= a.insert((i.min(j), i.max(j)));
        });
        prop_assert!(unique, "CSR enumerated a pair twice");
        let mut b = HashSet::new();
        legacy.for_each_pair(|i, j| {
            b.insert((i.min(j), i.max(j)));
        });
        prop_assert_eq!(a.len(), b.len());
        prop_assert!(a == b, "pair sets differ");
    }

    /// Jacobi eigen-decomposition: trace preserved, eigenvalues sorted,
    /// residuals small, for random symmetric matrices.
    #[test]
    fn eigen_invariants(vals in prop::collection::vec(-5.0f64..5.0, 9)) {
        // Build a symmetric 3x3 from 6 unique entries.
        let a = vec![
            vals[0], vals[1], vals[2],
            vals[1], vals[3], vals[4],
            vals[2], vals[4], vals[5],
        ];
        let m = SymMatrix::new(3, a);
        let (lam, vecs) = symmetric_eigen(&m);
        prop_assert!(lam[0] >= lam[1] && lam[1] >= lam[2]);
        let trace = m.get(0, 0) + m.get(1, 1) + m.get(2, 2);
        prop_assert!((lam.iter().sum::<f64>() - trace).abs() < 1e-9);
        for (k, v) in vecs.iter().enumerate() {
            let mut r = 0.0f64;
            for i in 0..3 {
                let mut av = 0.0;
                for j in 0..3 {
                    av += m.get(i, j) * v[j];
                }
                r += (av - lam[k] * v[i]).powi(2);
            }
            prop_assert!(r.sqrt() < 1e-8, "residual {}", r.sqrt());
        }
    }
}

proptest! {
    // Collectives are slower (thread spawn per case): fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// allreduce_sum equals the serial sum for any rank count and values.
    #[test]
    fn allreduce_matches_serial_sum(
        n in 1usize..7,
        base in -100.0f64..100.0,
    ) {
        let expected: f64 = (0..n).map(|r| base + r as f64).sum();
        let results = Universe::new(n).run(move |comm| {
            comm.allreduce_scalar_sum(base + comm.rank() as f64)
        });
        for r in results {
            prop_assert!((r - expected).abs() < 1e-9);
        }
    }

    /// split + allgather: every subgroup sees exactly its own members.
    #[test]
    fn split_partitions_world(n in 2usize..8, colors in 1usize..4) {
        let ok = Universe::new(n).run(move |comm| {
            let color = comm.rank() % colors;
            let sub = comm.split(Some(color), comm.rank()).unwrap();
            let members = sub.allgather(&[comm.rank() as u64]);
            members
                .iter()
                .all(|m| m[0] as usize % colors == color)
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }
}
