#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), build, full test suite.
# Run from the repo root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== fault-injection integration suite =="
cargo test -q --test integration_fault

echo "== fault-injection suite over framed Unix sockets (NKG_TRANSPORT=uds) =="
NKG_TRANSPORT=uds cargo test -q --test integration_fault

echo "== multi-process smoke: real ranks over a UDS hub, one killed mid-run =="
cargo test -q --test integration_process

echo "== supervised respawn suite: dead ranks resurrected in place (NKG_TRANSPORT=uds) =="
NKG_TRANSPORT=uds cargo test -q --test integration_respawn

echo "== composed chaos: drop + dup + kill + corrupt checkpoint in one run =="
cargo test -q --test integration_chaos

echo "== thread invariance: overlap suite, 1 rayon thread vs default pool =="
RAYON_NUM_THREADS=1 cargo test -q -p nkg-coupling --test integration_overlap
cargo test -q -p nkg-coupling --test integration_overlap

echo "== DPD bitwise thread invariance: parallel half sweep, 1 vs 4 rayon threads =="
hash1=$(RAYON_NUM_THREADS=1 cargo run --release -q -p nkg-bench --bin dpd_force_hash | grep -o 'force_hash=0x[0-9a-f]*')
hash4=$(RAYON_NUM_THREADS=4 cargo run --release -q -p nkg-bench --bin dpd_force_hash | grep -o 'force_hash=0x[0-9a-f]*')
echo "  1 thread:  $hash1"
echo "  4 threads: $hash4"
if [ "$hash1" != "$hash4" ]; then
  echo "FAIL: DPD parallel half-sweep forces differ across thread counts" >&2
  exit 1
fi

echo "== elliptic engine smoke (ladder shape + JSON emitter) =="
cargo run --release -q -p nkg-bench --bin ablation_precon -- --smoke
cargo run --release -q -p nkg-bench --bin bench_sem -- --smoke

echo "== ensemble smoke: K=3 jobs, shared artifact cache, hit rate > 0 =="
cargo run --release -q -p nkg-bench --bin bench_serve -- --smoke

echo "== artifact-cache bitwise gate: CacheMode::Off vs Process, golden hash =="
cargo run --release -q -p nkg-bench --bin bench_serve -- --bitwise

echo "== serve-scheduler smoke: 16 jobs, 2 priority classes, scripted preemption, golden hash vs FIFO =="
cargo run --release -q -p nkg-bench --bin bench_serve -- --sched-smoke

echo "All checks passed."
